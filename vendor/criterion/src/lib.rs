//! A tiny, dependency-free, offline stand-in for the subset of the
//! [Criterion](https://docs.rs/criterion) API used by this workspace.
//!
//! The real crate is not vendored into the build environment, so this shim
//! keeps the benchmark sources compiling and runnable: it performs a short
//! warm-up, times the routine with `std::time::Instant`, and prints a
//! `name ... time: [<mean> ns/iter]` line per benchmark. It makes no
//! statistical claims beyond that.

// A benchmark harness exists to read the wall clock; the workspace-wide
// determinism lint (clippy.toml disallowed-methods) does not apply here.
#![allow(clippy::disallowed_methods)]

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How a batched input is sized (accepted and ignored — the shim always
/// re-runs the setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Units processed per iteration, used to derive a rate in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The result of timing one routine with [`measure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Iterations executed within the measurement budget.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Times `routine` repeatedly (after one untimed warm-up call) until
/// `budget` is spent, doubling the batch size between timed batches — the
/// same loop [`Bencher::iter`] uses, exposed so non-`criterion_main`
/// consumers (e.g. JSON-emitting benchmark binaries) share the shim's
/// measurement methodology.
pub fn measure<O, R: FnMut() -> O>(budget: Duration, mut routine: R) -> Measurement {
    black_box(routine());
    let mut elapsed = Duration::ZERO;
    let mut iters = 0u64;
    let mut batch = 1u64;
    while elapsed < budget {
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        elapsed += start.elapsed();
        iters += batch;
        batch = (batch * 2).min(1 << 20);
    }
    Measurement {
        iters,
        ns_per_iter: if iters == 0 {
            0.0
        } else {
            elapsed.as_nanos() as f64 / iters as f64
        },
    }
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Self {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target,
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let mut batch = 1u64;
        while self.elapsed < self.target {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters_done += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        while self.elapsed < self.target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters_done == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters_done as f64
    }
}

fn report(group: Option<&str>, name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_owned(),
    };
    let ns = bencher.ns_per_iter();
    let mut line = format!(
        "{label:<40} time: [{ns:>12.1} ns/iter] ({} iters)",
        bencher.iters_done
    );
    if let Some(tp) = throughput {
        let per_second = if ns > 0.0 { 1e9 / ns } else { 0.0 };
        match tp {
            Throughput::Bytes(bytes) => {
                let mib = per_second * bytes as f64 / (1024.0 * 1024.0);
                line.push_str(&format!("  thrpt: {mib:.1} MiB/s"));
            }
            Throughput::Elements(elements) => {
                line.push_str(&format!(
                    "  thrpt: {:.0} elem/s",
                    per_second * elements as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.criterion.measurement_time);
        f(&mut bencher);
        report(Some(&self.name), name, &bencher, self.throughput);
        self
    }

    /// Ends the group (accepted for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let millis = std::env::var("CRITERION_MEASUREMENT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Self {
            measurement_time: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement_time);
        f(&mut bencher);
        report(None, name, &bencher, None);
        self
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
