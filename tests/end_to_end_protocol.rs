//! End-to-end protocol test: a small CYCLOSA deployment where one user's
//! query is planned, relayed through attested peers, answered by the
//! simulated search engine, and the fake responses are dropped — verifying
//! the unlinkability, indistinguishability and perfect-accuracy claims on
//! the real component stack (enclaves, channels, peer sampling, engine).

use cyclosa::config::ProtectionConfig;
use cyclosa::deployment::converge_peer_views;
use cyclosa::node::{attested_channel_pair, CyclosaNode};
use cyclosa::sensitivity::build_categorizer;
use cyclosa_search_engine::corpus::CorpusGenerator;
use cyclosa_search_engine::{ClientAddr, EngineConfig, Index, SearchEngine};
use cyclosa_sgx::attestation::AttestationService;
use cyclosa_sgx::measurement::Measurement;
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_workload::topics::{seed_queries, sensitive_corpus, synthetic_lexicon, TopicCatalog};

fn build_nodes(count: u64, k_max: usize, rng: &mut Xoshiro256StarStar) -> Vec<CyclosaNode> {
    let catalog = TopicCatalog::default_catalog();
    let lexicon = synthetic_lexicon(&catalog);
    let corpus = sensitive_corpus(&catalog, 100, rng);
    let protection = ProtectionConfig::with_k_max(k_max);
    let seeds = seed_queries(&catalog, 40, rng);
    (0..count)
        .map(|i| {
            let categorizer = build_categorizer(
                &lexicon,
                &["health", "sexuality"],
                &corpus,
                &protection,
                rng,
            );
            let mut node = CyclosaNode::builder(i)
                .protection(protection.clone())
                .sensitive_topic("health")
                .categorizer(categorizer)
                .build();
            node.bootstrap_with_seed_queries(seeds.iter().map(|s| s.as_str()));
            node
        })
        .collect()
}

#[test]
fn sensitive_query_is_relayed_through_attested_peers_with_exact_results() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    let mut nodes = build_nodes(8, 3, &mut rng);
    converge_peer_views(&mut nodes, 12, 5);

    // Attestation infrastructure: provision every platform, allow the
    // reference build.
    let mut service = AttestationService::new();
    service.allow_measurement(Measurement::cyclosa_reference());
    for node in &nodes {
        service.provision_platform(node.platform());
    }

    // A search engine whose corpus covers the workload topics.
    let catalog = TopicCatalog::default_catalog();
    let documents = CorpusGenerator::new(catalog.as_corpus_topics(), 14).generate(50, &mut rng);
    let mut engine = SearchEngine::new(Index::build(&documents), EngineConfig::default());

    // The user on node 0 issues a semantically sensitive query.
    let query = "hiv treatment options";
    let plan = {
        let node0 = &mut nodes[0];
        node0
            .plan_query(query, &mut rng)
            .expect("bootstrapped node plans")
    };
    assert_eq!(plan.assessment.k, 3, "sensitive query gets kmax fakes");
    assert_eq!(plan.assignments().len(), 4);

    // Reference results: what an unprotected search would return.
    let reference = engine.reference_results(query).results;
    assert!(!reference.is_empty(), "corpus must answer the query");

    // Each assignment travels over an attested channel to its relay; the
    // relay stores it, forwards it to the engine, and the user keeps only
    // the response to the real query.
    let mut user_visible_results = Vec::new();
    for (idx, assignment) in plan.assignments().iter().enumerate() {
        let relay_index = assignment.relay.0 as usize;
        assert_ne!(relay_index, 0, "a node must not relay its own query");
        // Open the attested channel (split_at_mut to borrow two nodes).
        let (left, right) = nodes.split_at_mut(relay_index.max(1));
        let (client, relay) = if relay_index == 0 {
            unreachable!("checked above")
        } else {
            (&mut left[0], &mut right[0])
        };
        let (mut client_channel, mut relay_channel) =
            attested_channel_pair(client, relay, &service).expect("attestation succeeds");
        let record = client_channel.seal(assignment.query.as_bytes(), b"forward");
        let received = relay_channel
            .open(&record, b"forward")
            .expect("authentic record");
        let forwarded = relay.relay_query(std::str::from_utf8(&received).unwrap());
        // The relay contacts the engine under its own identity.
        let page = engine
            .submit(ClientAddr(assignment.relay.0), &forwarded, idx as f64)
            .expect("engine answers");
        // The response is routed back; the client drops fake responses.
        if assignment.is_real {
            user_visible_results = page.results;
        }
    }

    // Perfect accuracy: the user sees exactly the reference results.
    assert_eq!(user_visible_results, reference);

    // Unlinkability at the engine: no request was submitted by node 0
    // itself, and the engine saw k + 1 distinct relay identities.
    let log = engine.log();
    assert_eq!(log.len(), 4);
    assert!(log.iter().all(|entry| entry.client != ClientAddr(0)));
    let identities: std::collections::BTreeSet<_> = log.iter().map(|e| e.client).collect();
    assert_eq!(identities.len(), 4);

    // Indistinguishability: the relays stored every forwarded query in
    // their in-enclave tables (real and fake alike).
    for assignment in plan.assignments() {
        let relay = nodes
            .iter_mut()
            .find(|n| n.id() == assignment.relay)
            .expect("relay exists");
        assert!(relay.past_query_count() > 0);
        assert_eq!(relay.stats().queries_relayed, 1);
    }
}

#[test]
fn non_sensitive_fresh_query_is_not_over_protected() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    let mut nodes = build_nodes(5, 7, &mut rng);
    converge_peer_views(&mut nodes, 10, 6);
    let plan = nodes[0]
        .plan_query("laptop discount coupon", &mut rng)
        .unwrap();
    assert_eq!(
        plan.assessment.k, 0,
        "fresh non-sensitive query needs no fakes"
    );
    assert_eq!(plan.assignments().len(), 1);
}
