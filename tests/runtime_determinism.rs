//! Determinism properties of the execution engines (seeded randomized
//! cases in place of proptest):
//!
//! (a) the same seed produces an identical event trace, run after run and
//!     engine after engine;
//! (b) the sharded engine's output on the end-to-end latency experiment is
//!     exactly the sequential `Simulation`'s output, for any shard count.

use cyclosa::deployment::{run_end_to_end_latency, run_end_to_end_latency_sharded, EndToEndConfig};
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior, Simulation, SimulationStats};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_runtime::ShardedEngine;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

type Trace = BTreeMap<NodeId, Vec<(u64, u32, usize)>>;

/// Relays every message to a pseudo-random peer until its hop budget is
/// exhausted, recording everything it sees.
struct ChattyNode {
    population: u64,
    log: Arc<Mutex<Trace>>,
}

impl NodeBehavior for ChattyNode {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        self.log
            .lock()
            .unwrap()
            .entry(ctx.self_id())
            .or_default()
            .push((ctx.now().as_nanos(), envelope.tag, envelope.payload.len()));
        let hops = envelope.tag >> 20;
        if hops == 0 {
            return;
        }
        let me = ctx.self_id().0;
        let next = (me.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ envelope.tag as u64) % self.population;
        let mut payload = envelope.payload;
        payload.push(hops as u8);
        ctx.send(
            NodeId(next),
            ((hops - 1) << 20) | (envelope.tag & 0xFFFFF),
            payload,
        );
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        self.log
            .lock()
            .unwrap()
            .entry(ctx.self_id())
            .or_default()
            .push((ctx.now().as_nanos(), token as u32, 0));
    }
}

/// Deploys a randomized chatty workload drawn from `case_seed` and returns
/// the per-node trace after running the engine to completion. The engine's
/// own seed (fixed at construction) is what varies latencies between runs.
fn chatty_trace(engine: &mut dyn Engine, case_seed: u64) -> (Trace, u64) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(case_seed);
    let population = 10 + rng.gen_range(0, 30);
    let log = Arc::new(Mutex::new(Trace::new()));
    for id in 0..population {
        engine.add_node(
            NodeId(id),
            Box::new(ChattyNode {
                population,
                log: log.clone(),
            }),
        );
    }
    // A couple of crashed nodes exercise the drop path.
    engine.crash(NodeId(rng.gen_range(0, population)));
    engine.crash(NodeId(rng.gen_range(0, population)));
    let injections = 20 + rng.gen_index(40);
    for i in 0..injections {
        let hops = rng.gen_range(1, 6) as u32;
        engine.post(
            SimTime::from_millis(rng.gen_range(0, 500)),
            NodeId(population + i as u64),
            NodeId(rng.gen_range(0, population)),
            (hops << 20) | i as u32,
            random_payload(&mut rng),
        );
    }
    for i in 0..10u64 {
        engine.schedule_timer(
            SimTime::from_millis(rng.gen_range(0, 2000)),
            NodeId(rng.gen_range(0, population)),
            i,
        );
    }
    let events = engine.run();
    let trace = std::mem::take(&mut *log.lock().unwrap());
    (trace, events)
}

fn random_payload(rng: &mut Xoshiro256StarStar) -> Vec<u8> {
    let mut payload = vec![0u8; rng.gen_index(64)];
    rng.fill_bytes(&mut payload);
    payload
}

#[test]
fn same_seed_means_identical_event_trace() {
    for case in 0..8u64 {
        let engine_seed = 100 + case;
        let mut first = Simulation::new(engine_seed);
        let (trace_a, events_a) = chatty_trace(&mut first, case);
        let mut second = Simulation::new(engine_seed);
        let (trace_b, events_b) = chatty_trace(&mut second, case);
        assert_eq!(trace_a, trace_b, "case {case}: sequential re-run diverged");
        assert_eq!(events_a, events_b);
        // A different seed must change the trace (latencies shift).
        let mut other = Simulation::new(engine_seed ^ 0xDEAD);
        let (trace_c, _) = chatty_trace(&mut other, case);
        assert_ne!(trace_a, trace_c, "case {case}: seed had no effect");
    }
}

#[test]
fn sharded_trace_matches_sequential_for_any_shard_count() {
    for case in 0..6u64 {
        let engine_seed = 4_000 + case;
        let mut sequential = Simulation::new(engine_seed);
        let (expected, expected_events) = chatty_trace(&mut sequential, case);
        assert!(!expected.is_empty());
        for shards in [1, 2, 3, 4, 8] {
            let mut engine = ShardedEngine::new(engine_seed, shards);
            let (observed, events) = chatty_trace(&mut engine, case);
            assert_eq!(
                observed, expected,
                "case {case}: trace diverged with {shards} shards"
            );
            assert_eq!(events, expected_events);
            assert_eq!(engine.stats(), sequential.stats());
        }
    }
}

/// Satellite coverage for `set_loss_probability` + `crash`: the chatty
/// workload re-run with lossy links, pre-run crashes and additional
/// mid-run faults must stay bit-identical between the sequential
/// simulation and every shard count.
#[test]
fn lossy_links_and_mid_run_faults_stay_bit_identical() {
    let deploy = |engine: &mut dyn Engine, case_seed: u64| -> (Trace, u64, SimulationStats) {
        engine.set_loss_probability(0.2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(case_seed ^ 0x10_55);
        let population = 14 + rng.gen_range(0, 10);
        let log = Arc::new(Mutex::new(Trace::new()));
        for id in 0..population {
            engine.add_node(
                NodeId(id),
                Box::new(ChattyNode {
                    population,
                    log: log.clone(),
                }),
            );
        }
        // A pre-run crash plus mid-run faults: a crash that recovers and a
        // permanent leave, all as deterministic scheduled events.
        engine.crash(NodeId(rng.gen_range(0, population)));
        engine.schedule_crash(
            SimTime::from_millis(150),
            NodeId(rng.gen_range(0, population)),
        );
        engine.schedule_recover(
            SimTime::from_millis(900),
            NodeId(rng.gen_range(0, population)),
        );
        engine.schedule_leave(
            SimTime::from_millis(400),
            NodeId(rng.gen_range(0, population)),
        );
        for i in 0..40u64 {
            let hops = rng.gen_range(1, 6) as u32;
            engine.post(
                SimTime::from_millis(rng.gen_range(0, 1500)),
                NodeId(population + i),
                NodeId(rng.gen_range(0, population)),
                (hops << 20) | i as u32,
                random_payload(&mut rng),
            );
        }
        let events = engine.run();
        let trace = std::mem::take(&mut *log.lock().unwrap());
        (trace, events, engine.stats())
    };
    for case in 0..4u64 {
        let engine_seed = 7_000 + case;
        let mut sequential = Simulation::new(engine_seed);
        let expected = deploy(&mut sequential, case);
        assert!(expected.2.lost > 0, "case {case}: loss path not exercised");
        for shards in [1, 2, 4, 8] {
            let mut engine = ShardedEngine::new(engine_seed, shards);
            let observed = deploy(&mut engine, case);
            assert_eq!(
                observed, expected,
                "case {case}: lossy faulty trace diverged with {shards} shards"
            );
        }
    }
}

#[test]
fn sharded_end_to_end_latency_equals_sequential_simulation_output() {
    for (case, config) in [
        EndToEndConfig {
            relays: 20,
            k: 3,
            queries: 50,
            ..EndToEndConfig::default()
        },
        EndToEndConfig {
            relays: 35,
            k: 7,
            queries: 40,
            seed: 777,
            ..EndToEndConfig::default()
        },
        EndToEndConfig {
            relays: 12,
            k: 0,
            queries: 30,
            seed: 31,
            ..EndToEndConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let sequential = run_end_to_end_latency(config);
        assert!(!sequential.is_empty(), "case {case} produced no samples");
        for shards in [1, 2, 4, 8] {
            let sharded = run_end_to_end_latency_sharded(config, shards);
            assert_eq!(
                sharded, sequential,
                "case {case}: latency distribution diverged with {shards} shards"
            );
        }
    }
}
