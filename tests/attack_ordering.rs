//! Cross-crate integration test of the evaluation pipeline: the relative
//! ordering of the mechanisms under the SimAttack adversary and the
//! accuracy metrics must match the paper's qualitative findings
//! (Fig. 5 / Fig. 6), at a reduced workload scale.

use cyclosa_bench::experiments::{fig5, fig6, fig7, table1, table2};
use cyclosa_bench::setup::{ExperimentScale, ExperimentSetup};

fn setup() -> ExperimentSetup {
    ExperimentSetup::new(ExperimentScale::Small, 2018)
}

fn rate(report: &cyclosa_bench::experiments::Fig5Report, name: &str) -> f64 {
    report
        .rows
        .iter()
        .find(|r| r.mechanism == name)
        .unwrap_or_else(|| panic!("mechanism {name} missing"))
        .rate_percent
}

#[test]
fn reidentification_ordering_matches_the_paper() {
    let setup = setup();
    let report = fig5(&setup, 7);

    let tor = rate(&report, "TOR");
    let tmn = rate(&report, "TrackMeNot");
    let goopir = rate(&report, "GooPIR");
    let peas = rate(&report, "PEAS");
    let xsearch = rate(&report, "X-SEARCH");
    let cyclosa = rate(&report, "CYCLOSA");

    // Indistinguishability-only mechanisms leak the most.
    assert!(
        tmn > tor,
        "TrackMeNot ({tmn}) must leak more than TOR ({tor})"
    );
    assert!(
        goopir > tor,
        "GooPIR ({goopir}) must leak more than TOR ({tor})"
    );
    // Combining unlinkability and indistinguishability drops the rate
    // drastically below plain anonymization.
    assert!(peas < tor, "PEAS ({peas}) must beat TOR ({tor})");
    assert!(
        xsearch < tor / 2.0,
        "X-SEARCH ({xsearch}) must clearly beat TOR ({tor})"
    );
    // CYCLOSA is the most robust mechanism.
    assert!(
        cyclosa < xsearch,
        "CYCLOSA ({cyclosa}) must beat X-SEARCH ({xsearch})"
    );
    assert!(
        cyclosa < peas,
        "CYCLOSA ({cyclosa}) must beat PEAS ({peas})"
    );
    assert!(
        cyclosa < 10.0,
        "CYCLOSA's rate should stay in the single digits"
    );
    // TOR lands in the ballpark the paper reports (~36 %).
    assert!(
        (20.0..50.0).contains(&tor),
        "TOR rate {tor} out of expected range"
    );
}

#[test]
fn accuracy_matches_the_papers_two_groups() {
    let setup = setup();
    let report = fig6(&setup, 3);
    for row in &report.rows {
        match row.mechanism.as_str() {
            // Mechanisms that answer the exact query are perfectly accurate.
            "TOR" | "TrackMeNot" | "CYCLOSA" | "CYCLOSA (adaptive)" => {
                assert!(
                    row.correctness_percent > 99.9 && row.completeness_percent > 99.9,
                    "{} should be perfectly accurate, got {}/{}",
                    row.mechanism,
                    row.correctness_percent,
                    row.completeness_percent
                );
            }
            // OR-obfuscating mechanisms lose accuracy.
            "GooPIR" | "PEAS" | "X-SEARCH" => {
                assert!(
                    row.completeness_percent < 95.0,
                    "{} should lose completeness, got {}",
                    row.mechanism,
                    row.completeness_percent
                );
            }
            other => panic!("unexpected mechanism {other}"),
        }
    }
}

#[test]
fn adaptive_protection_spares_non_sensitive_queries() {
    let setup = setup();
    let report = fig7(&setup, 7);
    // Not every query needs the maximum protection, but sensitive ones do.
    assert!(report.fraction_k_max > 0.10 && report.fraction_k_max < 0.80);
    assert!(report.mean_k < 7.0);
    assert!(
        report.cdf.last().unwrap().1 > 99.9,
        "CDF must reach 100% at kmax"
    );
    // The CDF is non-decreasing.
    for pair in report.cdf.windows(2) {
        assert!(pair[1].1 >= pair[0].1);
    }
}

#[test]
fn table1_and_table2_have_the_expected_shape() {
    let setup = setup();
    let t1 = table1(&setup);
    let cyclosa_row = t1.rows.iter().find(|r| r.mechanism == "CYCLOSA").unwrap();
    assert!(
        cyclosa_row.unlinkability
            && cyclosa_row.indistinguishability
            && cyclosa_row.accuracy
            && cyclosa_row.scalability,
        "CYCLOSA is the only mechanism satisfying all four properties"
    );
    for row in &t1.rows {
        if row.mechanism != "CYCLOSA" {
            assert!(
                !(row.unlinkability && row.indistinguishability && row.accuracy && row.scalability),
                "{} should not satisfy all four properties",
                row.mechanism
            );
        }
    }

    let t2 = table2(&setup);
    let wordnet = &t2.rows[0];
    let lda = &t2.rows[1];
    let combined = &t2.rows[2];
    // The trade-off of Table II: the lexicon alone over-triggers (lower
    // precision); LDA and the combination are more precise while keeping
    // recall high.
    assert!(
        wordnet.precision < lda.precision,
        "WordNet precision should be the lowest"
    );
    assert!(combined.precision >= wordnet.precision);
    for row in &t2.rows {
        assert!(
            row.recall > 0.6,
            "{} recall too low: {}",
            row.tool,
            row.recall
        );
        assert!(
            row.precision > 0.3,
            "{} precision too low: {}",
            row.tool,
            row.precision
        );
    }
}
