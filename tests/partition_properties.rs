//! Partition boundary properties, pinned over randomized seeded cases (the
//! offline stand-in for proptest):
//!
//! 1. **Containment** — no message *sent* during the partition window ever
//!    crosses the boundary, in either direction, on any engine.
//! 2. **Non-interference** — traffic inside each component is untouched:
//!    intra-group deliveries (times, tags, payloads) are bit-identical to
//!    the same run without the partition, because link-group loss is
//!    evaluated per send from the affected links' own RNG streams only.
//! 3. **Healing** — cross-group messages sent after the merge are
//!    delivered again.

use cyclosa_chaos::ChaosPlan;
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior, Simulation};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_runtime::ShardedEngine;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Per-destination delivery log: `(delivery time, src, tag)`.
type Trace = BTreeMap<u64, Vec<(u64, u64, u32)>>;

struct Sink {
    log: Arc<Mutex<Trace>>,
}

impl NodeBehavior for Sink {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        self.log
            .lock()
            .unwrap()
            .entry(ctx.self_id().0)
            .or_default()
            .push((ctx.now().as_nanos(), envelope.src.0, envelope.tag));
    }
}

struct Case {
    population: u64,
    boundary: u64,
    split: SimTime,
    merge: SimTime,
    /// `(send time, src, dst, tag)` of every injected message.
    sends: Vec<(SimTime, NodeId, NodeId, u32)>,
}

fn sample_case(case_seed: u64) -> Case {
    let mut rng = Xoshiro256StarStar::seed_from_u64(case_seed);
    let population = 12 + rng.gen_range(0, 10);
    let boundary = 2 + rng.gen_range(0, population / 2);
    let split = SimTime::from_millis(200 + rng.gen_range(0, 200));
    let merge = split + SimTime::from_millis(300 + rng.gen_range(0, 300));
    let mut sends = Vec::new();
    for i in 0..(120 + rng.gen_index(60)) {
        let src = NodeId(rng.gen_range(0, population));
        let mut dst = NodeId(rng.gen_range(0, population));
        if dst == src {
            dst = NodeId((dst.0 + 1) % population);
        }
        let at = SimTime::from_millis(rng.gen_range(0, merge.as_nanos() / 1_000_000 + 400));
        sends.push((at, src, dst, i as u32));
    }
    Case {
        population,
        boundary,
        split,
        merge,
        sends,
    }
}

/// Runs the case's injected traffic, optionally under the scripted
/// partition, and returns the delivery trace.
fn run_case(engine: &mut dyn Engine, case: &Case, partitioned: bool) -> Trace {
    let log = Arc::new(Mutex::new(Trace::new()));
    for id in 0..case.population {
        engine.add_node(NodeId(id), Box::new(Sink { log: log.clone() }));
    }
    if partitioned {
        let minority: Vec<NodeId> = (0..case.boundary).map(NodeId).collect();
        let majority: Vec<NodeId> = (case.boundary..case.population).map(NodeId).collect();
        ChaosPlan::new()
            .partition(&[&minority, &majority], case.split, case.merge)
            .apply(engine);
    }
    for &(at, src, dst, tag) in &case.sends {
        engine.post(at, src, dst, tag, vec![tag as u8]);
    }
    engine.run();
    let trace = std::mem::take(&mut *log.lock().unwrap());
    trace
}

fn crosses(case: &Case, a: u64, b: u64) -> bool {
    (a < case.boundary) != (b < case.boundary)
}

#[test]
fn no_message_sent_in_the_window_crosses_the_boundary() {
    for case_seed in 0..6u64 {
        let case = sample_case(7_000 + case_seed);
        // Tags of cross-boundary messages sent inside the window — these
        // must never be delivered. Cross messages sent before the split
        // (still in flight at the split) or after the merge must be.
        let in_window: Vec<u32> = case
            .sends
            .iter()
            .filter(|(at, src, dst, _)| {
                *at >= case.split && *at < case.merge && crosses(&case, src.0, dst.0)
            })
            .map(|(_, _, _, tag)| *tag)
            .collect();
        let post_merge: Vec<u32> = case
            .sends
            .iter()
            .filter(|(at, src, dst, _)| *at >= case.merge && crosses(&case, src.0, dst.0))
            .map(|(_, _, _, tag)| *tag)
            .collect();
        assert!(
            !in_window.is_empty() && !post_merge.is_empty(),
            "case {case_seed}: sampled traffic must exercise the window and the merge"
        );
        for shards in [0usize, 2, 4] {
            let trace = if shards == 0 {
                run_case(&mut Simulation::new(case_seed), &case, true)
            } else {
                run_case(&mut ShardedEngine::new(case_seed, shards), &case, true)
            };
            let delivered: Vec<u32> = trace.values().flatten().map(|(_, _, tag)| *tag).collect();
            for tag in &in_window {
                assert!(
                    !delivered.contains(tag),
                    "case {case_seed}/{shards} shards: message {tag} crossed the partition"
                );
            }
            for tag in &post_merge {
                assert!(
                    delivered.contains(tag),
                    "case {case_seed}/{shards} shards: post-merge message {tag} was not delivered"
                );
            }
        }
    }
}

#[test]
fn intra_group_traffic_is_bit_identical_with_and_without_the_partition() {
    for case_seed in 0..6u64 {
        let case = sample_case(8_000 + case_seed);
        let calm = run_case(&mut Simulation::new(case_seed), &case, false);
        let split = run_case(&mut Simulation::new(case_seed), &case, true);
        // Project both traces down to intra-group deliveries: they must
        // match exactly — same times, same order, same tags — because the
        // partition only ever draws from the cross links' RNG streams.
        let intra = |trace: &Trace| -> Trace {
            trace
                .iter()
                .map(|(dst, entries)| {
                    (
                        *dst,
                        entries
                            .iter()
                            .copied()
                            .filter(|(_, src, _)| !crosses(&case, *src, *dst))
                            .collect(),
                    )
                })
                .collect()
        };
        assert_eq!(
            intra(&calm),
            intra(&split),
            "case {case_seed}: the partition perturbed intra-group traffic"
        );
        // And the partitioned run genuinely lost something.
        let count = |trace: &Trace| trace.values().map(Vec::len).sum::<usize>();
        assert!(
            count(&split) < count(&calm),
            "case {case_seed}: the window must swallow cross traffic"
        );
    }
}
