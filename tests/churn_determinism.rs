//! The churn-determinism suite: dynamic membership — joins, leaves,
//! crashes, recoveries and loss storms scheduled *during* a run — must
//! keep the sharded engine bit-identical to the sequential `Simulation`
//! for 1/2/4/8 shards, whether driven through the raw `Engine` surface, a
//! sampled `ChaosPlan`, or the full robustness experiment of
//! `cyclosa-chaos`.

use cyclosa::deployment::{run_end_to_end_latency_on, DeploymentMetrics, EndToEndConfig};
use cyclosa_chaos::experiment::{run_churn_experiment, run_churn_experiment_sharded, ChurnConfig};
use cyclosa_chaos::partition::{
    run_partition_experiment, run_partition_experiment_sharded, PartitionConfig,
};
use cyclosa_chaos::{ChaosPlan, ChurnModel};
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior, Simulation, SimulationStats};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_runtime::ShardedEngine;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

type Trace = BTreeMap<NodeId, Vec<(u64, u32, usize)>>;

/// Forwards every message to a pseudo-random peer until the hop budget in
/// the tag runs out, recording everything it sees (same shape as the
/// runtime determinism suite).
struct ChattyNode {
    population: u64,
    log: Arc<Mutex<Trace>>,
}

impl NodeBehavior for ChattyNode {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        self.log
            .lock()
            .unwrap()
            .entry(ctx.self_id())
            .or_default()
            .push((ctx.now().as_nanos(), envelope.tag, envelope.payload.len()));
        let hops = envelope.tag >> 20;
        if hops == 0 {
            return;
        }
        let me = ctx.self_id().0;
        let next = (me.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ envelope.tag as u64) % self.population;
        ctx.send(
            NodeId(next),
            ((hops - 1) << 20) | (envelope.tag & 0xFFFFF),
            envelope.payload,
        );
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        self.log
            .lock()
            .unwrap()
            .entry(ctx.self_id())
            .or_default()
            .push((ctx.now().as_nanos(), token as u32, 0));
    }
}

/// Deploys a chatty population and a randomized mid-run membership script:
/// leaves, rejoins of departed nodes, brand-new joins, crash/recover
/// cycles and a loss storm — everything the membership machinery offers.
fn churned_trace(engine: &mut dyn Engine, case_seed: u64) -> (Trace, u64, SimulationStats) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(case_seed);
    let population = 16 + rng.gen_range(0, 12);
    let log = Arc::new(Mutex::new(Trace::new()));
    let spawn = |log: &Arc<Mutex<Trace>>| -> Box<dyn NodeBehavior + Send> {
        Box::new(ChattyNode {
            population: population + 2,
            log: log.clone(),
        })
    };
    for id in 0..population {
        engine.add_node(NodeId(id), spawn(&log));
    }
    // A node leaves and a fresh behaviour rejoins under the same id.
    let churner = rng.gen_range(0, population);
    engine.schedule_leave(SimTime::from_millis(200), NodeId(churner));
    engine.schedule_join(SimTime::from_millis(700), NodeId(churner), spawn(&log));
    // Two brand-new nodes join mid-run (they hash to shards like any seed
    // node, so cross-shard traffic reaches them immediately).
    engine.schedule_join(SimTime::from_millis(300), NodeId(population), spawn(&log));
    engine.schedule_join(
        SimTime::from_millis(450),
        NodeId(population + 1),
        spawn(&log),
    );
    // A crash/recover cycle and an unrelated permanent leave.
    let crasher = rng.gen_range(0, population);
    engine.schedule_crash(SimTime::from_millis(250), NodeId(crasher));
    engine.schedule_recover(SimTime::from_millis(800), NodeId(crasher));
    engine.schedule_leave(
        SimTime::from_millis(600),
        NodeId(rng.gen_range(0, population)),
    );
    // A loss storm in the middle of the run.
    engine.schedule_loss_probability(SimTime::from_millis(350), 0.4);
    engine.schedule_loss_probability(SimTime::from_millis(650), 0.0);
    // Traffic spanning the whole script, targeting joined ids too.
    let injections = 30 + rng.gen_index(30);
    for i in 0..injections {
        let hops = rng.gen_range(1, 6) as u32;
        engine.post(
            SimTime::from_millis(rng.gen_range(0, 1200)),
            NodeId(5_000 + i as u64),
            NodeId(rng.gen_range(0, population + 2)),
            (hops << 20) | i as u32,
            vec![0u8; rng.gen_index(32)],
        );
    }
    for i in 0..8u64 {
        engine.schedule_timer(
            SimTime::from_millis(rng.gen_range(0, 1500)),
            NodeId(rng.gen_range(0, population + 2)),
            i,
        );
    }
    let events = engine.run();
    let trace = std::mem::take(&mut *log.lock().unwrap());
    (trace, events, engine.stats())
}

#[test]
fn mid_run_membership_is_bit_identical_across_shard_counts() {
    for case in 0..5u64 {
        let engine_seed = 9_000 + case;
        let mut sequential = Simulation::new(engine_seed);
        let expected = churned_trace(&mut sequential, case);
        assert!(!expected.0.is_empty());
        let stats = expected.2;
        assert!(
            stats.joined >= 3 && stats.left >= 1 && stats.crashed >= 1 && stats.recovered >= 1,
            "case {case}: membership script not fully exercised: {stats:?}"
        );
        for shards in [1, 2, 4, 8] {
            let mut engine = ShardedEngine::new(engine_seed, shards);
            let observed = churned_trace(&mut engine, case);
            assert_eq!(
                observed, expected,
                "case {case}: churned trace diverged with {shards} shards"
            );
        }
    }
}

#[test]
fn churn_experiment_outcome_is_bit_identical_for_1_2_4_8_shards() {
    for (case, config) in [
        ChurnConfig {
            relays: 24,
            k: 3,
            queries: 40,
            failure_rate: 0.25,
            recover: false,
            ..ChurnConfig::default()
        },
        ChurnConfig {
            relays: 30,
            k: 5,
            queries: 30,
            failure_rate: 0.4,
            recover: true,
            seed: 909,
            ..ChurnConfig::default()
        },
        // Adaptive-k healing: resubmissions carry topped-up fakes, and the
        // repair traffic must shard exactly like everything else.
        ChurnConfig {
            relays: 24,
            k: 4,
            queries: 40,
            failure_rate: 0.45,
            recover: false,
            adaptive: true,
            seed: 1213,
            ..ChurnConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let sequential = run_churn_experiment(&config);
        assert!(
            sequential.answered > 0,
            "case {case}: experiment produced no samples"
        );
        assert!(
            sequential.failed_relays > 0,
            "case {case}: no churn was injected"
        );
        for shards in [1, 2, 4, 8] {
            assert_eq!(
                run_churn_experiment_sharded(&config, shards),
                sequential,
                "case {case}: churn outcome diverged with {shards} shards"
            );
        }
    }
}

/// A scripted network split that later re-merges, driven through the raw
/// `Engine` surface over a chatty forwarding population: the partition
/// boundary deliberately cuts across every shard (dense ids hash all over
/// the shard space), and the run must stay bit-identical for 1/2/4/8
/// shards — membership churn *during* the partition window included.
#[test]
fn scripted_partition_split_and_remerge_is_bit_identical_across_shards() {
    fn partitioned_trace(engine: &mut dyn Engine, case_seed: u64) -> (Trace, u64, SimulationStats) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(case_seed ^ 0x5917);
        let population = 18 + rng.gen_range(0, 8);
        let log = Arc::new(Mutex::new(Trace::new()));
        let spawn = |log: &Arc<Mutex<Trace>>| -> Box<dyn NodeBehavior + Send> {
            Box::new(ChattyNode {
                population,
                log: log.clone(),
            })
        };
        for id in 0..population {
            engine.add_node(NodeId(id), spawn(&log));
        }
        // A 70/30 split with a re-merge, plus a crash/recover cycle inside
        // the window and a node that leaves for good.
        let boundary = population * 3 / 10;
        let minority: Vec<NodeId> = (0..boundary).map(NodeId).collect();
        let majority: Vec<NodeId> = (boundary..population).map(NodeId).collect();
        let split = SimTime::from_millis(300 + rng.gen_range(0, 100));
        let merge = SimTime::from_millis(800 + rng.gen_range(0, 100));
        ChaosPlan::new()
            .partition(&[&minority, &majority], split, merge)
            .crash_at(
                SimTime::from_millis(400),
                NodeId(rng.gen_range(0, population)),
            )
            .recover_at(SimTime::from_millis(700), NodeId(0))
            .leave_at(
                SimTime::from_millis(600),
                NodeId(rng.gen_range(0, population)),
            )
            .apply(engine);
        let injections = 40 + rng.gen_index(20);
        for i in 0..injections {
            let hops = rng.gen_range(1, 6) as u32;
            engine.post(
                SimTime::from_millis(rng.gen_range(0, 1400)),
                NodeId(5_000 + i as u64),
                NodeId(rng.gen_range(0, population)),
                (hops << 20) | i as u32,
                vec![0u8; rng.gen_index(24)],
            );
        }
        let events = engine.run();
        let trace = std::mem::take(&mut *log.lock().unwrap());
        (trace, events, engine.stats())
    }
    for case in 0..4u64 {
        let engine_seed = 11_000 + case;
        let mut sequential = Simulation::new(engine_seed);
        let expected = partitioned_trace(&mut sequential, case);
        assert!(!expected.0.is_empty());
        assert!(
            expected.2.lost > 0,
            "case {case}: the split must swallow cross traffic"
        );
        for shards in [1, 2, 4, 8] {
            let mut engine = ShardedEngine::new(engine_seed, shards);
            let observed = partitioned_trace(&mut engine, case);
            assert_eq!(
                observed, expected,
                "case {case}: partitioned trace diverged with {shards} shards"
            );
        }
    }
}

/// The full partition experiment (minority client, adaptive healing,
/// blacklist probation) reproduces bit for bit on 1/2/4/8 shards.
#[test]
fn partition_experiment_outcome_is_bit_identical_for_1_2_4_8_shards() {
    for (case, config) in [
        PartitionConfig {
            base: ChurnConfig {
                relays: 24,
                k: 3,
                queries: 60,
                adaptive: true,
                blacklist_ttl: Some(SimTime::from_secs(8)),
                failure_rate: 0.0,
                ..ChurnConfig::default()
            },
            minority_fraction: 0.3,
            split_at: SimTime::from_secs(8),
            merge_at: SimTime::from_secs(20),
            ..PartitionConfig::default()
        },
        // The partition stacked on ordinary relay churn, client with the
        // majority this time.
        PartitionConfig {
            base: ChurnConfig {
                relays: 30,
                k: 4,
                queries: 50,
                adaptive: true,
                blacklist_ttl: Some(SimTime::from_secs(6)),
                failure_rate: 0.15,
                seed: 4242,
                ..ChurnConfig::default()
            },
            minority_fraction: 0.4,
            client_in_minority: false,
            split_at: SimTime::from_secs(6),
            merge_at: SimTime::from_secs(15),
            ..PartitionConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let sequential = run_partition_experiment(&config);
        assert!(
            sequential.during.issued > 0 && sequential.post_merge.issued > 0,
            "case {case}: the window must leave all three phases populated"
        );
        assert!(
            sequential.churn.stats.lost > 0,
            "case {case}: no partition loss was injected"
        );
        for shards in [1, 2, 4, 8] {
            assert_eq!(
                run_partition_experiment_sharded(&config, shards),
                sequential,
                "case {case}: partition outcome diverged with {shards} shards"
            );
        }
    }
}

/// A sampled `ChaosPlan` (correlated bursts + loss storms) applied on top
/// of the stock end-to-end latency experiment: relays die and links decay
/// mid-run, and the sharded engines still reproduce the sequential latency
/// samples exactly.
#[test]
fn chaos_plan_over_latency_experiment_is_bit_identical() {
    let config = EndToEndConfig {
        relays: 25,
        k: 3,
        queries: 40,
        ..EndToEndConfig::default()
    };
    let relays: Vec<NodeId> = (1..=config.relays as u64).map(NodeId).collect();
    let horizon = SimTime::from_secs(25);
    let plan = ChurnModel::FailureBursts {
        mean_interval: SimTime::from_secs(8),
        burst_fraction: 0.15,
        recover_after: Some(SimTime::from_secs(5)),
    }
    .sample(&relays, horizon, 40)
    .merge(
        ChurnModel::LossStorms {
            mean_interval: SimTime::from_secs(9),
            duration: SimTime::from_secs(2),
            storm_loss: 0.3,
            base_loss: 0.0,
        }
        .sample(&[], horizon, 41),
    );
    assert!(plan.failure_fraction(config.relays) > 0.0);
    fn run<E: Engine>(
        engine: &mut E,
        plan: &ChaosPlan,
        config: &EndToEndConfig,
    ) -> (Vec<f64>, SimulationStats) {
        plan.apply(engine);
        let latencies = run_end_to_end_latency_on(engine, config, &DeploymentMetrics::detached());
        (latencies, engine.stats())
    }
    let mut sequential = Simulation::new(config.seed);
    let expected = run(&mut sequential, &plan, &config);
    assert!(!expected.0.is_empty());
    assert!(expected.1.crashed > 0, "bursts must crash relays");
    for shards in [1, 2, 4, 8] {
        let mut engine = ShardedEngine::new(config.seed, shards);
        assert_eq!(
            run(&mut engine, &plan, &config),
            expected,
            "chaos-plan latencies diverged with {shards} shards"
        );
    }
}
