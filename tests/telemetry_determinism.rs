//! The trace-determinism suite: observability must be a pure read-out.
//!
//! Two properties are pinned here, across the sequential simulator and
//! the sharded engine at 1/2/4/8 shards:
//!
//! 1. **Zero perturbation** — a traced run's outcome (`ChurnOutcome`
//!    ledger, latencies, stats) is bit-identical to the untraced run of
//!    the same seed. Tracing draws no randomness and feeds nothing back.
//! 2. **Deterministic merge** — the exported JSONL timeline is
//!    byte-identical whatever the engine or shard count: events are
//!    merged by `(sim-time, actor)` with per-actor emission order
//!    preserved, so thread interleaving never shows through.
//!
//! On top, the merged timeline must actually tell the causal story: a
//! heavy-churn run contains at least one `query.repair` annotated
//! `fault_injected: true` — the client healing a relay the fault plan
//! killed — and the schema checks accept both export formats.

use cyclosa::deployment::{run_end_to_end_latency_observed_on, DeploymentMetrics, EndToEndConfig};
use cyclosa_chaos::experiment::{
    run_churn_experiment, run_churn_experiment_observed, run_churn_experiment_sharded,
    run_churn_experiment_sharded_observed, ChurnConfig, ChurnTelemetry,
};
use cyclosa_chaos::ChaosPlan;
use cyclosa_net::sim::Simulation;
use cyclosa_runtime::metrics::Registry;
use cyclosa_telemetry::check::{validate_chrome_trace, validate_trace_jsonl};
use cyclosa_telemetry::export::{to_chrome_trace, to_jsonl};
use cyclosa_telemetry::{AttrValue, TraceSink};

/// A churn configuration heavy enough to force retries and top-ups.
fn stormy() -> ChurnConfig {
    ChurnConfig {
        relays: 20,
        k: 3,
        queries: 40,
        failure_rate: 0.4,
        adaptive: true,
        ..ChurnConfig::default()
    }
}

fn telemetry() -> ChurnTelemetry {
    ChurnTelemetry {
        trace: TraceSink::enabled(),
        metrics: Some(Registry::new()),
    }
}

#[test]
fn traced_churn_outcome_is_bit_identical_across_engines_and_shards() {
    let config = stormy();
    let untraced = run_churn_experiment(&config);
    assert!(untraced.retries > 0, "storm must exercise the retry path");

    let sequential = telemetry();
    assert_eq!(
        run_churn_experiment_observed(&config, &ChaosPlan::new(), &sequential),
        untraced,
        "sequential tracing perturbed the run"
    );
    for shards in [1, 2, 4, 8] {
        assert_eq!(
            run_churn_experiment_sharded(&config, shards),
            untraced,
            "untraced sharded run diverged at {shards} shards"
        );
        let observed = telemetry();
        assert_eq!(
            run_churn_experiment_sharded_observed(&config, &ChaosPlan::new(), shards, &observed),
            untraced,
            "traced sharded run diverged at {shards} shards"
        );
    }
}

#[test]
fn merged_jsonl_trace_is_byte_identical_across_shard_counts() {
    let config = stormy();
    let reference = telemetry();
    run_churn_experiment_observed(&config, &ChaosPlan::new(), &reference);
    let expected = to_jsonl(&reference.trace.events());
    assert!(!expected.is_empty(), "the storm must produce a timeline");

    for shards in [1, 2, 4, 8] {
        let observed = telemetry();
        run_churn_experiment_sharded_observed(&config, &ChaosPlan::new(), shards, &observed);
        let jsonl = to_jsonl(&observed.trace.events());
        assert_eq!(
            jsonl, expected,
            "JSONL trace bytes diverged at {shards} shards"
        );
    }
}

#[test]
fn storm_timeline_contains_a_fault_annotated_repair_and_validates() {
    let config = stormy();
    let observed = telemetry();
    run_churn_experiment_sharded_observed(&config, &ChaosPlan::new(), 4, &observed);
    let events = observed.trace.events();

    let repair = events
        .iter()
        .find(|e| {
            e.name == "query.repair" && e.attrs.contains(&("fault_injected", AttrValue::Bool(true)))
        })
        .expect("a query must repair around an injected fault");
    assert!(repair.query.is_some(), "repairs carry their query sequence");
    assert!(
        events.iter().any(|e| e.name == "fault.leave"),
        "injected faults must be annotated on the timeline"
    );
    assert!(
        events
            .iter()
            .any(|e| e.name == "query.answered" && e.dur.is_some()),
        "answered queries appear as latency spans"
    );

    // Both export formats pass the parser-backed schema checks.
    let jsonl = to_jsonl(&events);
    assert_eq!(
        validate_trace_jsonl(&jsonl).expect("valid JSONL"),
        events.len()
    );
    let chrome = to_chrome_trace(&events);
    assert_eq!(
        validate_chrome_trace(&chrome).expect("valid Chrome trace"),
        events.len()
    );

    // The metrics registry surfaces the clamped-sample counter (zero on
    // a healthy run) and the engine's per-shard profiling.
    let snapshot = observed.metrics.expect("registry installed").snapshot();
    assert!(snapshot
        .counters
        .contains(&("client.clamped_samples".to_owned(), 0)));
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, value)| name.starts_with("engine.shard") && *value > 0),
        "sharded observed runs record engine self-profiling"
    );
}

#[test]
fn traced_deployment_latencies_match_untraced_and_trace_is_stable() {
    let config = EndToEndConfig {
        relays: 20,
        queries: 30,
        ..EndToEndConfig::default()
    };
    let mut plain_engine = Simulation::new(config.seed);
    let plain = cyclosa::deployment::run_end_to_end_latency_on(
        &mut plain_engine,
        &config,
        &DeploymentMetrics::detached(),
    );

    let mut reference: Option<String> = None;
    for shards in [1, 2, 4] {
        let mut engine = cyclosa_runtime::ShardedEngine::new(config.seed, shards);
        let sink = TraceSink::enabled();
        engine.set_trace_sink(sink.clone());
        let traced = run_end_to_end_latency_observed_on(
            &mut engine,
            &config,
            &DeploymentMetrics::detached(),
            &sink,
        );
        assert_eq!(traced, plain, "tracing perturbed the deployment");
        let jsonl = to_jsonl(&sink.events());
        assert!(jsonl.contains("query.launch"));
        match &reference {
            None => reference = Some(jsonl),
            Some(expected) => assert_eq!(
                &jsonl, expected,
                "deployment trace bytes diverged at {shards} shards"
            ),
        }
    }
}
