//! Long-horizon soak invariants (see `cyclosa_chaos::soak`): the churn
//! deployment replayed under diurnal + flash-crowd load with churn and a
//! byzantine coalition, asserting — continuously, not just at the end —
//! the `achieved_k` ledger, blacklist probation, plan distinctness,
//! resident-bytes and trace-schema invariants.
//!
//! The tests here run debug-friendly horizons; the full acceptance run is
//! the `soak` bin of `cyclosa-bench`
//! (`soak --queries 1000000 --shards 1,2,4,8 --gate`), which the CI
//! soak-smoke job exercises at a shorter horizon on every push. Set
//! `SOAK_QUERIES` to stretch the in-test horizons (e.g.
//! `SOAK_QUERIES=1000000 cargo test --release --test soak_invariants`).

use cyclosa::config::ProtectionConfig;
use cyclosa::node::{CyclosaNode, NodeError, QueryPlan};
use cyclosa_chaos::adversary::{AdversaryConfig, ByzantinePolicy};
use cyclosa_chaos::churn::ChurnModel;
use cyclosa_chaos::soak::{run_soak, run_soak_on, run_soak_sharded, ArrivalModel, SoakConfig};
use cyclosa_net::sim::Simulation;
use cyclosa_net::time::SimTime;
use cyclosa_peer_sampling::PeerId;
use cyclosa_telemetry::check::validate_trace_jsonl;
use cyclosa_telemetry::export::to_jsonl;
use cyclosa_telemetry::TraceSink;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeSet;

/// The in-test horizon: debug-friendly by default, stretchable to the
/// full acceptance length via `SOAK_QUERIES`.
fn horizon(default: u64) -> u64 {
    std::env::var("SOAK_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn stressed_config(queries: u64) -> SoakConfig {
    SoakConfig {
        relays: 40,
        queries,
        window_queries: 1_000,
        base_interval: SimTime::from_millis(60),
        diurnal_period_queries: 2_000,
        flash_crowds: 2,
        flash_width_queries: 100,
        churn: Some(ChurnModel::ExponentialSessions {
            mean_uptime: SimTime::from_secs(60),
            mean_downtime: SimTime::from_secs(12),
        }),
        adversary: Some(AdversaryConfig {
            fraction: 0.15,
            policy: ByzantinePolicy::DropRealQueries { probability: 0.4 },
            activate_at: SimTime::from_secs(10),
        }),
        min_answered_fraction: 0.8,
        ..SoakConfig::default()
    }
}

#[test]
fn stressed_soak_gates_clean_and_is_bit_identical_across_shards() {
    let config = stressed_config(horizon(4_000));
    let outcome = run_soak(&config);
    outcome
        .gate(&config)
        .expect("stressed soak must hold every invariant");
    assert!(outcome.retries > 0, "churn + drops must exercise repair");
    assert!(
        outcome.byzantine_dropped > 0,
        "the drop coalition must actually bite"
    );
    // Every launched query is accounted for in exactly one window.
    let launched: u64 = outcome.windows.iter().map(|w| w.launched).sum();
    assert_eq!(launched, config.queries);
    for shards in [2, 8] {
        assert_eq!(
            run_soak_sharded(&config, shards),
            outcome,
            "soak diverged at {shards} shards"
        );
    }
}

#[test]
fn traced_soak_stays_inside_the_closed_schema_and_never_perturbs_the_run() {
    let config = stressed_config(horizon(2_000));
    let baseline = run_soak(&config);
    let trace = TraceSink::enabled();
    let mut simulation = Simulation::new(config.seed);
    let observed = run_soak_on(&mut simulation, &config, &trace);
    assert_eq!(
        observed, baseline,
        "observation must never perturb the soak"
    );
    let events = trace.events();
    assert!(!events.is_empty(), "a traced soak must emit events");
    // Every event of the run — query lifecycle, faults, adv.* — must
    // pass the closed-schema validator the `trace_check` bin enforces.
    let jsonl = to_jsonl(&events);
    let validated = validate_trace_jsonl(&jsonl).expect("soak trace must validate");
    assert_eq!(validated, events.len());
    // The byzantine coalition announces itself on the adv.* family.
    assert!(
        events.iter().any(|e| e.name.starts_with("adv.")),
        "an adversarial soak must emit adv.* events"
    );
    assert!(
        events.iter().any(|e| e.name == "query.repair"),
        "drops must surface as repairs on the timeline"
    );
}

const SEED_QUERIES: [&str; 8] = [
    "trending sneakers deal",
    "football league fixtures",
    "netflix series trailer",
    "cheap flights geneva",
    "laptop discount coupon",
    "museum opening hours",
    "sourdough starter recipe",
    "marathon training plan",
];

/// The plan-repair invariant of `tests/plan_repair.rs`, restated for the
/// soak loop: one real query, distinct relays, no dead relay, and a plan
/// below target only once the view has no unused live peers left.
fn assert_plan_invariants(node: &CyclosaNode, plan: &QueryPlan, dead: &BTreeSet<PeerId>) {
    assert_eq!(
        plan.assignments().iter().filter(|a| a.is_real).count(),
        1,
        "every plan carries exactly one real query"
    );
    let relays: BTreeSet<PeerId> = plan.assignments().iter().map(|a| a.relay).collect();
    assert_eq!(
        relays.len(),
        plan.assignments().len(),
        "assignments must sit on distinct relays"
    );
    assert!(
        relays.iter().all(|r| !dead.contains(r)),
        "assignment still points at a dead relay"
    );
    if plan.achieved_k() < plan.assessment.k {
        let unused_live = node
            .peer_sampling()
            .view()
            .peers()
            .into_iter()
            .filter(|p| !relays.contains(p))
            .count();
        assert_eq!(unused_live, 0, "below target with unused live peers");
    }
}

/// Satellite regression: the plan-repair invariant holds across a
/// long diurnal soak at the *core node* layer too — every query planned
/// and churn-repaired under a diurnal kill/revive schedule while the
/// node simultaneously relays other users' traffic, with the enclave's
/// past-query table (the node's only unbounded-looking state) pinned
/// under its EPC budget via the `resident_bytes` high-water mark.
#[test]
fn diurnal_soak_replays_the_plan_repair_invariant_with_bounded_residency() {
    let queries = horizon(3_000);
    let peers = 30u64;
    let protection = ProtectionConfig::with_k_max(5);
    let capacity = protection.past_query_capacity;
    let mut node = CyclosaNode::builder(1).protection(protection).build();
    node.bootstrap_with_seed_queries(SEED_QUERIES);
    node.record_own_history(["zurich train timetable", "zurich airport parking"]);
    node.bootstrap_peers((100..100 + peers).map(PeerId));

    let arrival = ArrivalModel {
        base_interval: SimTime::from_millis(50),
        diurnal_amplitude: 0.6,
        diurnal_period_queries: 1_000,
        flash_crowds: 2,
        flash_boost: 4.0,
        flash_width_queries: 100,
        queries,
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(2018);
    let mut script_rng = Xoshiro256StarStar::seed_from_u64(7_077);
    let mut dead: BTreeSet<PeerId> = BTreeSet::new();
    let mut max_resident = 0usize;
    // Longest query the relay path stores: bounds the table's resident
    // footprint at capacity × (len + entry overhead).
    let mut longest = 0usize;

    for seq in 0..queries {
        // Diurnal churn: kill/revive probability follows the arrival
        // intensity (daytime load brings daytime churn).
        let intensity =
            arrival.base_interval.as_nanos() as f64 / arrival.interval(seq).as_nanos() as f64;
        if script_rng.gen_bool((0.02 * intensity).min(0.5)) {
            let victim = PeerId(100 + script_rng.gen_index(peers as usize) as u64);
            if dead.contains(&victim) {
                // Revival: the peer comes back and gossip re-learns it.
                dead.remove(&victim);
                node.bootstrap_peers([victim]);
            } else {
                dead.insert(victim);
            }
        }

        let text = format!("flash sale tickets batch {}", seq % 97);
        let mut plan = match node.plan_query(&text, &mut rng) {
            Ok(plan) => plan,
            Err(NodeError::NoPeersAvailable) => {
                assert!(
                    node.peer_sampling().view().is_empty(),
                    "planning may only fail once the view is exhausted"
                );
                continue;
            }
            Err(other) => panic!("seq {seq}: unexpected error {other}"),
        };
        // Repair to a fixpoint: a replacement can itself be a peer the
        // schedule killed but the node has not yet discovered, exactly as
        // a live client learns of failures one retry timeout at a time.
        let mut fully_repaired = true;
        loop {
            let victim = plan
                .assignments()
                .iter()
                .map(|a| a.relay)
                .find(|r| dead.contains(r));
            let Some(victim) = victim else { break };
            match node.reselect_relay(&mut plan, victim, &mut rng) {
                Ok(_) => {}
                Err(NodeError::NoPeersAvailable) => {
                    fully_repaired = false;
                    break;
                }
                Err(other) => panic!("seq {seq}: unexpected repair error {other}"),
            }
        }
        if fully_repaired {
            assert_plan_invariants(&node, &plan, &dead);
        } else {
            // Even an exhausted repair never loses the single real query.
            assert_eq!(plan.assignments().iter().filter(|a| a.is_real).count(), 1);
        }
        assert_eq!(
            node.stats().achieved_k[plan.sequence() as usize],
            plan.achieved_k(),
            "seq {seq}: achieved_k ledger out of sync"
        );

        // The node is also a relay: other users' queries stream through
        // its enclave table the whole time.
        let relayed = format!("someone elses query number {seq} about topic {}", seq % 53);
        longest = longest.max(relayed.len());
        node.relay_query(&relayed);
        max_resident = max_resident.max(node.enclave_stats().peak_resident_bytes);
    }

    // The table must have hit steady state (eviction active) …
    assert_eq!(node.past_query_count(), capacity.min(queries as usize + 8));
    // … and the resident high-water mark must respect the FIFO bound:
    // at most `capacity` entries of the longest stored query. A leak —
    // eviction not reclaiming bytes — would sail past this in a run
    // this long.
    let budget = capacity * (longest + 24);
    assert!(
        max_resident <= budget,
        "peak resident {max_resident} bytes exceeds the {budget}-byte table bound"
    );
    assert!(max_resident > 0, "the relay path must touch the table");
}
