//! Properties of the protocol-native membership overlay
//! (`SwimGossipOverlay`: SWIM failure detection over HyParView
//! active/passive views), pinned on seeded deterministic runs:
//!
//! 1. **Completeness** — a crashed node is declared dead by *every* live
//!    observer within the probe budget (one probe cycle to notice the
//!    silence, the probe escalation, the suspicion timeout, plus rumor
//!    dissemination).
//! 2. **Accuracy** — under uniform message loss, indirect probing and
//!    incarnation-numbered refutation keep any false suspicion from
//!    maturing into a dead declaration.
//! 3. **Determinism** — the per-observer membership timelines (and final
//!    views) are bit-identical between the sequential simulator and the
//!    sharded engine at 1/2/4/8 shards, crashes and partitions included.
//! 4. **Self-healing** — an unbridged partition (no directory-assisted
//!    bridge peers, unlike the shuffle overlay's merge path) re-knits
//!    into one connected overlay after the merge, through quarantine
//!    knocks and refutation alone.

use cyclosa_net::engine::Engine;
use cyclosa_net::sim::Simulation;
use cyclosa_net::time::SimTime;
use cyclosa_peer_sampling::{MembershipConfig, MembershipEventKind, PeerId, SwimGossipOverlay};
use cyclosa_runtime::ShardedEngine;

/// Active-view edges crossing the partition boundary (`id < boundary`
/// vs the rest), over the alive nodes' views.
fn cross_side_views(overlay: &SwimGossipOverlay, boundary: u64) -> usize {
    overlay
        .views()
        .iter()
        .flat_map(|(observer, active)| {
            let side = observer.0 < boundary;
            active
                .iter()
                .filter(move |peer| (peer.0 < boundary) != side)
        })
        .count()
}

#[test]
fn crashed_node_is_declared_dead_within_the_probe_budget_by_every_observer() {
    let config = MembershipConfig::default();
    let count = 16;
    let crash_at = SimTime::from_secs(10);
    let victim = PeerId(4);

    let mut sim = Simulation::new(41);
    let mut overlay = SwimGossipOverlay::ring(&mut sim, count, config, 41);
    overlay.schedule_kill(&mut sim, victim, crash_at);
    sim.run();

    // One full probe cycle visits every live member, so the silence is
    // noticed at most `count` rounds after the crash; the escalation
    // (direct + indirect probe) and the suspicion timeout follow, and
    // the dead declaration then spreads as a rumor for a few rounds.
    let cycle = SimTime::from_nanos(config.round_period.as_nanos() * count as u64);
    let slack = SimTime::from_nanos(config.round_period.as_nanos() * 6);
    let budget = crash_at + cycle + config.suspicion_timeout + slack;

    for (observer, timeline) in overlay.timelines() {
        if observer == victim {
            continue;
        }
        let dead = timeline
            .iter()
            .find(|e| e.peer == victim && e.kind == MembershipEventKind::Dead)
            .unwrap_or_else(|| panic!("{observer} never declared {victim} dead"));
        assert!(
            dead.at >= crash_at,
            "{observer} declared {victim} dead at {} before the crash",
            dead.at
        );
        assert!(
            dead.at <= budget,
            "{observer} took until {} to declare {victim} dead (budget {budget})",
            dead.at
        );
    }
    // The repair half: nobody keeps routing to the corpse, and the
    // survivors stay one connected overlay.
    for (observer, active) in overlay.views() {
        assert!(
            !active.contains(&victim),
            "{observer} still holds the crashed node in its active view"
        );
    }
    assert!(overlay.metrics().connected, "survivors must stay connected");
}

#[test]
fn uniform_loss_never_matures_into_a_false_dead_declaration() {
    // 15 % uniform loss: direct probes fail often, but the k-proxy
    // indirect escalation and suspicion refutation must keep every
    // observer from declaring a live peer dead. The suspicion window is
    // widened to six rounds — refutation rumors piggyback on lossy
    // messages too, so at this loss rate they need a few round trips.
    let config = MembershipConfig {
        suspicion_timeout: SimTime::from_secs(12),
        ..MembershipConfig::default()
    };
    let mut sim = Simulation::new(43);
    sim.schedule_loss_probability(SimTime::from_secs(2), 0.15);
    let overlay = SwimGossipOverlay::ring(&mut sim, 16, config, 43);
    sim.run();

    for (observer, timeline) in overlay.timelines() {
        assert!(
            !timeline.iter().any(|e| e.kind == MembershipEventKind::Dead),
            "{observer} declared a live peer dead under 15 % loss"
        );
    }
    assert!(overlay.metrics().connected);
}

#[test]
fn membership_timelines_are_bit_identical_across_shard_counts() {
    let config = MembershipConfig {
        rounds: 50,
        ..MembershipConfig::default()
    };
    let count = 40;
    let seed = 47;
    let minority: Vec<PeerId> = (0..10).map(PeerId).collect();

    let run = |engine: &mut dyn Engine| {
        let mut overlay = SwimGossipOverlay::ring(engine, count, config, seed);
        overlay.schedule_kill(engine, PeerId(17), SimTime::from_secs(8));
        overlay.schedule_partition(
            engine,
            &minority,
            SimTime::from_secs(12),
            SimTime::from_secs(30),
        );
        engine.run();
        (overlay.render_timelines(), overlay.views())
    };

    let mut sim = Simulation::new(seed);
    let (timelines, views) = run(&mut sim);
    assert!(!timelines.is_empty());
    for shards in [1, 2, 4, 8] {
        let mut engine = ShardedEngine::new(seed, shards);
        let (sharded_timelines, sharded_views) = run(&mut engine);
        assert_eq!(
            sharded_timelines, timelines,
            "membership timelines diverged with {shards} shards"
        );
        assert_eq!(
            sharded_views, views,
            "final views diverged with {shards} shards"
        );
    }
}

#[test]
fn incarnation_forgery_never_kills_a_live_node_that_answers_its_knock() {
    // Gossip lying — the membership-layer shape of the chaos layer's
    // `ByzantinePolicy::ForgeIncarnation`: a byzantine member fabricates
    // firsthand `dead` evidence about a live honest victim, jumped far
    // beyond any incarnation the victim ever advertised. Seeded sweep
    // over forger/victim placements and jump sizes: the lie may
    // transiently quarantine the victim wherever it outruns the truth,
    // but the victim answers the defendant and grave knocks that
    // follow, out-bumps the forged incarnation, and every observer must
    // readmit it — a forgery can never make a dead declaration *stick*
    // on a node that answers its own knock.
    let count = 16;
    for (seed, forger, victim, jump) in [
        (61, PeerId(3), PeerId(11), 1),
        (67, PeerId(0), PeerId(1), 10),
        (71, PeerId(15), PeerId(7), 1_000),
        (73, PeerId(8), PeerId(9), u64::MAX / 2),
    ] {
        let mut sim = Simulation::new(seed);
        let mut overlay =
            SwimGossipOverlay::ring(&mut sim, count, MembershipConfig::default(), seed);
        overlay.schedule_incarnation_forgery(
            &mut sim,
            forger,
            victim,
            jump,
            SimTime::from_secs(20),
        );
        sim.run();

        let timelines = overlay.timelines();
        // The lie must actually take somewhere (at minimum the forger
        // records the forged death) — otherwise nothing is being
        // defended against.
        let believed = timelines.iter().any(|(observer, timeline)| {
            *observer != victim
                && timeline.iter().any(|e| {
                    e.peer == victim && e.kind == MembershipEventKind::Dead && e.incarnation >= jump
                })
        });
        assert!(
            believed,
            "seed {seed}: the forged rumor never took anywhere"
        );

        // The victim refutes firsthand, above the forged incarnation.
        let (_, victim_timeline) = timelines
            .iter()
            .find(|(observer, _)| *observer == victim)
            .expect("the victim keeps a timeline");
        assert!(
            victim_timeline.iter().any(|e| {
                e.peer == victim && e.kind == MembershipEventKind::Refute && e.incarnation > jump
            }),
            "seed {seed}: the victim never out-bumped the forgery"
        );

        // And nowhere does the death stick: every observer's *last*
        // word on the victim is the refutation, never the forged death.
        for (observer, timeline) in &timelines {
            if *observer == victim {
                continue;
            }
            if let Some(last) = timeline.iter().rev().find(|e| e.peer == victim) {
                assert_ne!(
                    last.kind,
                    MembershipEventKind::Dead,
                    "seed {seed}: {observer} still believes the forged death of {victim}"
                );
            }
        }
        assert!(
            overlay.metrics().connected,
            "seed {seed}: the forgery fragmented the overlay"
        );
    }
}

#[test]
fn unbridged_partition_merge_reconnects_forty_nodes() {
    let config = MembershipConfig {
        rounds: 90,
        ..MembershipConfig::default()
    };
    let count = 40;
    let boundary = 12;
    let minority: Vec<PeerId> = (0..boundary).map(PeerId).collect();
    let split_at = SimTime::from_secs(10);
    let merge_at = SimTime::from_secs(60);

    let mut sim = Simulation::new(53);
    let mut overlay = SwimGossipOverlay::ring(&mut sim, count, config, 53);
    // Zero bridge peers: the only healing mechanisms are quarantine
    // knocks and incarnation-bump refutations.
    overlay.schedule_partition(&mut sim, &minority, split_at, merge_at);

    // Just before the merge both sides must have written the other off:
    // every cross-boundary active edge is gone (dead + quarantined).
    sim.run_until(merge_at.saturating_sub(SimTime::from_secs(1)));
    assert_eq!(
        cross_side_views(&overlay, boundary),
        0,
        "the sides must fully quarantine each other during the split"
    );

    sim.run();
    assert!(
        overlay.metrics().connected,
        "the merged overlay must re-knit into one component without bridges"
    );
    let rejoined = cross_side_views(&overlay, boundary);
    assert!(
        rejoined > 8,
        "post-merge views must re-span the boundary (only {rejoined} cross edges)"
    );
}
