//! Regression guard for adaptive-k plan repair under churn: after *any*
//! scripted churn sequence, every query that is still answerable travels
//! with its full sensitivity target — `assessment.k` distinct live fake
//! relays — as long as the view can provide them. This pins the tentpole
//! property that the privacy knob holds *through* churn, not just at plan
//! time.

use cyclosa::config::ProtectionConfig;
use cyclosa::node::{CyclosaNode, NodeError, QueryPlan};
use cyclosa_peer_sampling::PeerId;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeSet;

const SEED_QUERIES: [&str; 8] = [
    "trending sneakers deal",
    "football league fixtures",
    "netflix series trailer",
    "cheap flights geneva",
    "laptop discount coupon",
    "museum opening hours",
    "sourdough starter recipe",
    "marathon training plan",
];

fn seeded_node(id: u64, peers: u64) -> CyclosaNode {
    let mut node = CyclosaNode::builder(id)
        .protection(ProtectionConfig::with_k_max(5))
        .build();
    node.bootstrap_with_seed_queries(SEED_QUERIES);
    node.record_own_history(["zurich train timetable", "zurich airport parking"]);
    node.bootstrap_peers((100..100 + peers).map(PeerId));
    node
}

/// The invariant every repair must restore: exactly one live real query,
/// all relays distinct, none of them blacklisted, and the fake complement
/// back at the assessed `k` whenever the view still has unused peers.
fn assert_plan_invariants(node: &CyclosaNode, plan: &QueryPlan, dead: &BTreeSet<PeerId>) {
    assert_eq!(
        plan.assignments().iter().filter(|a| a.is_real).count(),
        1,
        "every plan carries exactly one real query"
    );
    let relays: BTreeSet<PeerId> = plan.assignments().iter().map(|a| a.relay).collect();
    assert_eq!(
        relays.len(),
        plan.assignments().len(),
        "assignments must sit on distinct relays"
    );
    for relay in &relays {
        assert!(
            !dead.contains(relay),
            "assignment still points at dead relay {relay:?}"
        );
    }
    let target = plan.assessment.k;
    let unused_live = node
        .peer_sampling()
        .view()
        .peers()
        .into_iter()
        .filter(|p| !relays.contains(p))
        .count();
    if plan.achieved_k() < target {
        assert_eq!(
            unused_live,
            0,
            "plan below target ({} < {target}) while {unused_live} unused live peers remain",
            plan.achieved_k()
        );
    }
}

#[test]
fn any_scripted_churn_sequence_keeps_every_answered_query_at_target_k() {
    for case in 0..40u64 {
        let mut script_rng = Xoshiro256StarStar::seed_from_u64(7_000 + case);
        let peers = 20 + script_rng.gen_range(0, 20);
        let mut node = seeded_node(case, peers);
        let mut rng = Xoshiro256StarStar::seed_from_u64(100 + case);

        // A handful of in-flight queries, repaired concurrently.
        let mut plans: Vec<QueryPlan> = ["zurich train strike", "cheap flights geneva paris"]
            .iter()
            .map(|q| node.plan_query(q, &mut rng).expect("plannable"))
            .collect();
        for plan in &plans {
            assert_eq!(
                node.stats().achieved_k[plan.sequence() as usize],
                plan.achieved_k()
            );
        }

        // The scripted churn sequence: random relays die one after the
        // other — sometimes plan relays, sometimes bystanders.
        let mut dead: BTreeSet<PeerId> = BTreeSet::new();
        let kills = 3 + script_rng.gen_range(0, peers / 2);
        for _ in 0..kills {
            let alive: Vec<PeerId> = (100..100 + peers)
                .map(PeerId)
                .filter(|p| !dead.contains(p))
                .collect();
            if alive.is_empty() {
                break;
            }
            let victim = alive[script_rng.gen_index(alive.len())];
            dead.insert(victim);
            for plan in plans.iter_mut() {
                match node.reselect_relay(plan, victim, &mut rng) {
                    Ok(_) => assert_plan_invariants(&node, plan, &dead),
                    Err(NodeError::NoPeersAvailable) => {
                        assert!(
                            node.peer_sampling().view().is_empty(),
                            "case {case}: repair may only fail once the view is exhausted"
                        );
                    }
                    Err(other) => panic!("case {case}: unexpected error {other}"),
                }
            }
        }

        // At send time (post-churn), the achieved-k ledger matches what
        // each plan actually carries.
        for plan in &plans {
            assert_eq!(
                node.stats().achieved_k[plan.sequence() as usize],
                plan.achieved_k(),
                "case {case}: achieved_k ledger out of sync"
            );
        }
    }
}

#[test]
fn repairs_are_deterministic_for_a_fixed_seed() {
    let run = || {
        let mut node = seeded_node(9, 24);
        let mut rng = Xoshiro256StarStar::seed_from_u64(909);
        let mut plan = node.plan_query("zurich train strike", &mut rng).unwrap();
        for victim in [101, 105, 111, 117].map(PeerId) {
            let _ = node.reselect_relay(&mut plan, victim, &mut rng);
        }
        (plan, node.stats().clone())
    };
    let (plan_a, stats_a) = run();
    let (plan_b, stats_b) = run();
    assert_eq!(
        plan_a, plan_b,
        "plan repair must be a pure function of seed"
    );
    assert_eq!(stats_a, stats_b);
}
