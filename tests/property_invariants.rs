//! Property-based tests of cross-crate invariants.
//!
//! The build environment has no networked crate registry, so instead of
//! `proptest` these properties are exercised by a seeded randomized
//! harness: every case is drawn from a deterministic generator, so a
//! failure reproduces exactly and prints the case index that triggered it.

use cyclosa::config::ProtectionConfig;
use cyclosa::past_queries::PastQueryTable;
use cyclosa::sensitivity::SensitivityAnalyzer;
use cyclosa_crypto::aead::ChaCha20Poly1305;
use cyclosa_crypto::channel::channel_pair;
use cyclosa_crypto::x25519::StaticSecret;
use cyclosa_sgx::enclave::Platform;
use cyclosa_sgx::sealing;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use cyclosa_util::smoothing::exponential_smoothing;

const CASES: usize = 64;

fn random_bytes(rng: &mut Xoshiro256StarStar, max_len: usize) -> Vec<u8> {
    let len = rng.gen_index(max_len + 1);
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    bytes
}

fn random_words(rng: &mut Xoshiro256StarStar, max_words: usize) -> String {
    let words = 1 + rng.gen_index(max_words);
    (0..words)
        .map(|_| {
            let len = 2 + rng.gen_index(7);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0, 26) as u8) as char)
                .collect::<String>()
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// AEAD round-trips for arbitrary payloads and associated data, and any
/// single-bit corruption is rejected.
#[test]
fn aead_roundtrip_and_tamper_detection() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xAEAD);
    for case in 0..CASES {
        let key: [u8; 32] = rng.gen_bytes();
        let nonce: [u8; 12] = rng.gen_bytes();
        let payload = random_bytes(&mut rng, 512);
        let aad = random_bytes(&mut rng, 64);
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &payload, &aad);
        assert_eq!(
            aead.open(&nonce, &sealed, &aad).unwrap(),
            payload,
            "case {case}"
        );
        let mut tampered = sealed.clone();
        let index = rng.gen_index(tampered.len());
        tampered[index] ^= 1 << rng.gen_range(0, 8);
        assert!(
            aead.open(&nonce, &tampered, &aad).is_err(),
            "case {case} accepted tampering"
        );
    }
}

/// Sealing round-trips on the same enclave and never opens on a different
/// platform.
#[test]
fn sealing_binds_to_the_platform() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5EA1);
    for case in 0..CASES {
        let seed_a = rng.next_u64();
        let seed_b = rng.next_u64();
        if seed_a == seed_b {
            continue;
        }
        let data = random_bytes(&mut rng, 256);
        let enclave_a = Platform::new(seed_a).create_enclave(b"cyclosa", ());
        let enclave_b = Platform::new(seed_b).create_enclave(b"cyclosa", ());
        let blob = sealing::seal(&enclave_a, b"state", &data);
        assert_eq!(
            sealing::unseal(&enclave_a, &blob).unwrap(),
            data,
            "case {case}"
        );
        assert!(
            sealing::unseal(&enclave_b, &blob).is_err(),
            "case {case} unsealed elsewhere"
        );
    }
}

/// Secure channels deliver arbitrary message sequences in order.
#[test]
fn channel_delivers_message_sequences() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC4A7);
    for case in 0..CASES {
        let a = StaticSecret::from_bytes(rng.gen_bytes());
        let b = StaticSecret::from_bytes(rng.gen_bytes());
        let (mut alice, mut bob) =
            channel_pair(a, b"quote-a".to_vec(), b, b"quote-b".to_vec()).unwrap();
        let count = 1 + rng.gen_index(7);
        for _ in 0..count {
            let message = random_bytes(&mut rng, 128);
            let record = alice.seal(&message, b"aad");
            assert_eq!(bob.open(&record, b"aad").unwrap(), message, "case {case}");
        }
    }
}

/// The adaptive protection always picks k within [0, kmax], and the
/// linkability score stays within [0, 1].
#[test]
fn adaptive_k_stays_in_range() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xADA7);
    for case in 0..CASES {
        let k_max = 1 + rng.gen_index(11);
        let config = ProtectionConfig {
            k_max,
            ..ProtectionConfig::default()
        };
        let mut analyzer = SensitivityAnalyzer::linkability_only(&config);
        let history: Vec<String> = (0..rng.gen_index(20))
            .map(|_| random_words(&mut rng, 4))
            .collect();
        analyzer.record_own_queries(history.iter().map(|s| s.as_str()));
        let query = random_words(&mut rng, 5);
        let assessment = analyzer.assess(&query);
        assert!(
            assessment.k <= k_max,
            "case {case}: k {} > kmax {k_max}",
            assessment.k
        );
        assert!(
            (0.0..=1.0).contains(&assessment.linkability),
            "case {case}: linkability {}",
            assessment.linkability
        );
    }
}

/// The past-query table never exceeds its capacity and fake draws only
/// return stored entries.
#[test]
fn past_query_table_respects_capacity() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7AB1E);
    for case in 0..CASES {
        let capacity = 1 + rng.gen_index(49);
        let mut table = PastQueryTable::new(capacity);
        let queries: Vec<String> = (0..rng.gen_index(100))
            .map(|_| random_words(&mut rng, 3))
            .collect();
        table.record_all(queries.iter().map(|s| s.as_str()));
        assert!(
            table.len() <= capacity,
            "case {case}: {} > {capacity}",
            table.len()
        );
        let draw = rng.gen_index(20);
        for fake in table.draw_fakes(draw, &mut rng) {
            assert!(
                table.iter().any(|q| q == fake),
                "case {case}: fake not stored"
            );
        }
    }
}

/// Exponential smoothing of values in [0, 1] stays bounded by the extremes
/// of its input.
#[test]
fn smoothing_is_bounded() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x500D);
    for case in 0..CASES {
        let values: Vec<f64> = (0..1 + rng.gen_index(49)).map(|_| rng.next_f64()).collect();
        let alpha = 0.05 + rng.next_f64() * 0.95;
        let score = exponential_smoothing(&values, alpha);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            score >= min - 1e-9 && score <= max + 1e-9,
            "case {case}: {score} outside [{min}, {max}]"
        );
    }
}
