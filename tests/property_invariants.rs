//! Property-based tests of cross-crate invariants (proptest).

use cyclosa::config::ProtectionConfig;
use cyclosa::past_queries::PastQueryTable;
use cyclosa::sensitivity::SensitivityAnalyzer;
use cyclosa_crypto::aead::ChaCha20Poly1305;
use cyclosa_crypto::channel::channel_pair;
use cyclosa_crypto::x25519::StaticSecret;
use cyclosa_sgx::enclave::Platform;
use cyclosa_sgx::sealing;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use cyclosa_util::smoothing::exponential_smoothing;
use proptest::prelude::*;

proptest! {
    /// AEAD round-trips for arbitrary payloads and associated data, and any
    /// single-byte corruption is rejected.
    #[test]
    fn aead_roundtrip_and_tamper_detection(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, &payload, &aad);
        prop_assert_eq!(aead.open(&nonce, &sealed, &aad).unwrap(), payload);
        let mut tampered = sealed.clone();
        let index = flip_byte % tampered.len().max(1);
        tampered[index] ^= 1 << flip_bit;
        prop_assert!(aead.open(&nonce, &tampered, &aad).is_err());
    }

    /// Sealing round-trips on the same enclave and never opens on a
    /// different platform.
    #[test]
    fn sealing_binds_to_the_platform(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        data in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(seed_a != seed_b);
        let enclave_a = Platform::new(seed_a).create_enclave(b"cyclosa", ());
        let enclave_b = Platform::new(seed_b).create_enclave(b"cyclosa", ());
        let blob = sealing::seal(&enclave_a, b"state", &data);
        prop_assert_eq!(sealing::unseal(&enclave_a, &blob).unwrap(), data);
        prop_assert!(sealing::unseal(&enclave_b, &blob).is_err());
    }

    /// Secure channels deliver arbitrary message sequences in order.
    #[test]
    fn channel_delivers_message_sequences(
        seed in any::<u64>(),
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 1..8),
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let a = StaticSecret::from_bytes(rng.gen_bytes());
        let b = StaticSecret::from_bytes(rng.gen_bytes());
        let (mut alice, mut bob) = channel_pair(a, b"quote-a".to_vec(), b, b"quote-b".to_vec()).unwrap();
        for message in &messages {
            let record = alice.seal(message, b"aad");
            prop_assert_eq!(&bob.open(&record, b"aad").unwrap(), message);
        }
    }

    /// The adaptive protection always picks k within [0, kmax], and the
    /// linkability score stays within [0, 1].
    #[test]
    fn adaptive_k_stays_in_range(
        k_max in 1usize..12,
        history in prop::collection::vec("[a-z]{2,8}( [a-z]{2,8}){0,3}", 0..20),
        query in "[a-z]{2,8}( [a-z]{2,8}){0,4}",
    ) {
        let config = ProtectionConfig { k_max, ..ProtectionConfig::default() };
        let mut analyzer = SensitivityAnalyzer::linkability_only(&config);
        analyzer.record_own_queries(history.iter().map(|s| s.as_str()));
        let assessment = analyzer.assess(&query);
        prop_assert!(assessment.k <= k_max);
        prop_assert!((0.0..=1.0).contains(&assessment.linkability));
    }

    /// The past-query table never exceeds its capacity and fake draws only
    /// return stored entries.
    #[test]
    fn past_query_table_respects_capacity(
        capacity in 1usize..50,
        queries in prop::collection::vec("[a-z]{3,10}( [a-z]{3,10}){0,2}", 0..100),
        draw in 0usize..20,
        seed in any::<u64>(),
    ) {
        let mut table = PastQueryTable::new(capacity);
        table.record_all(queries.iter().map(|s| s.as_str()));
        prop_assert!(table.len() <= capacity);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for fake in table.draw_fakes(draw, &mut rng) {
            prop_assert!(table.iter().any(|q| q == fake));
        }
    }

    /// Exponential smoothing of values in [0, 1] stays in [0, 1] and is
    /// bounded by the extremes of its input.
    #[test]
    fn smoothing_is_bounded(
        values in prop::collection::vec(0.0f64..=1.0, 1..50),
        alpha in 0.05f64..=1.0,
    ) {
        let score = exponential_smoothing(&values, alpha);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(score >= min - 1e-9 && score <= max + 1e-9);
    }
}
