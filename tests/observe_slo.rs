//! The causal-analysis and SLO suite: the observability layer's derived
//! artifacts must be exact, correctly attributed, and byte-identical
//! across shard counts.
//!
//! Pinned here:
//!
//! 1. **Exact decomposition** — for every answered query of a traced
//!    churn storm, the six critical-path components sum to the recorded
//!    end-to-end latency to the nanosecond, and fault blame only ever
//!    points at relays the fault plan actually killed.
//! 2. **Shard-count independence** — the `observe` report JSON and the
//!    `slo.*` burn-alert stream are byte-identical across the sequential
//!    simulator and 1/2/4/8 shards of the same seed.
//! 3. **Gate semantics** — the privacy SLO records zero violations on a
//!    failure-free baseline, and fires deterministically when half the
//!    relays die under fixed-k planning.

use cyclosa_bench::report::{build_report, ReportOptions};
use cyclosa_chaos::experiment::{
    run_churn_experiment_observed, run_churn_experiment_sharded_observed, ChurnConfig,
    ChurnTelemetry,
};
use cyclosa_chaos::slo::{churn_slo_config, evaluate_churn_slos};
use cyclosa_chaos::{ChaosPlan, FaultKind};
use cyclosa_telemetry::analyze::{reconstruct, TraceRecord};
use cyclosa_telemetry::{SloKind, TraceSink};
use cyclosa_util::json::Json;
use std::collections::BTreeSet;

/// A churn configuration heavy enough to force retries and repairs.
fn stormy() -> ChurnConfig {
    ChurnConfig {
        relays: 20,
        k: 3,
        queries: 40,
        failure_rate: 0.4,
        adaptive: true,
        ..ChurnConfig::default()
    }
}

fn telemetry() -> ChurnTelemetry {
    ChurnTelemetry {
        trace: TraceSink::enabled(),
        metrics: None,
    }
}

fn records_of(telemetry: &ChurnTelemetry) -> Vec<TraceRecord> {
    telemetry
        .trace
        .events()
        .iter()
        .map(TraceRecord::from_event)
        .collect()
}

#[test]
fn critical_paths_sum_exactly_and_blame_only_real_victims() {
    let config = stormy();
    let observed = telemetry();
    run_churn_experiment_observed(&config, &ChaosPlan::new(), &observed);
    let records = records_of(&observed);
    let timelines = reconstruct(&records);

    let victims: BTreeSet<u64> = config
        .failure_plan()
        .events()
        .iter()
        .filter_map(|event| match event.kind {
            FaultKind::Crash(node) | FaultKind::Leave(node) => Some(node.0),
            _ => None,
        })
        .collect();
    assert!(!victims.is_empty(), "the storm must kill relays");

    let mut answered = 0usize;
    let mut stalled = 0usize;
    for timeline in &timelines {
        let Some(end_to_end) = timeline.end_to_end else {
            continue;
        };
        answered += 1;
        let path = timeline.path.expect("answered query has a decomposition");
        assert_eq!(
            path.total(),
            end_to_end,
            "query {}: critical-path components must sum to the recorded latency",
            timeline.query
        );
        assert!(
            path.relay_service.as_nanos() > 0 && path.engine_service.as_nanos() > 0,
            "query {}: the forwarding-path spans must anchor the decomposition",
            timeline.query
        );
        if path.stall.as_nanos() > 0 {
            stalled += 1;
        }
        for blamed in &timeline.blamed_relays {
            assert!(
                victims.contains(blamed),
                "query {} blames relay {blamed}, which the fault plan never killed",
                timeline.query
            );
        }
    }
    assert!(answered > 0, "the storm must answer queries");
    assert!(
        stalled > 0,
        "a 40% storm must stall at least one answering chain"
    );
    assert!(
        timelines.iter().any(|t| !t.blamed_relays.is_empty()),
        "some repair must be blamed on an injected fault"
    );
}

#[test]
fn observe_report_and_slo_alerts_are_byte_identical_across_shards() {
    let config = stormy();
    let options = ReportOptions {
        top: 5,
        slo: churn_slo_config(&config),
    };

    let reference = telemetry();
    run_churn_experiment_observed(&config, &ChaosPlan::new(), &reference);
    let expected_report = build_report(&records_of(&reference), Json::Null, &options).pretty();
    let expected_slos = evaluate_churn_slos(&config, &reference);

    for shards in [1, 2, 4, 8] {
        let observed = telemetry();
        run_churn_experiment_sharded_observed(&config, &ChaosPlan::new(), shards, &observed);
        let report = build_report(&records_of(&observed), Json::Null, &options).pretty();
        assert_eq!(
            report, expected_report,
            "observe report diverged at {shards} shards"
        );
        let slos = evaluate_churn_slos(&config, &observed);
        assert_eq!(
            slos.report, expected_slos.report,
            "SLO report diverged at {shards} shards"
        );
        assert_eq!(
            slos.timeline, expected_slos.timeline,
            "alert-enriched timeline diverged at {shards} shards"
        );
    }
}

#[test]
fn privacy_slo_is_clean_on_baseline_and_fires_under_fixed_k_failures() {
    // Failure-free baseline: every answer reports achieved_k ==
    // assessed_k, so the privacy SLO must not burn at all.
    let baseline = ChurnConfig {
        failure_rate: 0.0,
        ..stormy()
    };
    let observed = telemetry();
    run_churn_experiment_observed(&baseline, &ChaosPlan::new(), &observed);
    let outcome = evaluate_churn_slos(&baseline, &observed);
    assert!(outcome.report.answered > 0);
    assert_eq!(
        outcome.report.privacy_violations, 0,
        "baseline must be violation-free"
    );
    assert_eq!(outcome.report.alert_count(SloKind::Privacy), 0);

    // Half the relays fail under fixed-k planning: lost fakes are never
    // topped up, achieved_k dips, and the burn alerts fire — the same
    // ones on every run of the seed.
    let stressed = ChurnConfig {
        failure_rate: 0.5,
        adaptive: false,
        ..stormy()
    };
    let first_run = telemetry();
    run_churn_experiment_observed(&stressed, &ChaosPlan::new(), &first_run);
    let first = evaluate_churn_slos(&stressed, &first_run);
    assert!(
        first.report.privacy_violations > 0,
        "fixed-k planning under 50% failures must violate the privacy SLO"
    );
    assert!(
        first.report.alert_count(SloKind::Privacy) > 0,
        "burn alerts must fire"
    );

    let second_run = telemetry();
    run_churn_experiment_observed(&stressed, &ChaosPlan::new(), &second_run);
    let second = evaluate_churn_slos(&stressed, &second_run);
    assert_eq!(
        first.report, second.report,
        "alerts must fire deterministically"
    );
}
