//! Equivalence suite for the interned-term kernel and the inverted
//! SimAttack index: the optimized paths must reproduce the string-keyed
//! reference implementations — bit-identically for binary vectors and for
//! every attribution decision on the seeded synthetic AOL workload.

use cyclosa_attack::simattack::SimAttack;
use cyclosa_bench::setup::{ExperimentScale, ExperimentSetup};
use cyclosa_mechanism::UserId;
use cyclosa_nlp::kernel::{cosine_similarity_ids, IdVector};
use cyclosa_nlp::profile::DEFAULT_SMOOTHING_ALPHA;
use cyclosa_nlp::text::{is_stop_word, normalize, tokenize, TermInterner};
use cyclosa_nlp::vector::{cosine_similarity, TermVector};
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use cyclosa_util::smoothing::exponential_smoothing;

/// A deterministic random query over a small shared vocabulary (overlap
/// between queries is what exercises the merge-join).
fn random_query(rng: &mut Xoshiro256StarStar, terms: usize) -> String {
    let mut query = String::new();
    for i in 0..terms {
        if i > 0 {
            query.push(' ');
        }
        // 60 distinct terms; repeats within a query are likely on purpose.
        query.push_str(&format!("term{}", rng.gen_index(60)));
    }
    query
}

#[test]
fn binary_cosine_is_bit_identical_to_reference() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC05);
    let interner = TermInterner::new();
    for round in 0..2000 {
        let (na, nb) = (1 + rng.gen_index(6), 1 + rng.gen_index(6));
        let a = random_query(&mut rng, na);
        let b = random_query(&mut rng, nb);
        let reference = cosine_similarity(
            &TermVector::binary_from_query(&a),
            &TermVector::binary_from_query(&b),
        );
        let kernel = cosine_similarity_ids(
            &IdVector::binary_from_query(&interner, &a),
            &IdVector::binary_from_query(&interner, &b),
        );
        assert_eq!(
            reference.to_bits(),
            kernel.to_bits(),
            "round {round}: {a:?} vs {b:?} — {reference} != {kernel}"
        );
    }
}

#[test]
fn weighted_cosine_agrees_with_reference_within_1e12() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC06);
    let interner = TermInterner::new();
    for round in 0..2000 {
        // Term-frequency vectors: repeats give integer weights > 1.
        let (na, nb) = (2 + rng.gen_index(10), 2 + rng.gen_index(10));
        let a = random_query(&mut rng, na);
        let b = random_query(&mut rng, nb);
        let reference =
            cosine_similarity(&TermVector::tf_from_text(&a), &TermVector::tf_from_text(&b));
        let kernel = cosine_similarity_ids(
            &IdVector::tf_from_text(&interner, &a),
            &IdVector::tf_from_text(&interner, &b),
        );
        assert!(
            (reference - kernel).abs() < 1e-12,
            "round {round}: {a:?} vs {b:?} — {reference} != {kernel}"
        );
    }
}

#[test]
fn single_pass_tokenizer_matches_normalize_split_reference() {
    let reference = |query: &str| -> Vec<String> {
        normalize(query)
            .split_whitespace()
            .filter(|t| t.len() > 1 && !is_stop_word(t))
            .map(|t| t.to_owned())
            .collect()
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x70C);
    let alphabet: Vec<char> = "abcXYZ012 \t!?.,-_()&éß€的 the of and is".chars().collect();
    for _ in 0..2000 {
        let len = rng.gen_index(40);
        let query: String = (0..len)
            .map(|_| alphabet[rng.gen_index(alphabet.len())])
            .collect();
        assert_eq!(tokenize(&query), reference(&query), "query: {query:?}");
    }
}

/// The seed's SimAttack scan, reconstructed verbatim: string-keyed vectors,
/// query re-vectorized per profile, full scan with the 0.5-threshold /
/// unique-max rule.
struct SeedScan {
    profiles: Vec<(UserId, Vec<TermVector>)>,
    threshold: f64,
}

impl SeedScan {
    fn similarity(&self, past: &[TermVector], query: &str) -> f64 {
        let vector = TermVector::binary_from_query(query);
        if vector.is_empty() || past.is_empty() {
            return 0.0;
        }
        let similarities: Vec<f64> = past.iter().map(|p| cosine_similarity(&vector, p)).collect();
        exponential_smoothing(&similarities, DEFAULT_SMOOTHING_ALPHA)
    }

    fn reidentify(&self, query: &str) -> Option<UserId> {
        let mut best: Option<(UserId, f64)> = None;
        let mut tie = false;
        for (user, past) in &self.profiles {
            let score = self.similarity(past, query);
            match best {
                None => best = Some((*user, score)),
                Some((_, best_score)) => {
                    if score > best_score {
                        best = Some((*user, score));
                        tie = false;
                    } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                        tie = true;
                    }
                }
            }
        }
        match best {
            Some((user, score)) if score > self.threshold && !tie => Some(user),
            _ => None,
        }
    }
}

#[test]
fn simattack_decisions_are_identical_on_the_seeded_workload() {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 2018);
    let attack = SimAttack::from_training(&setup.train);
    let seed = SeedScan {
        profiles: setup
            .train
            .iter()
            .map(|t| {
                (
                    t.user,
                    t.queries
                        .iter()
                        .map(|q| TermVector::binary_from_query(&q.query.text))
                        .filter(|v| !v.is_empty())
                        .collect(),
                )
            })
            .collect(),
        threshold: 0.5,
    };

    let mut index_successes = 0usize;
    let mut scan_successes = 0usize;
    for q in &setup.test_queries {
        let indexed = attack.reidentify(&q.query.text);
        let kernel_scan = attack.reidentify_scan(&q.query.text);
        let seed_scan = seed.reidentify(&q.query.text);
        assert_eq!(indexed, kernel_scan, "index vs kernel scan: {:?}", q.query);
        assert_eq!(indexed, seed_scan, "index vs seed scan: {:?}", q.query);
        if indexed == Some(q.query.user) {
            index_successes += 1;
        }
        if seed_scan == Some(q.query.user) {
            scan_successes += 1;
        }
    }
    // Identical decisions imply byte-identical precision/recall numbers in
    // the Fig. 5/6 output; the success counters double-check the aggregate.
    assert_eq!(index_successes, scan_successes);
    // The attack must actually attribute something at this scale, otherwise
    // the equivalence above is vacuous.
    assert!(index_successes > 0, "no query was re-identified");
}

#[test]
fn simattack_scores_are_bit_identical_for_candidates() {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 7);
    let attack = SimAttack::from_training(&setup.train);
    let seed_profiles: Vec<(UserId, Vec<TermVector>)> = setup
        .train
        .iter()
        .map(|t| {
            (
                t.user,
                t.queries
                    .iter()
                    .map(|q| TermVector::binary_from_query(&q.query.text))
                    .filter(|v| !v.is_empty())
                    .collect(),
            )
        })
        .collect();
    let seed = SeedScan {
        profiles: seed_profiles.clone(),
        threshold: 0.5,
    };
    for q in setup.test_queries.iter().take(100) {
        for (user, past) in &seed_profiles {
            let reference = seed.similarity(past, &q.query.text);
            let kernel = attack.similarity_to(*user, &q.query.text).unwrap();
            assert_eq!(
                reference.to_bits(),
                kernel.to_bits(),
                "user {user:?}, query {:?}",
                q.query.text
            );
        }
    }
}

#[test]
fn group_reidentification_matches_reference_rule() {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 99);
    let attack = SimAttack::from_training(&setup.train);
    let users: Vec<UserId> = setup.train.iter().map(|t| t.user).collect();
    let texts: Vec<&str> = setup
        .test_queries
        .iter()
        .map(|q| q.query.text.as_str())
        .collect();
    for window in texts.windows(3).take(60) {
        let disjuncts: Vec<&str> = window.to_vec();
        // Reference: score every (user, disjunct) pair through the public
        // similarity API and apply the unique-max/threshold rule.
        let mut best: Option<(UserId, usize, f64)> = None;
        let mut tie = false;
        for &user in &users {
            for (i, d) in disjuncts.iter().enumerate() {
                let score = attack.similarity_to(user, d).unwrap();
                match best {
                    None => best = Some((user, i, score)),
                    Some((_, _, best_score)) => {
                        if score > best_score {
                            best = Some((user, i, score));
                            tie = false;
                        } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                            tie = true;
                        }
                    }
                }
            }
        }
        let reference = match best {
            Some((user, i, score)) if score > attack.threshold() && !tie => Some((user, i)),
            _ => None,
        };
        assert_eq!(
            attack.reidentify_group(&disjuncts),
            reference,
            "disjuncts: {disjuncts:?}"
        );
    }
}
