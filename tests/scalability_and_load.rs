//! Integration test of the system-side experiments: rate limiting blocks
//! the centralized proxy but not the decentralized deployment (Fig. 8d),
//! the relay sustains higher load than the X-SEARCH proxy (Fig. 8c), and
//! end-to-end latencies stay sub-second while TOR does not (Fig. 8a).

use cyclosa::deployment::{
    relay_service_time_ns, run_end_to_end_latency, run_load_experiment, throughput_latency_curve,
    xsearch_service_time_ns, EndToEndConfig, LoadExperimentConfig,
};
use cyclosa_baselines::latency::LatencyProfile;
use cyclosa_sgx::enclave::CostModel;
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_util::stats::Summary;

#[test]
fn centralized_proxy_is_blocked_while_cyclosa_spreads_the_load() {
    let report = run_load_experiment(LoadExperimentConfig {
        duration_minutes: 60,
        ..LoadExperimentConfig::default()
    });
    assert_eq!(report.cyclosa_rejected, 0);
    assert!(report.xsearch_rejected.iter().sum::<u64>() > 0);
    // After the first bucket the proxy is essentially dead.
    assert_eq!(*report.xsearch_admitted.last().unwrap(), 0);
    // CYCLOSA nodes stay far below the engine's hourly budget.
    let per_hour_upper_bound = report
        .cyclosa_max_per_node
        .iter()
        .cloned()
        .fold(0.0, f64::max)
        * (60.0 / 10.0);
    assert!(per_hour_upper_bound < report.engine_hourly_limit as f64);
    assert!(report.cyclosa_fairness > 0.9);
}

#[test]
fn relay_sustains_higher_request_rates_than_the_xsearch_proxy() {
    let cost = CostModel::default();
    let cyclosa_service = relay_service_time_ns(&cost, 512);
    let xsearch_service = xsearch_service_time_ns(&cost, 512, 3);
    assert!(cyclosa_service < xsearch_service);

    let rates = [10_000.0, 30_000.0, 40_000.0];
    let cyclosa = throughput_latency_curve(cyclosa_service, &rates, 5.3);
    let xsearch = throughput_latency_curve(xsearch_service, &rates, 5.3);
    // CYCLOSA still answers at 40,000 req/s with sub-second latency.
    assert!(!cyclosa[2].saturated);
    assert!(cyclosa[2].latency_s < 1.0);
    // X-SEARCH has collapsed by 30,000-40,000 req/s.
    assert!(xsearch[1].saturated || xsearch[2].saturated);
}

#[test]
fn cyclosa_latency_is_sub_second_and_an_order_of_magnitude_below_tor() {
    let cyclosa = run_end_to_end_latency(EndToEndConfig {
        relays: 30,
        k: 3,
        queries: 80,
        ..EndToEndConfig::default()
    });
    let cyclosa_median = Summary::from_samples(&cyclosa).median;
    assert!(cyclosa_median < 1.5, "median {cyclosa_median}");

    let profile = LatencyProfile::default();
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let tor: Vec<f64> = (0..80).map(|_| profile.tor(&mut rng).as_secs_f64()).collect();
    let tor_median = Summary::from_samples(&tor).median;
    assert!(
        tor_median / cyclosa_median > 10.0,
        "TOR ({tor_median}) should be at least 10x slower than CYCLOSA ({cyclosa_median})"
    );
}
