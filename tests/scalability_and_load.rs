//! Integration test of the system-side experiments: rate limiting blocks
//! the centralized proxy but not the decentralized deployment (Fig. 8d),
//! the relay sustains higher load than the X-SEARCH proxy (Fig. 8c),
//! end-to-end latencies stay sub-second while TOR does not (Fig. 8a), and
//! the sharded runtime scales the population while reproducing the
//! sequential results.

use cyclosa::deployment::{
    relay_service_time_ns, run_end_to_end_latency, run_load_experiment, throughput_latency_curve,
    xsearch_service_time_ns, EndToEndConfig, LoadExperimentConfig,
};
use cyclosa_baselines::latency::LatencyProfile;
use cyclosa_bench::scalability::{run_scale_point, scalability_sweep, ScaleConfig};
use cyclosa_sgx::enclave::CostModel;
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_util::stats::Summary;

#[test]
fn centralized_proxy_is_blocked_while_cyclosa_spreads_the_load() {
    let report = run_load_experiment(LoadExperimentConfig {
        duration_minutes: 60,
        ..LoadExperimentConfig::default()
    });
    assert_eq!(report.cyclosa_rejected, 0);
    assert!(report.xsearch_rejected.iter().sum::<u64>() > 0);
    // After the first bucket the proxy is essentially dead.
    assert_eq!(*report.xsearch_admitted.last().unwrap(), 0);
    // CYCLOSA nodes stay far below the engine's hourly budget.
    let per_hour_upper_bound = report
        .cyclosa_max_per_node
        .iter()
        .cloned()
        .fold(0.0, f64::max)
        * (60.0 / 10.0);
    assert!(per_hour_upper_bound < report.engine_hourly_limit as f64);
    assert!(report.cyclosa_fairness > 0.9);
}

#[test]
fn relay_sustains_higher_request_rates_than_the_xsearch_proxy() {
    let cost = CostModel::default();
    let cyclosa_service = relay_service_time_ns(&cost, 512);
    let xsearch_service = xsearch_service_time_ns(&cost, 512, 3);
    assert!(cyclosa_service < xsearch_service);

    let rates = [10_000.0, 30_000.0, 40_000.0];
    let cyclosa = throughput_latency_curve(cyclosa_service, &rates, 5.3);
    let xsearch = throughput_latency_curve(xsearch_service, &rates, 5.3);
    // CYCLOSA still answers at 40,000 req/s with sub-second latency.
    assert!(!cyclosa[2].saturated);
    assert!(cyclosa[2].latency_s < 1.0);
    // X-SEARCH has collapsed by 30,000-40,000 req/s.
    assert!(xsearch[1].saturated || xsearch[2].saturated);
}

#[test]
fn cyclosa_latency_is_sub_second_and_an_order_of_magnitude_below_tor() {
    let cyclosa = run_end_to_end_latency(EndToEndConfig {
        relays: 30,
        k: 3,
        queries: 80,
        ..EndToEndConfig::default()
    });
    let cyclosa_median = Summary::from_samples(&cyclosa).median;
    assert!(cyclosa_median < 1.5, "median {cyclosa_median}");

    let profile = LatencyProfile::default();
    let mut rng = Xoshiro256StarStar::seed_from_u64(1);
    let tor: Vec<f64> = (0..80)
        .map(|_| profile.tor(&mut rng).as_secs_f64())
        .collect();
    let tor_median = Summary::from_samples(&tor).median;
    assert!(
        tor_median / cyclosa_median > 10.0,
        "TOR ({tor_median}) should be at least 10x slower than CYCLOSA ({cyclosa_median})"
    );
}

#[test]
fn scalability_sweep_covers_shard_counts_with_stable_event_counts() {
    let config = ScaleConfig {
        rounds: 3,
        ..ScaleConfig::default()
    };
    let report = scalability_sweep(&[2_000], &[1, 2, 4], &config);
    assert_eq!(report.points.len(), 3);
    let events = report.points[0].events;
    assert!(events > 10_000, "only {events} events processed");
    for point in &report.points {
        assert_eq!(
            point.events, events,
            "event count changed with {} shards",
            point.shards
        );
        assert!(point.delivered > 0);
        assert!(point.sim_seconds > 1.0);
    }
}

#[test]
fn large_population_runs_on_at_least_four_shards() {
    // A scaled-down twin of the 100k-node bench bin (kept small so the
    // test suite stays fast; `cargo run --release -p cyclosa-bench --bin
    // scale` exercises the full 1k → 100k sweep).
    let config = ScaleConfig {
        rounds: 2,
        ..ScaleConfig::default()
    };
    let point = run_scale_point(10_000, 4, &config);
    assert_eq!(point.shards, 4);
    assert_eq!(point.nodes, 10_000);
    assert!(point.events > 50_000, "only {} events", point.events);
    assert!(point.events_per_second > 0.0);
}
