//! Meta-test: the shipped tree passes `cyclosa-lint`, and the lint still
//! has teeth — seeded mutations of production sources (scanned in memory,
//! never written to disk) must each produce a finding of the right rule.

use cyclosa_lint::{annot, scan, Rule, Workspace};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn load() -> Workspace {
    Workspace::load(repo_root()).expect("workspace loads")
}

/// Replaces one file of the loaded workspace with a mutated source,
/// re-scanning and re-parsing annotations, as if the mutation were on disk.
fn mutate(workspace: &mut Workspace, path: &str, append: &str) {
    let index = workspace
        .files
        .iter()
        .position(|f| f.path == path)
        .unwrap_or_else(|| panic!("{path} not in workspace"));
    let original = std::fs::read_to_string(repo_root().join(path)).expect("source readable");
    let mutated = format!("{original}\n{append}\n");
    let file = scan::scan_source(path, &mutated);
    workspace
        .annots
        .insert(path.to_owned(), annot::parse(&file));
    workspace.files[index] = file;
}

#[test]
fn shipped_tree_lints_clean() {
    let findings = load().run(&Rule::ALL);
    assert!(
        findings.is_empty(),
        "the shipped tree must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn rng_registry_is_in_sync() {
    let expected = load().registry_doc();
    let on_disk = std::fs::read_to_string(repo_root().join(cyclosa_lint::RNG_REGISTRY_FILE))
        .expect("RNG_STREAMS.md committed");
    assert_eq!(
        on_disk, expected,
        "RNG_STREAMS.md is stale — run `cargo run --bin lint -- --write-registry`"
    );
}

#[test]
fn seeded_wall_clock_mutation_is_caught() {
    let mut workspace = load();
    mutate(
        &mut workspace,
        "crates/net/src/sim.rs",
        "fn sneaky_stopwatch() -> std::time::Instant { std::time::Instant::now() }",
    );
    let findings = workspace.run(&[Rule::WallClock]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::WallClock && f.path == "crates/net/src/sim.rs"),
        "bare Instant::now() in net/sim.rs must be flagged: {findings:?}"
    );
}

#[test]
fn seeded_hash_collection_mutation_is_caught() {
    let mut workspace = load();
    mutate(
        &mut workspace,
        "crates/net/src/sim.rs",
        "fn sneaky_state() -> std::collections::HashMap<u64, u64> { std::collections::HashMap::new() }",
    );
    let findings = workspace.run(&[Rule::HashCollections]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::HashCollections && f.path == "crates/net/src/sim.rs"),
        "bare HashMap in net/sim.rs must be flagged: {findings:?}"
    );
}

#[test]
fn seeded_schema_drift_is_caught() {
    let mut workspace = load();
    mutate(
        &mut workspace,
        "crates/core/src/node.rs",
        "fn sneaky_emit(t: &cyclosa_telemetry::TraceSink, e: cyclosa_telemetry::TraceEvent) { let _ = t; let _ = e.name; let _ = (\"x\", \"plan.zzz_unregistered\"); fn event(_: u8) {} event(1); let _ = \"plan.zzz_unregistered\"; }",
    );
    // The mutated file contains a family-shaped literal outside the schema.
    let findings = workspace.run(&[Rule::TraceSchema]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::TraceSchema && f.message.contains("plan.zzz_unregistered")),
        "unregistered event name must be flagged: {findings:?}"
    );
}

#[test]
fn seeded_rng_stream_collision_is_caught() {
    let mut workspace = load();
    // core/node.rs already forks label 0xFA4E once; a second fork with the
    // same label in the same file correlates the streams.
    mutate(
        &mut workspace,
        "crates/core/src/node.rs",
        "fn sneaky_fork(r: &mut cyclosa_util::rng::Xoshiro256StarStar) -> cyclosa_util::rng::Xoshiro256StarStar { r.fork(0xFA4E) }",
    );
    let findings = workspace.run(&[Rule::RngStream]);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::RngStream && f.message.contains("fork label")),
        "duplicate fork label must be flagged: {findings:?}"
    );
}

#[test]
fn reasonless_allow_mutation_is_caught() {
    let mut workspace = load();
    mutate(
        &mut workspace,
        "crates/net/src/sim.rs",
        "// cyclosa-lint: allow(hash_collections)\nfn sneaky() -> std::collections::HashMap<u64, u64> { std::collections::HashMap::new() }",
    );
    let findings = workspace.run(&Rule::ALL);
    // The reason-less allow is itself a finding AND fails to suppress.
    assert!(findings
        .iter()
        .any(|f| f.rule == Rule::AllowHygiene && f.path == "crates/net/src/sim.rs"));
    assert!(findings
        .iter()
        .any(|f| f.rule == Rule::HashCollections && f.path == "crates/net/src/sim.rs"));
}
