//! Workspace-level umbrella crate for the CYCLOSA reproduction.
//!
//! This crate only hosts the cross-crate integration tests (in `tests/`) and
//! the runnable examples (in `examples/`). The actual functionality lives in
//! the `cyclosa-*` crates under `crates/`.

pub use cyclosa as core;
pub use cyclosa_attack as attack;
pub use cyclosa_baselines as baselines;
pub use cyclosa_chaos as chaos;
pub use cyclosa_crypto as crypto;
pub use cyclosa_mechanism as mechanism;
pub use cyclosa_net as net;
pub use cyclosa_nlp as nlp;
pub use cyclosa_peer_sampling as peer_sampling;
pub use cyclosa_runtime as runtime;
pub use cyclosa_search_engine as search_engine;
pub use cyclosa_sgx as sgx;
pub use cyclosa_telemetry as telemetry;
pub use cyclosa_util as util;
pub use cyclosa_workload as workload;
