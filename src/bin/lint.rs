//! `cargo run --bin lint` — run the cyclosa-lint static-analysis pass.
//!
//! ```text
//! lint [--root <path>] [--only <rule>]... [--deny-all] [--write-registry]
//! ```
//!
//! - `--only <rule>` restricts the run (`wall-clock`, `hash-collections`,
//!   `nondet`, `rng-stream`, `trace-schema`, `allow-hygiene`); repeatable.
//! - `--write-registry` regenerates `RNG_STREAMS.md` instead of linting.
//! - `--deny-all` is the CI spelling: every finding is an error. Findings
//!   are always errors; the flag documents intent at the call site.
//! - `--root <path>` lints a tree other than the current directory.

use cyclosa_lint::{Rule, Workspace, RNG_REGISTRY_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut rules: Vec<Rule> = Vec::new();
    let mut write_registry = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage("--root needs a path"),
            },
            "--only" => match args.next().as_deref().and_then(Rule::from_arg) {
                Some(selected) => rules.extend(selected),
                None => return usage("--only needs a known rule name"),
            },
            "--deny-all" => {} // findings are always errors; accepted for CI clarity
            "--write-registry" => write_registry = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if rules.is_empty() {
        rules.extend(Rule::ALL);
    }

    let workspace = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(err) => {
            eprintln!("lint: cannot load workspace at {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if write_registry {
        let path = root.join(RNG_REGISTRY_FILE);
        if let Err(err) = std::fs::write(&path, workspace.registry_doc()) {
            eprintln!("lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("lint: wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let findings = workspace.run(&rules);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!(
            "lint: {} files clean across {} rule(s)",
            workspace.files.len(),
            rules.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    if !problem.is_empty() {
        eprintln!("lint: {problem}");
    }
    eprintln!(
        "usage: lint [--root <path>] [--only <rule>]... [--deny-all] [--write-registry]\n\
         rules: wall-clock, hash-collections, nondet, rng-stream, trace-schema, allow-hygiene"
    );
    if problem.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
