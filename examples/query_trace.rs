//! One query's causal timeline through a scripted relay crash.
//!
//! The telemetry layer threads every event of a query's life — launch,
//! the relay going silent, the blacklist-and-resubmit repair, the
//! adaptive fake top-up, the final answer span — onto a single merged
//! timeline keyed by the query sequence number. This example scripts a
//! crash against exactly the relay one query depends on and prints that
//! query's timeline, then shows the JSONL lines a `--trace` run would
//! export for it.
//!
//! Run with `cargo run --example query_trace`.

use cyclosa_chaos::experiment::{run_churn_experiment_observed, ChurnConfig, ChurnTelemetry};
use cyclosa_chaos::ChaosPlan;
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_telemetry::export::to_jsonl;
use cyclosa_telemetry::{AttrValue, TraceEvent, TraceSink};

/// The query whose story we tell.
const VICTIM_QUERY: u64 = 3;

fn telemetry() -> ChurnTelemetry {
    ChurnTelemetry {
        trace: TraceSink::enabled(),
        metrics: None,
    }
}

fn config() -> ChurnConfig {
    ChurnConfig {
        relays: 30,
        k: 3,
        queries: 8,
        failure_rate: 0.0, // no sampled churn — the crash below is scripted
        adaptive: true,
        ..ChurnConfig::default()
    }
}

fn attr<'a>(event: &'a TraceEvent, key: &str) -> Option<&'a AttrValue> {
    event
        .attrs
        .iter()
        .find_map(|(k, v)| (*k == key).then_some(v))
}

fn main() {
    // Pass 1: a fault-free traced run tells us, from the timeline itself,
    // which relay the victim query launches its real message through and
    // when. Tracing is a pure read-out, so this run is bit-identical to
    // an untraced one — we are just reading the engine's diary.
    let scout = telemetry();
    run_churn_experiment_observed(&config(), &ChaosPlan::new(), &scout);
    let launch = scout
        .trace
        .events()
        .iter()
        .find(|e| e.name == "query.launch" && e.query == Some(VICTIM_QUERY))
        .cloned()
        .expect("the victim query launches");
    let relay = match attr(&launch, "relay") {
        Some(AttrValue::U64(id)) => NodeId(*id),
        other => panic!("query.launch carries its relay id, got {other:?}"),
    };
    println!(
        "query #{VICTIM_QUERY} launches at {:.3} s through relay {}",
        launch.at.as_secs_f64(),
        relay.0
    );

    // Pass 2: the same run, but a scripted ChaosPlan crashes exactly that
    // relay right after the launch — the real message dies with it, the
    // retry timeout fires, and the client repairs around the corpse.
    let crash_at = launch.at + SimTime::from_millis(1);
    let script = ChaosPlan::new().crash_at(crash_at, relay);
    println!(
        "scripting a crash of relay {} at {:.3} s and re-running...\n",
        relay.0,
        crash_at.as_secs_f64()
    );
    let observed = telemetry();
    let outcome = run_churn_experiment_observed(&config(), &script, &observed);
    assert!(outcome.retries > 0, "the crash must force a repair");

    // Walk the victim query's causal timeline: its own events plus the
    // fault annotation for the relay it was relying on.
    println!("causal timeline of query #{VICTIM_QUERY}:");
    for event in observed.trace.events() {
        let involves_query = event.query == Some(VICTIM_QUERY);
        let involves_relay = event.actor == relay.0 && event.name.starts_with("fault.");
        if !involves_query && !involves_relay {
            continue;
        }
        let attrs: Vec<String> = event
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect();
        let dur = match event.dur {
            Some(d) => format!(" (span, {:.3} s)", d.as_secs_f64()),
            None => String::new(),
        };
        println!(
            "  {:>8.3} s  actor {:>4}  {:<14}{} {}",
            event.at.as_secs_f64(),
            event.actor,
            event.name,
            dur,
            attrs.join(" ")
        );
    }

    // The repair must be annotated as fault-injected: the relay it heals
    // around is exactly the one our script killed.
    let repair = observed
        .trace
        .events()
        .iter()
        .find(|e| e.name == "query.repair" && e.query == Some(VICTIM_QUERY))
        .cloned()
        .expect("the victim query repairs");
    assert_eq!(attr(&repair, "failed"), Some(&AttrValue::U64(relay.0)));
    assert_eq!(
        attr(&repair, "fault_injected"),
        Some(&AttrValue::Bool(true))
    );
    println!(
        "\nthe repair heals around relay {} and is annotated fault_injected=true",
        relay.0
    );

    // What `--trace` would write: the victim query's JSONL lines.
    let victim_events: Vec<TraceEvent> = observed
        .trace
        .events()
        .iter()
        .filter(|e| e.query == Some(VICTIM_QUERY))
        .cloned()
        .collect();
    println!("\nexported JSONL for query #{VICTIM_QUERY}:");
    print!("{}", to_jsonl(&victim_events));
}
