//! Quickstart: create a CYCLOSA node, bootstrap it, and protect a few
//! queries with the adaptive scheme.
//!
//! Run with `cargo run --example quickstart`.

use cyclosa::config::ProtectionConfig;
use cyclosa::node::CyclosaNode;
use cyclosa::sensitivity::build_categorizer;
use cyclosa_peer_sampling::PeerId;
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_workload::topics::{seed_queries, sensitive_corpus, synthetic_lexicon, TopicCatalog};

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(42);

    // 1. Build the semantic dictionaries for the topics this user considers
    //    sensitive (health + sexuality), the way §V-A1 describes.
    let catalog = TopicCatalog::default_catalog();
    let lexicon = synthetic_lexicon(&catalog);
    let corpus = sensitive_corpus(&catalog, 200, &mut rng);
    let protection = ProtectionConfig::default(); // kmax = 7
    let categorizer = build_categorizer(
        &lexicon,
        &["health", "sexuality"],
        &corpus,
        &protection,
        &mut rng,
    );

    // 2. Create the node (its SGX enclave is created and initialized here).
    let mut node = CyclosaNode::builder(1)
        .sensitive_topic("health")
        .sensitive_topic("sexuality")
        .protection(protection)
        .categorizer(categorizer)
        .build();

    // 3. Bootstrap: seed the fake-query table with trending queries and the
    //    peer view from a public directory (§V-D).
    let seeds = seed_queries(&catalog, 50, &mut rng);
    node.bootstrap_with_seed_queries(seeds.iter().map(|s| s.as_str()));
    node.bootstrap_peers((2..60).map(PeerId));

    // 4. The user's recent history drives the linkability assessment.
    node.record_own_history([
        "zurich train timetable",
        "zurich tram map",
        "coop opening hours",
    ]);

    // 5. Protect a few queries.
    for query in [
        "museum opening hours basel", // fresh, non-sensitive: little protection needed
        "zurich train timetable tomorrow", // linkable to the history: proportional protection
        "hiv test anonymous clinic",  // semantically sensitive: maximum protection
    ] {
        let plan = node
            .plan_query(query, &mut rng)
            .expect("node is bootstrapped");
        println!("query: {query:?}");
        println!(
            "  semantic = {}, linkability = {:.2}, k = {}",
            plan.assessment.semantic, plan.assessment.linkability, plan.assessment.k
        );
        for assignment in plan.assignments() {
            println!(
                "  -> relay {:>8}  {}  {:?}",
                assignment.relay.to_string(),
                if assignment.is_real { "REAL" } else { "fake" },
                assignment.query
            );
        }
    }
    println!("node stats: {:?}", node.stats());
}
