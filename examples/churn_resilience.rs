//! Churn resilience end to end: a [`ChaosPlan`] drives relay failures
//! against the end-to-end latency experiment while the client-side healing
//! path (blacklist the silent relay, resubmit through a fresh one) keeps
//! queries flowing — the robustness-under-failure scenario of the paper.
//!
//! Run with `cargo run --example churn_resilience`.

use cyclosa_chaos::experiment::{run_churn_experiment, run_churn_experiment_sharded, ChurnConfig};
use cyclosa_chaos::{ChurnModel, FaultKind};
use cyclosa_net::sim::Simulation;
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_util::stats::Summary;

fn main() {
    // 1. Sweep the relay failure rate through the churn latency experiment:
    //    relays fail mid-run as deterministic membership events sampled by
    //    the experiment's ChaosPlan, and the client heals around them.
    println!("failure-rate sweep (50 relays, k = 3, 80 queries, permanent failures):");
    println!(
        "{:>8}  {:>10}  {:>10}  {:>9}  {:>7}",
        "failure", "median(s)", "p95(s)", "answered", "retries"
    );
    for rate in [0.0, 0.1, 0.25, 0.5] {
        let config = ChurnConfig {
            relays: 50,
            k: 3,
            queries: 80,
            failure_rate: rate,
            ..ChurnConfig::default()
        };
        let outcome = run_churn_experiment(&config);
        let summary = Summary::from_samples(&outcome.latencies);
        println!(
            "{:>8.2}  {:>10.3}  {:>10.3}  {:>6}/{:<2}  {:>7}",
            rate,
            summary.median,
            summary.p95,
            outcome.answered,
            outcome.answered + outcome.unanswered,
            outcome.retries
        );
    }

    // 2. The same deterministic scenario scales out unchanged: a sharded
    //    run reproduces the sequential outcome bit for bit, churn included.
    let config = ChurnConfig {
        relays: 40,
        k: 3,
        queries: 40,
        failure_rate: 0.3,
        recover: true,
        ..ChurnConfig::default()
    };
    let sequential = run_churn_experiment(&config);
    let sharded = run_churn_experiment_sharded(&config, 4);
    assert_eq!(sequential, sharded);
    println!(
        "\nsharded run (4 shards) is bit-identical to the sequential run: \
         {} answered, {} retries, {} crashes healed by {} recoveries",
        sharded.answered, sharded.retries, sharded.stats.crashed, sharded.stats.recovered
    );

    // 3. Hand-rolled chaos: sample an exponential-sessions churn model into
    //    a ChaosPlan and inspect what it would do to a 20-relay population.
    let model = ChurnModel::ExponentialSessions {
        mean_uptime: SimTime::from_secs(25),
        mean_downtime: SimTime::from_secs(10),
    };
    let relays: Vec<NodeId> = (1..=20).map(NodeId).collect();
    let plan = model.sample(&relays, SimTime::from_secs(60), 7);
    let crashes = plan
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::Crash(_)))
        .count();
    println!(
        "\nexponential-sessions plan over 60 s: {} events ({} crashes, {:.0}% of relays hit)",
        plan.len(),
        crashes,
        plan.failure_fraction(relays.len()) * 100.0
    );
    // Apply it to a bare engine just to show the plumbing: faults become
    // scheduled membership events and run to completion.
    let mut simulation = Simulation::new(7);
    plan.apply(&mut simulation);
    simulation.run();
    let stats = simulation.stats();
    println!(
        "applied to a bare engine: {} crashes executed, {} recoveries",
        stats.crashed, stats.recovered
    );
}
