//! A small decentralized deployment: many CYCLOSA nodes converge their peer
//! views by gossip, establish mutually attested channels, relay each other's
//! queries, and the end-to-end latency of real-query paths is measured on
//! the simulated wide-area network (the Fig. 8a/8b machinery).
//!
//! Run with `cargo run --example decentralized_network`.

use cyclosa::deployment::{converge_peer_views, run_end_to_end_latency, EndToEndConfig};
use cyclosa::node::{attested_channel_pair, CyclosaNode};
use cyclosa_sgx::attestation::AttestationService;
use cyclosa_sgx::enclave::CostModel;
use cyclosa_sgx::measurement::Measurement;
use cyclosa_util::stats::Summary;

fn main() {
    // 1. Spin up 30 nodes and let the gossip-based peer sampling converge.
    let mut nodes: Vec<CyclosaNode> = (0..30).map(|i| CyclosaNode::builder(i).build()).collect();
    converge_peer_views(&mut nodes, 15, 99);
    let mean_view: f64 = nodes
        .iter()
        .map(|n| n.peer_sampling().view().len() as f64)
        .sum::<f64>()
        / nodes.len() as f64;
    println!("gossip converged: mean view size = {mean_view:.1} peers");

    // 2. Provision every platform at the attestation service and allow the
    //    reference CYCLOSA measurement, then open an attested channel
    //    between two arbitrary nodes and relay a query through it.
    let mut service = AttestationService::new();
    service.allow_measurement(Measurement::cyclosa_reference());
    for node in &nodes {
        service.provision_platform(node.platform());
    }
    let (left, right) = {
        let mut iter = nodes.iter_mut();
        (iter.next().unwrap(), iter.next().unwrap())
    };
    let (mut client_channel, mut relay_channel) =
        attested_channel_pair(left, right, &service).expect("attestation succeeds");
    let record = client_channel.seal(b"swiss federal elections 2026 polls", b"fwd");
    let received = relay_channel
        .open(&record, b"fwd")
        .expect("record authentic");
    let forwarded = right.relay_query(std::str::from_utf8(&received).unwrap());
    println!(
        "relayed one query through an attested channel: {:?} (relay table now holds {} entries)",
        forwarded,
        right.past_query_count()
    );

    // 3. Measure end-to-end latency on the simulated WAN for k = 3 and k = 7.
    for k in [3usize, 7] {
        let latencies = run_end_to_end_latency(EndToEndConfig {
            relays: 30,
            k,
            queries: 100,
            seed: 2018 + k as u64,
            cost: CostModel::default(),
            ..EndToEndConfig::default()
        });
        let summary = Summary::from_samples(&latencies);
        println!(
            "k = {k}: median end-to-end latency {:.3} s (p95 {:.3} s) over {} queries",
            summary.median, summary.p95, summary.count
        );
    }
}
