//! Sensitive-topic detection: build the WordNet-like and LDA dictionaries
//! and compare the three categorizer variants of Table II on a labelled
//! workload sample.
//!
//! Run with `cargo run --example sensitive_topics`.

use cyclosa::config::ProtectionConfig;
use cyclosa::sensitivity::build_categorizer;
use cyclosa_nlp::categorizer::{CategorizerMethod, DetectionQuality};
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_workload::generator::{QueryLog, WorkloadConfig, WorkloadGenerator};
use cyclosa_workload::topics::{sensitive_corpus, synthetic_lexicon, TopicCatalog};

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let catalog = TopicCatalog::default_catalog();
    let lexicon = synthetic_lexicon(&catalog);
    let corpus = sensitive_corpus(&catalog, 400, &mut rng);
    let protection = ProtectionConfig::default();

    // Table II focuses on the sexuality topic, as the paper does.
    let categorizer = build_categorizer(&lexicon, &["sexuality"], &corpus, &protection, &mut rng);

    // A few hand-picked queries first.
    println!("hand-picked queries:");
    for query in [
        "erotic short stories",
        "adult education evening classes",
        "lingerie size guide",
        "cheap flights geneva paris",
    ] {
        print!("  {query:?}:");
        for method in [
            CategorizerMethod::WordNet,
            CategorizerMethod::Lda,
            CategorizerMethod::Combined,
        ] {
            print!("  {method}={}", categorizer.is_sensitive(query, method));
        }
        println!();
    }

    // Then a workload-scale precision/recall evaluation.
    let generator = WorkloadGenerator::new(
        catalog.clone(),
        WorkloadConfig {
            users: 60,
            mean_queries_per_user: 60,
            ..WorkloadConfig::default()
        },
    );
    let log = generator.generate(&mut rng);
    let (_, test) = log.train_test_split(2.0 / 3.0);
    let queries = QueryLog::interleave(&test);
    let ground_truth: Vec<bool> = queries.iter().map(|q| q.topic == "sexuality").collect();

    println!("\nworkload evaluation over {} test queries:", queries.len());
    println!(
        "{:<16} {:>10} {:>8} {:>8}",
        "method", "precision", "recall", "F1"
    );
    for method in [
        CategorizerMethod::WordNet,
        CategorizerMethod::Lda,
        CategorizerMethod::Combined,
    ] {
        let detections: Vec<bool> = queries
            .iter()
            .map(|q| categorizer.is_sensitive(&q.query.text, method))
            .collect();
        let quality = DetectionQuality::evaluate(&detections, &ground_truth);
        println!(
            "{:<16} {:>10.2} {:>8.2} {:>8.2}",
            method.to_string(),
            quality.precision,
            quality.recall,
            quality.f1()
        );
    }
}
