//! Attack evaluation: run the SimAttack re-identification adversary against
//! TOR, X-SEARCH and CYCLOSA on a synthetic workload, and compare the
//! accuracy of the results each mechanism returns (a miniature of Fig. 5
//! and Fig. 6).
//!
//! Run with `cargo run --example attack_evaluation`.

use cyclosa::config::ProtectionConfig;
use cyclosa::mechanism::Cyclosa;
use cyclosa::sensitivity::build_categorizer;
use cyclosa_attack::accuracy::evaluate_accuracy;
use cyclosa_attack::evaluation::evaluate_reidentification;
use cyclosa_baselines::{Tor, XSearch};
use cyclosa_mechanism::Mechanism;
use cyclosa_nlp::categorizer::CategorizerMethod;
use cyclosa_search_engine::corpus::CorpusGenerator;
use cyclosa_search_engine::{EngineConfig, Index, SearchEngine};
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_workload::generator::{QueryLog, WorkloadConfig, WorkloadGenerator};
use cyclosa_workload::topics::{seed_queries, sensitive_corpus, synthetic_lexicon, TopicCatalog};

fn main() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(2018);

    // Workload: 40 users, 2/3 training (adversary knowledge), 1/3 testing.
    let catalog = TopicCatalog::default_catalog();
    let generator = WorkloadGenerator::new(
        catalog.clone(),
        WorkloadConfig {
            users: 40,
            mean_queries_per_user: 50,
            ..WorkloadConfig::default()
        },
    );
    let log = generator.generate(&mut rng);
    let (train, test) = log.train_test_split(2.0 / 3.0);
    let test_queries = QueryLog::interleave(&test);
    println!(
        "workload: {} users, {} training / {} testing queries",
        log.user_count(),
        train.iter().map(|t| t.len()).sum::<usize>(),
        test_queries.len()
    );

    // Search engine over a synthetic corpus built from the same topics.
    let documents = CorpusGenerator::new(catalog.as_corpus_topics(), 14).generate(60, &mut rng);
    let engine = SearchEngine::new(Index::build(&documents), EngineConfig::default());

    // Mechanisms under attack (k = 7 as in Fig. 5).
    let k = 7;
    let mut tor = Tor::new();
    let mut xsearch = XSearch::with_default_platform(k);
    for trace in &train {
        xsearch.seed_with_queries(trace.queries.iter().map(|q| q.query.text.as_str()));
    }
    let protection = ProtectionConfig::with_k_max(k);
    let lexicon = synthetic_lexicon(&catalog);
    let corpus = sensitive_corpus(&catalog, 200, &mut rng);
    let categorizer = build_categorizer(
        &lexicon,
        &["health", "politics", "religion", "sexuality"],
        &corpus,
        &protection,
        &mut rng,
    );
    let mut cyclosa = Cyclosa::new(protection, categorizer, CategorizerMethod::Combined);
    cyclosa.seed_fake_pool(
        seed_queries(&catalog, 100, &mut rng)
            .iter()
            .map(|s| s.as_str()),
    );
    for trace in &train {
        cyclosa.register_user_history(
            trace.user,
            trace.queries.iter().map(|q| q.query.text.as_str()),
        );
    }

    println!(
        "\n{:<10} {:>18} {:>15} {:>16}",
        "mechanism", "re-identification", "correctness", "completeness"
    );
    let mechanisms: Vec<(&str, &mut dyn Mechanism)> = vec![
        ("TOR", &mut tor),
        ("X-SEARCH", &mut xsearch),
        ("CYCLOSA", &mut cyclosa),
    ];
    for (name, mechanism) in mechanisms {
        let mut attack_rng = Xoshiro256StarStar::seed_from_u64(77);
        let reid = evaluate_reidentification(mechanism, &train, &test_queries, &mut attack_rng);
        let mut accuracy_rng = Xoshiro256StarStar::seed_from_u64(78);
        let accuracy = evaluate_accuracy(mechanism, &engine, &test_queries, &mut accuracy_rng);
        println!(
            "{:<10} {:>17.1}% {:>14.1}% {:>15.1}%",
            name,
            reid.rate_percent(),
            accuracy.correctness * 100.0,
            accuracy.completeness * 100.0
        );
    }
    println!("\nLower re-identification and higher correctness/completeness are better.");
}
