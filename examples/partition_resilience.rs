//! Partition resilience end to end: a 70/30 network split cuts a CYCLOSA
//! client off with a minority of the relays, then re-merges. The client
//! degrades gracefully (queries keep flowing through its own side, the
//! `achieved_k` dilution ledger dips) and recovers fully after the merge —
//! and the whole scenario is bit-identical on the sharded engine.
//!
//! Run with `cargo run --example partition_resilience`.

use cyclosa_chaos::experiment::ChurnConfig;
use cyclosa_chaos::partition::{
    run_partition_experiment, run_partition_experiment_sharded, PartitionConfig,
};
use cyclosa_net::time::SimTime;

fn main() {
    // A 30/70 split: the client is caught on the minority side with 30 %
    // of the 50 relays, from t = 15 s until t = 35 s. The search engine
    // stays reachable (a public service outside the overlay), and a 10 s
    // blacklist probation lets the client forgive cross-partition relays
    // after the merge.
    let config = PartitionConfig {
        base: ChurnConfig {
            relays: 50,
            k: 3,
            queries: 100,
            adaptive: true,
            blacklist_ttl: Some(SimTime::from_secs(10)),
            ..ChurnConfig::default()
        },
        minority_fraction: 0.3,
        client_in_minority: true,
        engine_partitioned: false,
        split_at: SimTime::from_secs(15),
        merge_at: SimTime::from_secs(35),
        settle: SimTime::from_secs(6),
    };
    println!(
        "70/30 split: client + {} relays cut off from {} relays, {}s..{}s\n",
        config.minority_relays().len(),
        config.base.relays - config.minority_relays().len(),
        config.split_at.as_secs_f64(),
        config.merge_at.as_secs_f64(),
    );

    let outcome = run_partition_experiment(&config);
    println!(
        "{:>12}  {:>8}  {:>8}  {:>12}  {:>10}",
        "phase", "issued", "answered", "achieved_k", "median(s)"
    );
    for (name, phase) in [
        ("pre-split", outcome.pre_split),
        ("partitioned", outcome.during),
        ("post-merge", outcome.post_merge),
    ] {
        println!(
            "{:>12}  {:>8}  {:>8}  {:>12.2}  {:>10.3}",
            name, phase.issued, phase.answered, phase.mean_achieved_k, phase.median_latency_s
        );
    }
    println!(
        "\nhealing: {} real-query resubmissions, {} fakes topped up, {} sends \
         swallowed by the partition",
        outcome.churn.retries, outcome.churn.fakes_topped_up, outcome.churn.stats.lost
    );
    let recovered =
        (outcome.post_merge.mean_achieved_k - config.base.k as f64).abs() < f64::EPSILON;
    println!(
        "post-merge achieved_k {} the failure-free target k = {}",
        if recovered {
            "recovered to"
        } else {
            "is below"
        },
        config.base.k
    );

    // The same scenario scales out unchanged: a 4-shard run reproduces the
    // sequential outcome bit for bit even though the partition boundary
    // crosses shard boundaries.
    let sharded = run_partition_experiment_sharded(&config, 4);
    assert_eq!(sharded, outcome);
    println!("\nsharded run (4 shards) is bit-identical to the sequential run");
}
