//! Link latency models.
//!
//! The experiments calibrate these models to the medians reported in the
//! paper: direct client→engine requests complete in a few hundred
//! milliseconds, CYCLOSA adds one relay hop (median 0.876 s end-to-end with
//! k = 3), X-Search routes through a single proxy (median 0.577 s) and TOR
//! circuits are two orders of magnitude slower (median 62.28 s).

use crate::time::SimTime;
use cyclosa_util::dist::LogNormal;
use cyclosa_util::rng::Rng;

/// A distribution of one-way link latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// A fixed latency.
    Constant(SimTime),
    /// Uniformly distributed latency in `[low, high]`.
    Uniform {
        /// Lower bound.
        low: SimTime,
        /// Upper bound (inclusive).
        high: SimTime,
    },
    /// Log-normally distributed latency — the usual fit for wide-area RTTs.
    LogNormal {
        /// Median latency in milliseconds.
        median_ms: f64,
        /// Standard deviation of the underlying normal (spread).
        sigma: f64,
    },
}

impl LatencyModel {
    /// A model for a LAN-class link (fractions of a millisecond).
    pub fn lan() -> Self {
        LatencyModel::LogNormal {
            median_ms: 0.3,
            sigma: 0.2,
        }
    }

    /// A model for a wide-area residential link, calibrated so that one hop
    /// costs roughly 100–200 ms at the median.
    pub fn wan() -> Self {
        LatencyModel::LogNormal {
            median_ms: 140.0,
            sigma: 0.35,
        }
    }

    /// A model for the search engine's internal processing time.
    pub fn search_engine_processing() -> Self {
        LatencyModel::LogNormal {
            median_ms: 180.0,
            sigma: 0.25,
        }
    }

    /// A model for one hop through the TOR overlay (circuit construction,
    /// congestion and exit-node queuing make this far slower than a plain
    /// WAN hop; three such hops plus the engine round trip reproduce the
    /// tens-of-seconds medians measured in the paper).
    pub fn tor_hop() -> Self {
        LatencyModel::LogNormal {
            median_ms: 10_000.0,
            sigma: 0.45,
        }
    }

    /// Samples one latency value, clamped to [`LatencyModel::floor`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let raw = match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { low, high } => {
                if high <= low {
                    return low;
                }
                SimTime::from_nanos(rng.gen_range(low.as_nanos(), high.as_nanos() + 1))
            }
            LatencyModel::LogNormal { median_ms, sigma } => {
                let ms =
                    LogNormal::from_median(median_ms.max(f64::MIN_POSITIVE), sigma).sample(rng);
                SimTime::from_nanos((ms * 1e6) as u64)
            }
        };
        raw.max(self.floor())
    }

    /// A guaranteed lower bound on every sampled latency — the physical
    /// propagation floor of the link.
    ///
    /// This is what gives the sharded runtime its conservative lookahead:
    /// a message sent at time `t` can never arrive before `t + floor()`,
    /// so shards may safely process a time window of that width in
    /// parallel. For the unbounded-below log-normal model the floor is set
    /// at one eighth of the median; the probability mass below that point
    /// is negligible for every spread used by the experiments (< 2·10⁻⁹
    /// for the WAN model), so clamping does not measurably distort the
    /// distribution.
    pub fn floor(&self) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { low, .. } => low,
            LatencyModel::LogNormal { median_ms, .. } => {
                SimTime::from_nanos((median_ms * 1e6 / 8.0) as u64)
            }
        }
    }

    /// The median of the model (exact for constant/log-normal, midpoint for
    /// uniform).
    pub fn median(&self) -> SimTime {
        match *self {
            LatencyModel::Constant(t) => t,
            LatencyModel::Uniform { low, high } => {
                SimTime::from_nanos((low.as_nanos() + high.as_nanos()) / 2)
            }
            LatencyModel::LogNormal { median_ms, .. } => {
                SimTime::from_nanos((median_ms * 1e6) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;
    use cyclosa_util::stats::Summary;

    #[test]
    fn constant_model_is_constant() {
        let model = LatencyModel::Constant(SimTime::from_millis(5));
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), SimTime::from_millis(5));
        }
        assert_eq!(model.median(), SimTime::from_millis(5));
    }

    #[test]
    fn uniform_model_respects_bounds() {
        let model = LatencyModel::Uniform {
            low: SimTime::from_millis(10),
            high: SimTime::from_millis(20),
        };
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        for _ in 0..1000 {
            let s = model.sample(&mut rng);
            assert!(s >= SimTime::from_millis(10) && s <= SimTime::from_millis(20));
        }
        assert_eq!(model.median(), SimTime::from_millis(15));
        // Degenerate bounds fall back to the lower bound.
        let degenerate = LatencyModel::Uniform {
            low: SimTime::from_millis(5),
            high: SimTime::from_millis(5),
        };
        assert_eq!(degenerate.sample(&mut rng), SimTime::from_millis(5));
    }

    #[test]
    fn lognormal_median_is_calibrated() {
        let model = LatencyModel::wan();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| model.sample(&mut rng).as_millis_f64())
            .collect();
        let median = Summary::from_samples(&samples).median;
        assert!((median - 140.0).abs() / 140.0 < 0.05, "median was {median}");
    }

    #[test]
    fn tor_hops_are_much_slower_than_wan() {
        assert!(LatencyModel::tor_hop().median() > LatencyModel::wan().median());
        assert!(LatencyModel::tor_hop().median().as_secs_f64() >= 5.0);
    }

    #[test]
    fn samples_never_fall_below_the_floor() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for model in [
            LatencyModel::wan(),
            LatencyModel::lan(),
            LatencyModel::Constant(SimTime::from_millis(3)),
            LatencyModel::Uniform {
                low: SimTime::from_millis(1),
                high: SimTime::from_millis(2),
            },
        ] {
            let floor = model.floor();
            for _ in 0..2000 {
                assert!(model.sample(&mut rng) >= floor);
            }
        }
        assert_eq!(
            LatencyModel::wan().floor(),
            SimTime::from_nanos((140.0 * 1e6 / 8.0) as u64)
        );
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let model = LatencyModel::wan();
        let mut a = Xoshiro256StarStar::seed_from_u64(9);
        let mut b = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(model.sample(&mut a), model.sample(&mut b));
        }
    }
}
