//! The discrete-event simulation loop.
//!
//! Nodes are state machines implementing [`NodeBehavior`]. They react to
//! incoming [`Envelope`]s and to timers, and emit sends / timer requests
//! through a [`Context`]. The [`Simulation`] owns the global clock, samples
//! link latencies, injects losses, models crashed nodes and guarantees
//! per-link FIFO delivery (so the sequence-number-based secure channels of
//! `cyclosa-crypto` work unchanged on top of it).

use crate::latency::LatencyModel;
use crate::time::SimTime;
use crate::NodeId;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A message in flight between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub src: NodeId,
    /// Recipient.
    pub dst: NodeId,
    /// Application-defined message tag (protocol message type).
    pub tag: u32,
    /// Opaque payload (typically an AEAD-protected record).
    pub payload: Vec<u8>,
}

/// Behaviour of a simulated node.
pub trait NodeBehavior {
    /// Invoked when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope);

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

/// The API surface a node can use while handling an event.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    actions: &'a mut Vec<Action>,
}

impl Context<'_> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identifier.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends a message to `dst`.
    pub fn send(&mut self, dst: NodeId, tag: u32, payload: Vec<u8>) {
        self.actions.push(Action::Send(Envelope { src: self.self_id, dst, tag, payload }));
    }

    /// Schedules `on_timer(token)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.actions.push(Action::Timer { node: self.self_id, delay, token });
    }
}

#[derive(Debug)]
enum Action {
    Send(Envelope),
    Timer { node: NodeId, delay: SimTime, token: u64 },
}

#[derive(Debug)]
enum EventKind {
    Deliver(Envelope),
    Timer { node: NodeId, token: u64 },
}

/// Counters describing a finished (or in-progress) simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimulationStats {
    /// Messages delivered to a node's `on_message`.
    pub delivered: u64,
    /// Messages dropped by link loss.
    pub lost: u64,
    /// Messages dropped because the destination crashed or does not exist.
    pub dropped_dead: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
}

/// The discrete-event simulator.
pub struct Simulation {
    clock: SimTime,
    sequence: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    events: Vec<Option<EventKind>>,
    nodes: HashMap<NodeId, Box<dyn NodeBehavior>>,
    crashed: HashSet<NodeId>,
    default_latency: LatencyModel,
    link_latency: HashMap<(NodeId, NodeId), LatencyModel>,
    loss_probability: f64,
    last_delivery: HashMap<(NodeId, NodeId), SimTime>,
    rng: Xoshiro256StarStar,
    stats: SimulationStats,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("clock", &self.clock)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation seeded with `seed`. The default link
    /// model is a WAN-class log-normal latency with no loss.
    pub fn new(seed: u64) -> Self {
        Self {
            clock: SimTime::ZERO,
            sequence: 0,
            queue: BinaryHeap::new(),
            events: Vec::new(),
            nodes: HashMap::new(),
            crashed: HashSet::new(),
            default_latency: LatencyModel::wan(),
            link_latency: HashMap::new(),
            loss_probability: 0.0,
            last_delivery: HashMap::new(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            stats: SimulationStats::default(),
        }
    }

    /// Registers a node.
    pub fn add_node(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior>) {
        self.nodes.insert(id, behavior);
    }

    /// Sets the default latency model for all links.
    pub fn set_default_latency(&mut self, model: LatencyModel) {
        self.default_latency = model;
    }

    /// Overrides the latency model of the directed link `src → dst`.
    pub fn set_link_latency(&mut self, src: NodeId, dst: NodeId, model: LatencyModel) {
        self.link_latency.insert((src, dst), model);
    }

    /// Sets the probability that any message is silently lost in transit.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_loss_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0, 1]");
        self.loss_probability = p;
    }

    /// Marks a node as crashed: messages to it are dropped, its timers stop
    /// firing.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimulationStats {
        self.stats
    }

    /// Mutable access to the simulation RNG (for callers that need to draw
    /// from the same deterministic stream).
    pub fn rng_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    /// Injects a message from outside the simulation (e.g. a user typing a
    /// query) to be delivered at `at` + link latency.
    pub fn post(&mut self, at: SimTime, src: NodeId, dst: NodeId, tag: u32, payload: Vec<u8>) {
        let envelope = Envelope { src, dst, tag, payload };
        self.enqueue_send(at, envelope);
    }

    /// Schedules a timer on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        self.push_event(at, EventKind::Timer { node, token });
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let idx = self.events.len();
        self.events.push(Some(kind));
        self.sequence += 1;
        self.queue.push(Reverse((at, self.sequence, idx)));
    }

    fn link_model(&self, src: NodeId, dst: NodeId) -> LatencyModel {
        self.link_latency.get(&(src, dst)).copied().unwrap_or(self.default_latency)
    }

    fn enqueue_send(&mut self, at: SimTime, envelope: Envelope) {
        if self.loss_probability > 0.0 && self.rng.gen_bool(self.loss_probability) {
            self.stats.lost += 1;
            return;
        }
        let latency = self.link_model(envelope.src, envelope.dst).sample(&mut self.rng);
        let mut deliver_at = at + latency;
        // Per-link FIFO: never deliver earlier than the previously scheduled
        // message on the same directed link.
        let key = (envelope.src, envelope.dst);
        if let Some(&last) = self.last_delivery.get(&key) {
            if deliver_at <= last {
                deliver_at = last + SimTime::from_nanos(1);
            }
        }
        self.last_delivery.insert(key, deliver_at);
        self.push_event(deliver_at, EventKind::Deliver(envelope));
    }

    /// Processes the next event, if any, and returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let Reverse((at, _, idx)) = self.queue.pop()?;
        let kind = self.events[idx].take().expect("event consumed once");
        self.clock = at;
        let mut actions = Vec::new();
        match kind {
            EventKind::Deliver(envelope) => {
                let dst = envelope.dst;
                if self.crashed.contains(&dst) || !self.nodes.contains_key(&dst) {
                    self.stats.dropped_dead += 1;
                } else {
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += envelope.payload.len() as u64;
                    let mut ctx = Context { now: at, self_id: dst, actions: &mut actions };
                    self.nodes.get_mut(&dst).expect("checked above").on_message(&mut ctx, envelope);
                }
            }
            EventKind::Timer { node, token } => {
                if !self.crashed.contains(&node) && self.nodes.contains_key(&node) {
                    self.stats.timers_fired += 1;
                    let mut ctx = Context { now: at, self_id: node, actions: &mut actions };
                    self.nodes.get_mut(&node).expect("checked above").on_timer(&mut ctx, token);
                }
            }
        }
        for action in actions {
            match action {
                Action::Send(envelope) => self.enqueue_send(at, envelope),
                Action::Timer { node, delay, token } => {
                    self.push_event(at + delay, EventKind::Timer { node, token })
                }
            }
        }
        Some(at)
    }

    /// Runs until the event queue is empty or `max_events` have been
    /// processed, returning the number of processed events.
    pub fn run_with_limit(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events && self.step().is_some() {
            processed += 1;
        }
        processed
    }

    /// Runs until the event queue is empty (with a large safety limit).
    pub fn run(&mut self) -> u64 {
        self.run_with_limit(50_000_000)
    }

    /// Runs until the clock reaches `deadline` or no events remain.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse((at, _, _))) = self.queue.peek() {
            if *at > deadline {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records delivery times of received messages.
    struct Recorder {
        log: Rc<RefCell<Vec<(SimTime, u32, Vec<u8>)>>>,
    }

    impl NodeBehavior for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
            self.log.borrow_mut().push((ctx.now(), envelope.tag, envelope.payload));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.log.borrow_mut().push((ctx.now(), token as u32, b"timer".to_vec()));
        }
    }

    /// Replies to every message with the same payload.
    struct Echo;
    impl NodeBehavior for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
            ctx.send(envelope.src, envelope.tag + 1, envelope.payload);
        }
    }

    fn recorder() -> (Rc<RefCell<Vec<(SimTime, u32, Vec<u8>)>>>, Recorder) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (log.clone(), Recorder { log })
    }

    #[test]
    fn message_delivery_respects_constant_latency() {
        let mut sim = Simulation::new(1);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(50)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 7, b"hello".to_vec());
        sim.run();
        let entries = log.borrow();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, SimTime::from_millis(50));
        assert_eq!(entries[0].1, 7);
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().bytes_delivered, 5);
    }

    #[test]
    fn echo_round_trip_takes_two_hops() {
        let mut sim = Simulation::new(2);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(0), Box::new(rec));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 1, b"ping".to_vec());
        sim.run();
        let entries = log.borrow();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, SimTime::from_millis(20));
        assert_eq!(entries[0].1, 2);
    }

    #[test]
    fn per_link_fifo_is_preserved_despite_random_latency() {
        let mut sim = Simulation::new(3);
        sim.set_default_latency(LatencyModel::LogNormal { median_ms: 50.0, sigma: 1.0 });
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        for i in 0..50u32 {
            sim.post(SimTime::from_millis(i as u64), NodeId(0), NodeId(1), i, vec![]);
        }
        sim.run();
        let tags: Vec<u32> = log.borrow().iter().map(|(_, tag, _)| *tag).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>(), "per-link order must be FIFO");
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(4);
        let (log, rec) = recorder();
        sim.add_node(NodeId(5), Box::new(rec));
        sim.schedule_timer(SimTime::from_millis(30), NodeId(5), 3);
        sim.schedule_timer(SimTime::from_millis(10), NodeId(5), 1);
        sim.schedule_timer(SimTime::from_millis(20), NodeId(5), 2);
        sim.run();
        let tokens: Vec<u32> = log.borrow().iter().map(|(_, t, _)| *t).collect();
        assert_eq!(tokens, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers_fired, 3);
    }

    #[test]
    fn crashed_nodes_drop_messages_and_timers() {
        let mut sim = Simulation::new(5);
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.crash(NodeId(1));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 1, b"x".to_vec());
        sim.schedule_timer(SimTime::from_millis(1), NodeId(1), 9);
        sim.run();
        assert!(log.borrow().is_empty());
        assert_eq!(sim.stats().dropped_dead, 1);
        assert_eq!(sim.stats().timers_fired, 0);
    }

    #[test]
    fn unknown_destination_counts_as_dead() {
        let mut sim = Simulation::new(6);
        sim.post(SimTime::ZERO, NodeId(0), NodeId(42), 1, vec![]);
        sim.run();
        assert_eq!(sim.stats().dropped_dead, 1);
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let mut sim = Simulation::new(7);
        sim.set_loss_probability(0.3);
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        for i in 0..2000u64 {
            sim.post(SimTime::from_millis(i), NodeId(0), NodeId(1), 0, vec![]);
        }
        sim.run();
        let delivered = log.borrow().len() as f64;
        assert!((delivered / 2000.0 - 0.7).abs() < 0.05, "delivered fraction {}", delivered / 2000.0);
        assert_eq!(sim.stats().lost + sim.stats().delivered, 2000);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(8);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.post(SimTime::from_millis(0), NodeId(0), NodeId(1), 1, vec![]);
        sim.post(SimTime::from_secs(100), NodeId(0), NodeId(1), 2, vec![]);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.run();
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn same_seed_reproduces_identical_runs() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let (log, rec) = recorder();
            sim.add_node(NodeId(1), Box::new(rec));
            sim.add_node(NodeId(2), Box::new(Echo));
            for i in 0..20u64 {
                sim.post(SimTime::from_millis(i * 5), NodeId(1), NodeId(2), i as u32, vec![0u8; 8]);
            }
            sim.run();
            let observed: Vec<(u64, u32)> =
                log.borrow().iter().map(|(t, tag, _)| (t.as_nanos(), *tag)).collect();
            observed
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_rejected() {
        let mut sim = Simulation::new(1);
        sim.set_loss_probability(1.5);
    }
}
