//! The sequential discrete-event simulation loop.
//!
//! Nodes are state machines implementing [`NodeBehavior`]. They react to
//! incoming [`Envelope`]s and to timers, and emit sends / timer requests
//! through a [`Context`]. The [`Simulation`] owns the global clock, samples
//! link latencies, injects losses, models crashed nodes and guarantees
//! per-link FIFO delivery (so the sequence-number-based secure channels of
//! `cyclosa-crypto` work unchanged on top of it).
//!
//! Events are ordered by the deterministic [`EventKey`] of
//! [`crate::engine`] and all link randomness flows through the shared
//! [`LinkTable`], which makes an execution a pure function of the seed —
//! the sharded engine of `cyclosa-runtime` reproduces it bit for bit.

use crate::engine::{
    Engine, EventClass, EventKey, EventKind, LinkGroupSchedule, LinkTable, LossSchedule,
    MembershipChange, MembershipLedger, ScheduledEvent,
};
use crate::latency::LatencyModel;
use crate::time::SimTime;
use crate::NodeId;
use cyclosa_util::det::{DetHashMap, DetHashSet};
use cyclosa_util::rng::Xoshiro256StarStar;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message in flight between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender.
    pub src: NodeId,
    /// Recipient.
    pub dst: NodeId,
    /// Application-defined message tag (protocol message type).
    pub tag: u32,
    /// Opaque payload (typically an AEAD-protected record).
    pub payload: Vec<u8>,
}

/// Behaviour of a simulated node.
pub trait NodeBehavior {
    /// Invoked when a message is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope);

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let _ = (ctx, token);
    }
}

/// The API surface a node can use while handling an event.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    actions: &'a mut Vec<Action>,
}

impl Context<'_> {
    /// Builds a context collecting the actions of one handler invocation.
    /// Used by engine implementations; applications never construct one.
    pub fn new(now: SimTime, self_id: NodeId, actions: &mut Vec<Action>) -> Context<'_> {
        Context {
            now,
            self_id,
            actions,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's identifier.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends a message to `dst`.
    pub fn send(&mut self, dst: NodeId, tag: u32, payload: Vec<u8>) {
        self.actions.push(Action::Send(Envelope {
            src: self.self_id,
            dst,
            tag,
            payload,
        }));
    }

    /// Schedules `on_timer(token)` on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.actions.push(Action::Timer {
            node: self.self_id,
            delay,
            token,
        });
    }
}

/// An effect emitted by a node handler, applied by the engine after the
/// handler returns.
#[derive(Debug)]
pub enum Action {
    /// Send a message.
    Send(Envelope),
    /// Arm a timer on the emitting node.
    Timer {
        /// The node the timer fires on (always the emitting node).
        node: NodeId,
        /// Delay relative to the emitting event.
        delay: SimTime,
        /// Application token passed back to `on_timer`.
        token: u64,
    },
}

/// Counters describing a finished (or in-progress) simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimulationStats {
    /// Messages delivered to a node's `on_message`.
    pub delivered: u64,
    /// Messages dropped by link loss.
    pub lost: u64,
    /// Messages dropped because the destination crashed or does not exist.
    pub dropped_dead: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Nodes that joined the population mid-run.
    pub joined: u64,
    /// Nodes that left the population mid-run (state dropped).
    pub left: u64,
    /// Nodes that recovered from a crash mid-run.
    pub recovered: u64,
    /// Nodes that crashed through a scheduled membership event.
    pub crashed: u64,
}

impl SimulationStats {
    /// Accumulates another stats block into this one (used when merging
    /// per-shard statistics).
    pub fn merge(&mut self, other: &SimulationStats) {
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.dropped_dead += other.dropped_dead;
        self.timers_fired += other.timers_fired;
        self.bytes_delivered += other.bytes_delivered;
        self.joined += other.joined;
        self.left += other.left;
        self.recovered += other.recovered;
        self.crashed += other.crashed;
    }
}

/// The sequential discrete-event simulator.
pub struct Simulation {
    clock: SimTime,
    queue: BinaryHeap<Reverse<ScheduledEvent>>,
    nodes: DetHashMap<NodeId, Box<dyn NodeBehavior>>,
    crashed: DetHashSet<NodeId>,
    default_latency: LatencyModel,
    link_latency: DetHashMap<(NodeId, NodeId), LatencyModel>,
    loss: LossSchedule,
    link_loss: LinkGroupSchedule,
    links: LinkTable,
    timer_sequences: DetHashMap<NodeId, u64>,
    membership: MembershipLedger<Box<dyn NodeBehavior>>,
    rng: Xoshiro256StarStar,
    stats: SimulationStats,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("clock", &self.clock)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation seeded with `seed`. The default link
    /// model is a WAN-class log-normal latency with no loss.
    pub fn new(seed: u64) -> Self {
        Self {
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            nodes: DetHashMap::default(),
            crashed: DetHashSet::default(),
            default_latency: LatencyModel::wan(),
            link_latency: DetHashMap::default(),
            loss: LossSchedule::new(),
            link_loss: LinkGroupSchedule::new(),
            links: LinkTable::new(seed),
            timer_sequences: DetHashMap::default(),
            membership: MembershipLedger::new(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            stats: SimulationStats::default(),
        }
    }

    /// Registers a node.
    pub fn add_node(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior>) {
        self.nodes.insert(id, behavior);
    }

    /// Sets the default latency model for all links.
    pub fn set_default_latency(&mut self, model: LatencyModel) {
        self.default_latency = model;
    }

    /// Overrides the latency model of the directed link `src → dst`.
    pub fn set_link_latency(&mut self, src: NodeId, dst: NodeId, model: LatencyModel) {
        self.link_latency.insert((src, dst), model);
    }

    /// Sets the probability that any message is silently lost in transit.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.loss.set_base(p);
    }

    /// Schedules the loss probability to become `p` at simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn schedule_loss_probability(&mut self, at: SimTime, p: f64) {
        self.loss.schedule(at, p);
    }

    /// Schedules the loss probability of every directed link in
    /// `src_set × dst_set` to become `p` at simulated time `at` (the
    /// partition primitive; see [`LinkGroupSchedule`]).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or either set is empty.
    pub fn schedule_link_loss(
        &mut self,
        at: SimTime,
        src_set: &[NodeId],
        dst_set: &[NodeId],
        p: f64,
    ) {
        self.link_loss.schedule(at, src_set, dst_set, p);
    }

    /// Marks a node as crashed: messages to it are dropped, its timers stop
    /// firing.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Clears a node's crashed mark; its state is intact and it resumes
    /// receiving messages.
    pub fn recover(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Schedules `behavior` to join the population as `node` at simulated
    /// time `at` (see [`Engine::schedule_join`]).
    pub fn schedule_join(&mut self, at: SimTime, node: NodeId, behavior: Box<dyn NodeBehavior>) {
        let key = self.membership.next_key(at, node, MembershipChange::Join);
        self.membership.stash_join(node, key.a, behavior);
        self.queue.push(Reverse(ScheduledEvent {
            key,
            kind: EventKind::Membership(MembershipChange::Join),
        }));
    }

    /// Schedules `node` to leave the population at simulated time `at`.
    pub fn schedule_leave(&mut self, at: SimTime, node: NodeId) {
        self.schedule_membership(at, node, MembershipChange::Leave);
    }

    /// Schedules `node` to crash (state retained) at simulated time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.schedule_membership(at, node, MembershipChange::Crash);
    }

    /// Schedules `node` to recover from a crash at simulated time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.schedule_membership(at, node, MembershipChange::Recover);
    }

    fn schedule_membership(&mut self, at: SimTime, node: NodeId, change: MembershipChange) {
        let key = self.membership.next_key(at, node, change);
        self.queue.push(Reverse(ScheduledEvent {
            key,
            kind: EventKind::Membership(change),
        }));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimulationStats {
        self.stats
    }

    /// Mutable access to the simulation RNG (for callers that need to draw
    /// from the same deterministic stream). Link latency and loss draws do
    /// *not* come from this generator — they use per-link streams so that
    /// executions stay independent of event interleaving.
    pub fn rng_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    /// Injects a message from outside the simulation (e.g. a user typing a
    /// query) to be delivered at `at` + link latency.
    pub fn post(&mut self, at: SimTime, src: NodeId, dst: NodeId, tag: u32, payload: Vec<u8>) {
        let envelope = Envelope {
            src,
            dst,
            tag,
            payload,
        };
        self.enqueue_send(at, envelope);
    }

    /// Schedules a timer on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        let sequence = self.timer_sequences.entry(node).or_insert(0);
        let key = EventKey {
            at,
            node,
            class: EventClass::Timer,
            a: *sequence,
            b: token,
        };
        *sequence += 1;
        self.queue.push(Reverse(ScheduledEvent {
            key,
            kind: EventKind::Timer { token },
        }));
    }

    fn link_model(&self, src: NodeId, dst: NodeId) -> LatencyModel {
        self.link_latency
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_latency)
    }

    fn enqueue_send(&mut self, at: SimTime, envelope: Envelope) {
        let model = self.link_model(envelope.src, envelope.dst);
        let loss = self
            .link_loss
            .combined(self.loss.at(at), at, envelope.src, envelope.dst);
        match self
            .links
            .prepare(at, envelope.src, envelope.dst, model, loss)
        {
            None => self.stats.lost += 1,
            Some((deliver_at, sequence)) => {
                let key = EventKey {
                    at: deliver_at,
                    node: envelope.dst,
                    class: EventClass::Deliver,
                    a: envelope.src.0,
                    b: sequence,
                };
                self.queue.push(Reverse(ScheduledEvent {
                    key,
                    kind: EventKind::Deliver(envelope),
                }));
            }
        }
    }

    /// Processes the next event, if any, and returns its timestamp.
    pub fn step(&mut self) -> Option<SimTime> {
        let Reverse(event) = self.queue.pop()?;
        let at = event.key.at;
        let node = event.key.node;
        self.clock = at;
        let mut actions = Vec::new();
        match event.kind {
            EventKind::Deliver(envelope) => {
                if self.crashed.contains(&node) || !self.nodes.contains_key(&node) {
                    self.stats.dropped_dead += 1;
                } else {
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += envelope.payload.len() as u64;
                    let mut ctx = Context::new(at, node, &mut actions);
                    self.nodes
                        .get_mut(&node)
                        .expect("checked above")
                        .on_message(&mut ctx, envelope);
                }
            }
            EventKind::Timer { token } => {
                if !self.crashed.contains(&node) && self.nodes.contains_key(&node) {
                    self.stats.timers_fired += 1;
                    let mut ctx = Context::new(at, node, &mut actions);
                    self.nodes
                        .get_mut(&node)
                        .expect("checked above")
                        .on_timer(&mut ctx, token);
                }
            }
            EventKind::Membership(change) => match change {
                MembershipChange::Join => {
                    if let Some(behavior) = self.membership.take_join(node, event.key.a) {
                        self.nodes.insert(node, behavior);
                        self.crashed.remove(&node);
                        self.stats.joined += 1;
                    }
                }
                MembershipChange::Leave => {
                    self.nodes.remove(&node);
                    self.crashed.remove(&node);
                    self.stats.left += 1;
                }
                MembershipChange::Crash => {
                    self.crashed.insert(node);
                    self.stats.crashed += 1;
                }
                MembershipChange::Recover => {
                    self.crashed.remove(&node);
                    self.stats.recovered += 1;
                }
            },
        }
        for action in actions {
            match action {
                Action::Send(envelope) => self.enqueue_send(at, envelope),
                Action::Timer { node, delay, token } => {
                    self.schedule_timer(at + delay, node, token)
                }
            }
        }
        Some(at)
    }

    /// Runs until the event queue is empty or `max_events` have been
    /// processed, returning the number of processed events.
    pub fn run_with_limit(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events && self.step().is_some() {
            processed += 1;
        }
        processed
    }

    /// Runs until the event queue is empty (with a large safety limit).
    pub fn run(&mut self) -> u64 {
        self.run_with_limit(50_000_000)
    }

    /// Runs until the clock reaches `deadline` or no events remain.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(event)) = self.queue.peek() {
            if event.key.at > deadline {
                break;
            }
            self.step();
        }
        self.clock = self.clock.max(deadline);
    }
}

impl Engine for Simulation {
    fn add_node(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior + Send>) {
        Simulation::add_node(self, id, behavior);
    }

    fn set_default_latency(&mut self, model: LatencyModel) {
        Simulation::set_default_latency(self, model);
    }

    fn set_link_latency(&mut self, src: NodeId, dst: NodeId, model: LatencyModel) {
        Simulation::set_link_latency(self, src, dst, model);
    }

    fn set_loss_probability(&mut self, p: f64) {
        Simulation::set_loss_probability(self, p);
    }

    fn crash(&mut self, node: NodeId) {
        Simulation::crash(self, node);
    }

    fn recover(&mut self, node: NodeId) {
        Simulation::recover(self, node);
    }

    fn schedule_join(&mut self, at: SimTime, node: NodeId, behavior: Box<dyn NodeBehavior + Send>) {
        Simulation::schedule_join(self, at, node, behavior);
    }

    fn schedule_leave(&mut self, at: SimTime, node: NodeId) {
        Simulation::schedule_leave(self, at, node);
    }

    fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        Simulation::schedule_crash(self, at, node);
    }

    fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        Simulation::schedule_recover(self, at, node);
    }

    fn schedule_loss_probability(&mut self, at: SimTime, p: f64) {
        Simulation::schedule_loss_probability(self, at, p);
    }

    fn schedule_link_loss(&mut self, at: SimTime, src_set: &[NodeId], dst_set: &[NodeId], p: f64) {
        Simulation::schedule_link_loss(self, at, src_set, dst_set, p);
    }

    fn post(&mut self, at: SimTime, src: NodeId, dst: NodeId, tag: u32, payload: Vec<u8>) {
        Simulation::post(self, at, src, dst, tag, payload);
    }

    fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        Simulation::schedule_timer(self, at, node, token);
    }

    fn now(&self) -> SimTime {
        Simulation::now(self)
    }

    fn run(&mut self) -> u64 {
        // The Engine contract is "run until no events remain"; the inherent
        // `run` keeps its legacy 50M-event safety cap for direct callers,
        // but here it would silently truncate executions that the sharded
        // engine completes, breaking cross-engine equivalence.
        Simulation::run_with_limit(self, u64::MAX)
    }

    fn run_until(&mut self, deadline: SimTime) {
        Simulation::run_until(self, deadline);
    }

    fn stats(&self) -> SimulationStats {
        Simulation::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type DeliveryLog = Rc<RefCell<Vec<(SimTime, u32, Vec<u8>)>>>;

    /// Records delivery times of received messages.
    struct Recorder {
        log: DeliveryLog,
    }

    impl NodeBehavior for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
            self.log
                .borrow_mut()
                .push((ctx.now(), envelope.tag, envelope.payload));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.log
                .borrow_mut()
                .push((ctx.now(), token as u32, b"timer".to_vec()));
        }
    }

    /// Replies to every message with the same payload.
    struct Echo;
    impl NodeBehavior for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
            ctx.send(envelope.src, envelope.tag + 1, envelope.payload);
        }
    }

    fn recorder() -> (DeliveryLog, Recorder) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (log.clone(), Recorder { log })
    }

    #[test]
    fn message_delivery_respects_constant_latency() {
        let mut sim = Simulation::new(1);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(50)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 7, b"hello".to_vec());
        sim.run();
        let entries = log.borrow();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, SimTime::from_millis(50));
        assert_eq!(entries[0].1, 7);
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().bytes_delivered, 5);
    }

    #[test]
    fn echo_round_trip_takes_two_hops() {
        let mut sim = Simulation::new(2);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(0), Box::new(rec));
        sim.add_node(NodeId(1), Box::new(Echo));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 1, b"ping".to_vec());
        sim.run();
        let entries = log.borrow();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, SimTime::from_millis(20));
        assert_eq!(entries[0].1, 2);
    }

    #[test]
    fn per_link_fifo_is_preserved_despite_random_latency() {
        let mut sim = Simulation::new(3);
        sim.set_default_latency(LatencyModel::LogNormal {
            median_ms: 50.0,
            sigma: 1.0,
        });
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        for i in 0..50u32 {
            sim.post(
                SimTime::from_millis(i as u64),
                NodeId(0),
                NodeId(1),
                i,
                vec![],
            );
        }
        sim.run();
        let tags: Vec<u32> = log.borrow().iter().map(|(_, tag, _)| *tag).collect();
        assert_eq!(
            tags,
            (0..50).collect::<Vec<_>>(),
            "per-link order must be FIFO"
        );
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Simulation::new(4);
        let (log, rec) = recorder();
        sim.add_node(NodeId(5), Box::new(rec));
        sim.schedule_timer(SimTime::from_millis(30), NodeId(5), 3);
        sim.schedule_timer(SimTime::from_millis(10), NodeId(5), 1);
        sim.schedule_timer(SimTime::from_millis(20), NodeId(5), 2);
        sim.run();
        let tokens: Vec<u32> = log.borrow().iter().map(|(_, t, _)| *t).collect();
        assert_eq!(tokens, vec![1, 2, 3]);
        assert_eq!(sim.stats().timers_fired, 3);
    }

    #[test]
    fn crashed_nodes_drop_messages_and_timers() {
        let mut sim = Simulation::new(5);
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.crash(NodeId(1));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 1, b"x".to_vec());
        sim.schedule_timer(SimTime::from_millis(1), NodeId(1), 9);
        sim.run();
        assert!(log.borrow().is_empty());
        assert_eq!(sim.stats().dropped_dead, 1);
        assert_eq!(sim.stats().timers_fired, 0);
    }

    #[test]
    fn scheduled_crash_and_recover_bound_the_outage_window() {
        let mut sim = Simulation::new(11);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.schedule_crash(SimTime::from_secs(1), NodeId(1));
        sim.schedule_recover(SimTime::from_secs(2), NodeId(1));
        // Delivered before the crash, dropped during it, delivered after.
        for (ms, tag) in [(0, 1u32), (1_500, 2), (2_500, 3)] {
            sim.post(SimTime::from_millis(ms), NodeId(0), NodeId(1), tag, vec![]);
        }
        sim.run();
        let tags: Vec<u32> = log.borrow().iter().map(|(_, tag, _)| *tag).collect();
        assert_eq!(tags, vec![1, 3]);
        assert_eq!(sim.stats().dropped_dead, 1);
        assert_eq!(sim.stats().crashed, 1);
        assert_eq!(sim.stats().recovered, 1);
    }

    #[test]
    fn scheduled_leave_drops_state_and_join_replaces_it() {
        let mut sim = Simulation::new(12);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        let (rejoined_log, rejoined_rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.schedule_leave(SimTime::from_secs(1), NodeId(1));
        sim.schedule_join(SimTime::from_secs(2), NodeId(1), Box::new(rejoined_rec));
        for (ms, tag) in [(0, 1u32), (1_500, 2), (2_500, 3)] {
            sim.post(SimTime::from_millis(ms), NodeId(0), NodeId(1), tag, vec![]);
        }
        sim.run();
        let old: Vec<u32> = log.borrow().iter().map(|(_, tag, _)| *tag).collect();
        let new: Vec<u32> = rejoined_log
            .borrow()
            .iter()
            .map(|(_, tag, _)| *tag)
            .collect();
        assert_eq!(
            old,
            vec![1],
            "the departed behaviour sees only pre-leave traffic"
        );
        assert_eq!(
            new,
            vec![3],
            "the rejoined behaviour sees only post-join traffic"
        );
        assert_eq!(sim.stats().left, 1);
        assert_eq!(sim.stats().joined, 1);
    }

    #[test]
    fn scheduled_join_makes_a_brand_new_node_reachable() {
        let mut sim = Simulation::new(13);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        sim.schedule_join(SimTime::from_secs(1), NodeId(42), Box::new(rec));
        sim.post(SimTime::ZERO, NodeId(0), NodeId(42), 1, vec![]);
        sim.post(SimTime::from_secs(2), NodeId(0), NodeId(42), 2, vec![]);
        sim.run();
        let tags: Vec<u32> = log.borrow().iter().map(|(_, tag, _)| *tag).collect();
        assert_eq!(tags, vec![2], "pre-join traffic is dropped dead");
        assert_eq!(sim.stats().dropped_dead, 1);
    }

    #[test]
    fn scheduled_loss_probability_takes_effect_at_send_time() {
        let mut sim = Simulation::new(14);
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        // Lossless before 1 s, total loss afterwards.
        sim.schedule_loss_probability(SimTime::from_secs(1), 1.0);
        for i in 0..100u64 {
            sim.post(
                SimTime::from_millis(i * 50),
                NodeId(0),
                NodeId(1),
                0,
                vec![],
            );
        }
        sim.run();
        assert_eq!(
            log.borrow().len(),
            20,
            "only sends before the storm survive"
        );
        assert_eq!(sim.stats().lost, 80);
    }

    #[test]
    fn scheduled_link_loss_severs_only_the_group_during_the_window() {
        let mut sim = Simulation::new(15);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log_b, rec_b) = recorder();
        let (log_c, rec_c) = recorder();
        sim.add_node(NodeId(1), Box::new(rec_b));
        sim.add_node(NodeId(2), Box::new(rec_c));
        // A → {1} severed between 1 s and 2 s; A → {2} untouched.
        sim.schedule_link_loss(SimTime::from_secs(1), &[NodeId(0)], &[NodeId(1)], 1.0);
        sim.schedule_link_loss(SimTime::from_secs(2), &[NodeId(0)], &[NodeId(1)], 0.0);
        for (ms, tag) in [(0, 1u32), (1_500, 2), (2_500, 3)] {
            sim.post(SimTime::from_millis(ms), NodeId(0), NodeId(1), tag, vec![]);
            sim.post(SimTime::from_millis(ms), NodeId(0), NodeId(2), tag, vec![]);
        }
        sim.run();
        let to_1: Vec<u32> = log_b.borrow().iter().map(|(_, tag, _)| *tag).collect();
        let to_2: Vec<u32> = log_c.borrow().iter().map(|(_, tag, _)| *tag).collect();
        assert_eq!(to_1, vec![1, 3], "the in-window send to the group is lost");
        assert_eq!(to_2, vec![1, 2, 3], "out-of-group traffic is untouched");
        assert_eq!(sim.stats().lost, 1);
    }

    #[test]
    fn unknown_destination_counts_as_dead() {
        let mut sim = Simulation::new(6);
        sim.post(SimTime::ZERO, NodeId(0), NodeId(42), 1, vec![]);
        sim.run();
        assert_eq!(sim.stats().dropped_dead, 1);
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let mut sim = Simulation::new(7);
        sim.set_loss_probability(0.3);
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        for i in 0..2000u64 {
            sim.post(SimTime::from_millis(i), NodeId(0), NodeId(1), 0, vec![]);
        }
        sim.run();
        let delivered = log.borrow().len() as f64;
        assert!(
            (delivered / 2000.0 - 0.7).abs() < 0.05,
            "delivered fraction {}",
            delivered / 2000.0
        );
        assert_eq!(sim.stats().lost + sim.stats().delivered, 2000);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(8);
        sim.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        let (log, rec) = recorder();
        sim.add_node(NodeId(1), Box::new(rec));
        sim.post(SimTime::from_millis(0), NodeId(0), NodeId(1), 1, vec![]);
        sim.post(SimTime::from_secs(100), NodeId(0), NodeId(1), 2, vec![]);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        sim.run();
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn same_seed_reproduces_identical_runs() {
        let run = |seed| {
            let mut sim = Simulation::new(seed);
            let (log, rec) = recorder();
            sim.add_node(NodeId(1), Box::new(rec));
            sim.add_node(NodeId(2), Box::new(Echo));
            for i in 0..20u64 {
                sim.post(
                    SimTime::from_millis(i * 5),
                    NodeId(1),
                    NodeId(2),
                    i as u32,
                    vec![0u8; 8],
                );
            }
            sim.run();
            let observed: Vec<(u64, u32)> = log
                .borrow()
                .iter()
                .map(|(t, tag, _)| (t.as_nanos(), *tag))
                .collect();
            observed
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn deliveries_on_one_link_are_unaffected_by_other_traffic() {
        // The per-link randomness discipline: adding traffic on unrelated
        // links must not change when this link's messages arrive.
        let run = |with_noise: bool| {
            let mut sim = Simulation::new(77);
            let (log, rec) = recorder();
            sim.add_node(NodeId(1), Box::new(rec));
            sim.add_node(NodeId(9), Box::new(Echo));
            for i in 0..10u64 {
                sim.post(
                    SimTime::from_millis(i * 7),
                    NodeId(0),
                    NodeId(1),
                    i as u32,
                    vec![],
                );
                if with_noise {
                    sim.post(SimTime::from_millis(i * 7), NodeId(8), NodeId(9), 0, vec![]);
                }
            }
            sim.run();
            let observed: Vec<(u64, u32)> = log
                .borrow()
                .iter()
                .map(|(t, tag, _)| (t.as_nanos(), *tag))
                .collect();
            observed
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_rejected() {
        let mut sim = Simulation::new(1);
        sim.set_loss_probability(1.5);
    }
}
