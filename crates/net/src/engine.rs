//! The engine abstraction shared by the sequential simulator and the
//! sharded parallel runtime.
//!
//! [`Engine`] extracts the scheduling surface of [`crate::sim::Simulation`]
//! — register nodes, inject messages and timers, advance simulated time —
//! so that [`crate::sim::NodeBehavior`] implementations and whole
//! experiments run unchanged on either the sequential engine or the
//! sharded engine of `cyclosa-runtime`.
//!
//! # Determinism contract
//!
//! Conforming engines must produce **bit-identical executions for the same
//! seed**, regardless of how event processing is parallelised. Two
//! mechanisms in this module make that possible:
//!
//! * **Deterministic event ordering** — every event carries an [`EventKey`]
//!   that totally orders the execution independently of insertion order or
//!   thread interleaving. The key is derived only from quantities that are
//!   themselves deterministic (delivery time, destination node, the
//!   sender's per-link message sequence, the target's per-node timer
//!   sequence).
//! * **Per-link randomness** — link latency and loss draws come from a
//!   dedicated RNG stream per directed link ([`link_stream`]), seeded from
//!   `(engine seed, src, dst)`. Because only `src`'s handler sends on the
//!   link `src → dst`, the draw sequence on each stream depends only on
//!   that node's (deterministic) behaviour, never on global event
//!   interleaving. [`LinkTable`] encapsulates this discipline and is shared
//!   by both engines so they cannot drift apart.
//! * **Deterministic dynamic membership** — joins, leaves, crashes and
//!   recoveries scheduled against a simulated time are ordinary events of
//!   class [`EventClass::Membership`], keyed by a per-node membership
//!   sequence ([`MembershipLedger`]), so churn participates in the same
//!   total order as deliveries and timers. Loss-probability changes are a
//!   piecewise-constant function of send time ([`LossSchedule`]), never of
//!   event interleaving.
//!
//! # FIFO contract
//!
//! Messages on the same directed link are delivered in send order
//! (enforced in [`LinkTable::prepare`] by bumping the delivery time past
//! the previously scheduled delivery). The sequence-number-based secure
//! channels of `cyclosa-crypto` rely on this.

use crate::latency::LatencyModel;
use crate::sim::{Envelope, NodeBehavior, SimulationStats};
use crate::time::SimTime;
use crate::NodeId;
use cyclosa_util::det::{DetHashMap, DetHashSet};
use cyclosa_util::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use std::collections::BTreeMap;

/// Classes of events, ordered within the same `(time, node)` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// A membership change (join/leave/crash/recover). Membership sorts
    /// first in its `(time, node)` slot: a node joining at `t` receives
    /// deliveries at `t`, a node leaving or crashing at `t` no longer does.
    Membership,
    /// A message delivery (runs `on_message`).
    Deliver,
    /// A timer firing (runs `on_timer`).
    Timer,
}

/// The kinds of deterministic membership change an engine can execute at a
/// scheduled simulated time (the fault-injection surface of
/// `cyclosa-chaos`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MembershipChange {
    /// A new node (or a departed node with a fresh behaviour) enters the
    /// population. The behaviour is stashed at schedule time and installed
    /// when the event fires.
    Join,
    /// The node departs permanently: its behaviour (and therefore all of
    /// its state) is dropped. A later `Join` brings it back from scratch.
    Leave,
    /// The node fail-stops but keeps its state, exactly like
    /// [`Engine::crash`] — messages to it are dropped and its timers stop
    /// firing until a `Recover`.
    Crash,
    /// The node resumes from a crash with its state intact.
    Recover,
}

impl MembershipChange {
    /// Stable discriminant used in the `b` slot of the event key.
    fn discriminant(self) -> u64 {
        match self {
            MembershipChange::Join => 0,
            MembershipChange::Leave => 1,
            MembershipChange::Crash => 2,
            MembershipChange::Recover => 3,
        }
    }
}

/// The deterministic total-order key of an event.
///
/// Keys are unique: deliveries are distinguished by `(src, per-link
/// sequence)` and timers by the target's per-node timer sequence, both of
/// which are assigned in the emitting node's own deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event fires.
    pub at: SimTime,
    /// The node whose handler runs.
    pub node: NodeId,
    /// Deliveries sort before timers in the same `(time, node)` slot.
    pub class: EventClass,
    /// Deliver: the sender's id. Timer: the per-node timer sequence.
    pub a: u64,
    /// Deliver: the per-link message sequence. Timer: the token.
    pub b: u64,
}

/// The payload of a scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Deliver a message to `key.node`.
    Deliver(Envelope),
    /// Fire `on_timer(token)` on `key.node`.
    Timer {
        /// The application token passed back to `on_timer`.
        token: u64,
    },
    /// Apply a membership change to `key.node`. For `Join` the behaviour is
    /// looked up in the engine's [`MembershipLedger`] under the membership
    /// sequence carried in `key.a`.
    Membership(MembershipChange),
}

/// An event plus its deterministic ordering key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// The total-order key.
    pub key: EventKey,
    /// What happens when the event fires.
    pub kind: EventKind,
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut sm = SplitMix64::new(seed);
    let x = sm.next_u64();
    let mut sm = SplitMix64::new(x ^ a);
    let y = sm.next_u64();
    let mut sm = SplitMix64::new(y ^ b);
    sm.next_u64()
}

/// Derives the dedicated RNG stream of the directed link `src → dst` for an
/// engine seeded with `seed`.
pub fn link_stream(seed: u64, src: NodeId, dst: NodeId) -> Xoshiro256StarStar {
    Xoshiro256StarStar::seed_from_u64(mix(seed, src.0, dst.0))
}

#[derive(Debug)]
struct LinkState {
    rng: Xoshiro256StarStar,
    sequence: u64,
    last_delivery: Option<SimTime>,
}

/// Per-directed-link delivery state: RNG stream, FIFO watermark and message
/// sequence counter.
///
/// Both engines funnel every send through [`LinkTable::prepare`], which is
/// what makes their latency/loss draws — and therefore their entire
/// executions — bit-identical.
#[derive(Debug)]
pub struct LinkTable {
    seed: u64,
    links: DetHashMap<(NodeId, NodeId), LinkState>,
}

impl LinkTable {
    /// Creates an empty table for an engine seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            links: DetHashMap::default(),
        }
    }

    /// Decides the fate of one message sent at `at` on `src → dst`.
    ///
    /// Returns `None` when the message is lost, otherwise the delivery time
    /// (respecting per-link FIFO order) and the per-link message sequence
    /// number to use in the event key.
    pub fn prepare(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        model: LatencyModel,
        loss_probability: f64,
    ) -> Option<(SimTime, u64)> {
        let state = self.links.entry((src, dst)).or_insert_with(|| LinkState {
            rng: link_stream(self.seed, src, dst),
            sequence: 0,
            last_delivery: None,
        });
        if loss_probability > 0.0 && state.rng.gen_bool(loss_probability) {
            return None;
        }
        let mut deliver_at = at + model.sample(&mut state.rng);
        if let Some(last) = state.last_delivery {
            if deliver_at <= last {
                deliver_at = last + SimTime::from_nanos(1);
            }
        }
        state.last_delivery = Some(deliver_at);
        let sequence = state.sequence;
        state.sequence += 1;
        Some((deliver_at, sequence))
    }
}

/// Per-node membership sequencing plus the behaviours of scheduled joins,
/// shared by both engines so their membership event keys cannot drift
/// apart.
///
/// Every membership change of a node gets the node's next membership
/// sequence number (in schedule-call order, which is deterministic program
/// order), so keys are unique and totally ordered. Join behaviours are
/// stashed under `(node, sequence)` and taken out when the event fires —
/// a node may leave and rejoin any number of times, each join with its own
/// fresh behaviour.
pub struct MembershipLedger<B> {
    sequences: BTreeMap<NodeId, u64>,
    pending_joins: BTreeMap<(NodeId, u64), B>,
}

impl<B> Default for MembershipLedger<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B> MembershipLedger<B> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self {
            sequences: BTreeMap::new(),
            pending_joins: BTreeMap::new(),
        }
    }

    /// Assigns the deterministic event key of the next membership change of
    /// `node` firing at `at`.
    pub fn next_key(&mut self, at: SimTime, node: NodeId, change: MembershipChange) -> EventKey {
        let sequence = self.sequences.entry(node).or_insert(0);
        let key = EventKey {
            at,
            node,
            class: EventClass::Membership,
            a: *sequence,
            b: change.discriminant(),
        };
        *sequence += 1;
        key
    }

    /// Stashes the behaviour of a scheduled join under its membership
    /// sequence (taken from `key.a` of the join's event key).
    pub fn stash_join(&mut self, node: NodeId, sequence: u64, behavior: B) {
        self.pending_joins.insert((node, sequence), behavior);
    }

    /// Takes the behaviour of the join event with the given sequence.
    pub fn take_join(&mut self, node: NodeId, sequence: u64) -> Option<B> {
        self.pending_joins.remove(&(node, sequence))
    }
}

/// A piecewise-constant loss-probability timeline.
///
/// The effective probability of a send is a pure function of its send
/// time, so scheduled loss changes (the "loss storms" of `cyclosa-chaos`)
/// stay bit-identical across engines and shard counts: every shard holds
/// the same schedule and evaluates it at the same deterministic send
/// times.
#[derive(Debug, Clone, Default)]
pub struct LossSchedule {
    base: f64,
    /// `(from, probability)` steps sorted by time; a later entry scheduled
    /// at the same instant overrides an earlier one.
    changes: Vec<(SimTime, f64)>,
}

impl LossSchedule {
    /// A schedule with a constant base probability of zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the base probability in force before the first scheduled change.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn set_base(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.base = p;
    }

    /// Schedules the probability to become `p` at `at` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn schedule(&mut self, at: SimTime, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        // Insert after every entry with time <= at, so same-instant
        // schedules apply in call order.
        let index = self.changes.partition_point(|(t, _)| *t <= at);
        self.changes.insert(index, (at, p));
    }

    /// The effective loss probability at `at`.
    pub fn at(&self, at: SimTime) -> f64 {
        match self.changes.partition_point(|(t, _)| *t <= at) {
            0 => self.base,
            n => self.changes[n - 1].1,
        }
    }
}

/// A piecewise-constant loss timeline scoped to **link groups**: directed
/// sets of links `src_set × dst_set`, each with its own [`LossSchedule`]-style
/// step function of send time.
///
/// This is the primitive behind network partitions: scheduling loss `1.0`
/// on `A × B` and `B × A` at `split_at` (and `0.0` at `merge_at`) cuts the
/// population into components that later re-merge, while links inside each
/// component are untouched. Asymmetric and partial (lossy-but-not-severed)
/// splits fall out of the same surface.
///
/// Like the global [`LossSchedule`], the effective probability of a send is
/// a pure function of its `(send time, src, dst)` triple — never of event
/// interleaving — so partitions stay bit-identical across engines and
/// shard counts: every shard holds the same replicated schedule (group
/// matching is plain data), and a link whose effective probability is zero
/// draws nothing from its RNG stream on any engine. When several groups
/// match the same link, their probabilities compose independently
/// (`1 − Π(1 − pᵢ)`), as does the global schedule on top.
#[derive(Debug, Clone, Default)]
pub struct LinkGroupSchedule {
    groups: Vec<LinkGroup>,
}

#[derive(Debug, Clone)]
struct LinkGroup {
    src: DetHashSet<NodeId>,
    dst: DetHashSet<NodeId>,
    schedule: LossSchedule,
}

impl LinkGroupSchedule {
    /// An empty schedule: no group ever loses anything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the loss probability of every directed link in
    /// `src_set × dst_set` to become `p` at `at` (inclusive). Repeated calls
    /// with the same two sets extend that group's step function; a new pair
    /// of sets opens a new group (composing independently with the others).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or either set is empty.
    pub fn schedule(&mut self, at: SimTime, src_set: &[NodeId], dst_set: &[NodeId], p: f64) {
        assert!(
            !src_set.is_empty() && !dst_set.is_empty(),
            "link groups need non-empty src and dst sets"
        );
        let src: DetHashSet<NodeId> = src_set.iter().copied().collect();
        let dst: DetHashSet<NodeId> = dst_set.iter().copied().collect();
        if let Some(group) = self
            .groups
            .iter_mut()
            .find(|g| g.src == src && g.dst == dst)
        {
            group.schedule.schedule(at, p);
            return;
        }
        let mut schedule = LossSchedule::new();
        schedule.schedule(at, p);
        self.groups.push(LinkGroup { src, dst, schedule });
    }

    /// Whether no group has ever been scheduled (the hot-path fast exit).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group-only loss probability of the directed link `src → dst` at
    /// send time `at`: `1 − Π(1 − pᵢ)` over every matching group.
    pub fn at(&self, at: SimTime, src: NodeId, dst: NodeId) -> f64 {
        let mut survival = 1.0;
        for group in &self.groups {
            if group.src.contains(&src) && group.dst.contains(&dst) {
                survival *= 1.0 - group.schedule.at(at);
            }
        }
        1.0 - survival
    }

    /// The effective loss probability of one send, composing the global
    /// schedule's `base` with every matching group independently. Both
    /// engines funnel their sends through this, so they cannot drift.
    pub fn combined(&self, base: f64, at: SimTime, src: NodeId, dst: NodeId) -> f64 {
        if self.groups.is_empty() {
            return base;
        }
        1.0 - (1.0 - base) * (1.0 - self.at(at, src, dst))
    }
}

/// The scheduling surface shared by the sequential [`crate::sim::Simulation`]
/// and the sharded engine of `cyclosa-runtime`.
///
/// Node behaviours only ever see a [`crate::sim::Context`], so any
/// [`NodeBehavior`] implementation runs unchanged on every `Engine`.
/// Configuration methods (`add_node`, `set_*`, `crash`, `recover`, `post`,
/// `schedule_*`) are called from the driving thread before [`Engine::run`]
/// (or between runs) — but the `schedule_join` / `schedule_leave` /
/// `schedule_crash` / `schedule_recover` / `schedule_loss_probability`
/// family takes effect at a chosen *simulated* time, so membership and
/// link quality evolve deterministically **while the run is in flight**.
/// Membership changes are ordinary events with a total-order
/// [`EventKey`] (class [`EventClass::Membership`], sorting first in its
/// `(time, node)` slot), which is what keeps executions bit-identical
/// across engines and shard counts even under churn.
pub trait Engine {
    /// Registers a node behaviour under `id`.
    fn add_node(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior + Send>);

    /// Sets the default latency model for all links.
    fn set_default_latency(&mut self, model: LatencyModel);

    /// Overrides the latency model of the directed link `src → dst`.
    fn set_link_latency(&mut self, src: NodeId, dst: NodeId, model: LatencyModel);

    /// Sets the probability that any message is silently lost in transit.
    fn set_loss_probability(&mut self, p: f64);

    /// Marks a node as crashed: messages to it are dropped, its timers stop
    /// firing.
    fn crash(&mut self, node: NodeId);

    /// Clears a node's crashed mark: it resumes receiving messages and
    /// firing newly scheduled timers, with its state intact. A no-op for
    /// nodes that are not crashed.
    fn recover(&mut self, node: NodeId);

    /// Schedules `behavior` to join the population as `node` at simulated
    /// time `at`. If the node already exists when the event fires, the new
    /// behaviour replaces the old one (a rejoin from scratch).
    fn schedule_join(&mut self, at: SimTime, node: NodeId, behavior: Box<dyn NodeBehavior + Send>);

    /// Schedules `node` to leave the population at simulated time `at`,
    /// dropping its behaviour and state.
    fn schedule_leave(&mut self, at: SimTime, node: NodeId);

    /// Schedules `node` to crash (fail-stop, state retained) at simulated
    /// time `at`.
    fn schedule_crash(&mut self, at: SimTime, node: NodeId);

    /// Schedules `node` to recover from a crash at simulated time `at`.
    fn schedule_recover(&mut self, at: SimTime, node: NodeId);

    /// Schedules the global loss probability to become `p` at simulated
    /// time `at` (a deterministic "loss storm" step; see [`LossSchedule`]).
    fn schedule_loss_probability(&mut self, at: SimTime, p: f64);

    /// Schedules the loss probability of every directed link in
    /// `src_set × dst_set` to become `p` at simulated time `at` — the
    /// link-group window primitive behind partitions (see
    /// [`LinkGroupSchedule`]). Composes independently with the global
    /// schedule and with other groups covering the same link.
    fn schedule_link_loss(&mut self, at: SimTime, src_set: &[NodeId], dst_set: &[NodeId], p: f64);

    /// Injects a message from outside the simulation, delivered at `at`
    /// plus the sampled link latency.
    fn post(&mut self, at: SimTime, src: NodeId, dst: NodeId, tag: u32, payload: Vec<u8>);

    /// Schedules `on_timer(token)` on `node` at absolute time `at`.
    fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64);

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Runs until no events remain, returning the number of processed
    /// events.
    fn run(&mut self) -> u64;

    /// Runs until the clock reaches `deadline` or no events remain.
    fn run_until(&mut self, deadline: SimTime);

    /// Run statistics so far.
    fn stats(&self) -> SimulationStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_keys_order_by_time_node_class() {
        let base = EventKey {
            at: SimTime::from_millis(5),
            node: NodeId(3),
            class: EventClass::Deliver,
            a: 0,
            b: 0,
        };
        let later = EventKey {
            at: SimTime::from_millis(6),
            ..base
        };
        let other_node = EventKey {
            node: NodeId(4),
            ..base
        };
        let timer = EventKey {
            class: EventClass::Timer,
            ..base
        };
        let membership = EventKey {
            class: EventClass::Membership,
            ..base
        };
        assert!(base < later);
        assert!(base < other_node);
        assert!(
            base < timer,
            "deliveries sort before timers in the same slot"
        );
        assert!(
            membership < base,
            "membership changes sort before deliveries in the same slot"
        );
    }

    #[test]
    fn membership_ledger_assigns_unique_ordered_keys() {
        let mut ledger: MembershipLedger<&'static str> = MembershipLedger::new();
        let at = SimTime::from_secs(1);
        let leave = ledger.next_key(at, NodeId(7), MembershipChange::Leave);
        let join = ledger.next_key(at, NodeId(7), MembershipChange::Join);
        assert_eq!(leave.class, EventClass::Membership);
        assert_eq!((leave.a, join.a), (0, 1), "per-node sequence increments");
        assert!(leave < join, "same-slot membership events keep call order");
        // An unrelated node has its own sequence space.
        let other = ledger.next_key(at, NodeId(8), MembershipChange::Crash);
        assert_eq!(other.a, 0);
        // Join behaviours are stashed and taken by exact sequence.
        ledger.stash_join(NodeId(7), join.a, "behaviour");
        assert_eq!(ledger.take_join(NodeId(7), join.a), Some("behaviour"));
        assert_eq!(ledger.take_join(NodeId(7), join.a), None);
    }

    #[test]
    fn loss_schedule_is_piecewise_constant_in_send_time() {
        let mut schedule = LossSchedule::new();
        schedule.set_base(0.1);
        schedule.schedule(SimTime::from_secs(10), 0.8);
        schedule.schedule(SimTime::from_secs(20), 0.0);
        assert_eq!(schedule.at(SimTime::ZERO), 0.1);
        assert_eq!(schedule.at(SimTime::from_secs(9)), 0.1);
        assert_eq!(schedule.at(SimTime::from_secs(10)), 0.8, "steps inclusive");
        assert_eq!(schedule.at(SimTime::from_secs(19)), 0.8);
        assert_eq!(schedule.at(SimTime::from_secs(500)), 0.0);
        // A same-instant re-schedule applies in call order.
        schedule.schedule(SimTime::from_secs(10), 0.5);
        assert_eq!(schedule.at(SimTime::from_secs(10)), 0.5);
    }

    #[test]
    fn loss_schedule_duplicate_at_is_last_write_wins() {
        // Several changes scheduled at the same instant: the last call
        // wins at and after that instant, and earlier duplicates never
        // resurface — including interleaved with other instants and with
        // duplicates added after later entries already exist.
        let mut schedule = LossSchedule::new();
        schedule.schedule(SimTime::from_secs(5), 0.2);
        schedule.schedule(SimTime::from_secs(5), 0.9);
        schedule.schedule(SimTime::from_secs(5), 0.4);
        assert_eq!(schedule.at(SimTime::from_secs(5)), 0.4);
        assert_eq!(schedule.at(SimTime::from_secs(6)), 0.4);
        assert_eq!(schedule.at(SimTime::from_secs(4)), 0.0, "base before");
        // A later instant exists; re-scheduling the earlier one still only
        // affects the window up to the later instant.
        schedule.schedule(SimTime::from_secs(10), 0.7);
        schedule.schedule(SimTime::from_secs(5), 0.1);
        assert_eq!(schedule.at(SimTime::from_secs(5)), 0.1);
        assert_eq!(schedule.at(SimTime::from_secs(9)), 0.1);
        assert_eq!(schedule.at(SimTime::from_secs(10)), 0.7, "later unchanged");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_schedule_rejects_invalid_probability() {
        LossSchedule::new().schedule(SimTime::ZERO, 1.5);
    }

    #[test]
    fn link_group_schedule_scopes_loss_to_the_group_and_window() {
        let mut schedule = LinkGroupSchedule::new();
        assert!(schedule.is_empty());
        let a = [NodeId(1), NodeId(2)];
        let b = [NodeId(3), NodeId(4)];
        schedule.schedule(SimTime::from_secs(10), &a, &b, 1.0);
        schedule.schedule(SimTime::from_secs(20), &a, &b, 0.0);
        assert!(!schedule.is_empty());
        // Outside the window, and for any link not in A × B, nothing is lost.
        assert_eq!(
            schedule.at(SimTime::from_secs(5), NodeId(1), NodeId(3)),
            0.0
        );
        assert_eq!(
            schedule.at(SimTime::from_secs(25), NodeId(1), NodeId(3)),
            0.0
        );
        assert_eq!(
            schedule.at(SimTime::from_secs(15), NodeId(1), NodeId(2)),
            0.0,
            "intra-group links are untouched"
        );
        assert_eq!(
            schedule.at(SimTime::from_secs(15), NodeId(3), NodeId(1)),
            0.0,
            "the reverse direction needs its own group"
        );
        // Inside the window every A → B link is severed.
        assert_eq!(
            schedule.at(SimTime::from_secs(15), NodeId(2), NodeId(4)),
            1.0
        );
    }

    #[test]
    fn link_group_schedules_compose_independently() {
        let mut schedule = LinkGroupSchedule::new();
        schedule.schedule(SimTime::ZERO, &[NodeId(1)], &[NodeId(2)], 0.5);
        schedule.schedule(SimTime::ZERO, &[NodeId(1), NodeId(9)], &[NodeId(2)], 0.5);
        // Two matching groups at 0.5: survival 0.25, loss 0.75.
        let p = schedule.at(SimTime::from_secs(1), NodeId(1), NodeId(2));
        assert!((p - 0.75).abs() < 1e-12, "composed loss {p}");
        // The global base composes on top the same way.
        let combined = schedule.combined(0.2, SimTime::from_secs(1), NodeId(1), NodeId(2));
        assert!((combined - 0.8).abs() < 1e-12, "combined loss {combined}");
        // An unscheduled link falls back to the base alone.
        let base_only = schedule.combined(0.2, SimTime::from_secs(1), NodeId(5), NodeId(6));
        assert!((base_only - 0.2).abs() < 1e-12);
    }

    #[test]
    fn link_group_repeat_schedule_extends_the_same_group() {
        let mut schedule = LinkGroupSchedule::new();
        let a = [NodeId(1)];
        let b = [NodeId(2)];
        schedule.schedule(SimTime::from_secs(1), &a, &b, 0.8);
        schedule.schedule(SimTime::from_secs(2), &a, &b, 0.1);
        // A later step in the same group replaces, not composes.
        let p = schedule.at(SimTime::from_secs(3), NodeId(1), NodeId(2));
        assert!((p - 0.1).abs() < 1e-12, "stepped loss {p}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn link_group_schedule_rejects_empty_sets() {
        LinkGroupSchedule::new().schedule(SimTime::ZERO, &[], &[NodeId(1)], 0.5);
    }

    #[test]
    fn link_streams_are_deterministic_and_decorrelated() {
        let mut a = link_stream(7, NodeId(1), NodeId(2));
        let mut b = link_stream(7, NodeId(1), NodeId(2));
        let mut c = link_stream(7, NodeId(2), NodeId(1));
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c, "link direction must change the stream");
    }

    #[test]
    fn link_table_preserves_fifo_and_counts_sequences() {
        let mut table = LinkTable::new(1);
        let model = LatencyModel::LogNormal {
            median_ms: 50.0,
            sigma: 1.0,
        };
        let mut last = SimTime::ZERO;
        for expected_seq in 0..50u64 {
            let (at, seq) = table
                .prepare(SimTime::ZERO, NodeId(0), NodeId(1), model, 0.0)
                .expect("no loss configured");
            assert!(at > last, "delivery times must strictly increase per link");
            assert_eq!(seq, expected_seq);
            last = at;
        }
    }

    #[test]
    fn link_table_is_independent_of_other_links() {
        // Interleaving draws on an unrelated link must not change this
        // link's delivery schedule — the property sharding relies on.
        let model = LatencyModel::wan();
        let mut alone = LinkTable::new(9);
        let solo: Vec<_> = (0..20)
            .map(|i| alone.prepare(SimTime::from_millis(i), NodeId(0), NodeId(1), model, 0.0))
            .collect();
        let mut mixed = LinkTable::new(9);
        let interleaved: Vec<_> = (0..20)
            .map(|i| {
                let _ = mixed.prepare(SimTime::from_millis(i), NodeId(5), NodeId(6), model, 0.0);
                mixed.prepare(SimTime::from_millis(i), NodeId(0), NodeId(1), model, 0.0)
            })
            .collect();
        assert_eq!(solo, interleaved);
    }
}
