//! Simulated time.

use std::ops::{Add, AddAssign, Sub};

/// An instant or duration of simulated time, with nanosecond resolution.
///
/// The simulation treats instants and durations uniformly (both are counts
/// of nanoseconds since the start of the run), which keeps the arithmetic
/// in the event loop simple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "seconds must be non-negative and finite"
        );
        Self((s * 1e9).round() as u64)
    }

    /// Nanoseconds since the start of the simulation.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Value in microseconds (floating point) — the unit of Chrome
    /// trace-event timestamps.
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds (floating point).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds (floating point).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference between two instants.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked difference between two instants: `None` when `other` is
    /// later than `self`. Prefer this over [`SimTime::saturating_sub`]
    /// when a negative difference would mask an event-ordering bug.
    pub fn checked_sub(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_sub(other.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(13));
        assert_eq!(a - b, SimTime::from_millis(7));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimTime::from_millis(7)));
        assert_eq!(b.checked_sub(a), None, "negative differences surface");
        assert!(a > b);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(13));
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_millis(1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_micros_f64() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
