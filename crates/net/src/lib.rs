//! A deterministic discrete-event network simulator.
//!
//! The paper evaluates CYCLOSA on physical machines; this reproduction runs
//! the same protocols over a simulated wide-area network so that every
//! latency figure (Fig. 8a, 8b, 8d) is reproducible from a seed. The crate
//! provides:
//!
//! * [`time`] — simulated time (`SimTime`, nanosecond resolution).
//! * [`latency`] — link latency models (constant, uniform, log-normal) that
//!   the experiments calibrate to the paper's measured medians.
//! * [`sim`] — the event loop: nodes implement [`sim::NodeBehavior`], send
//!   each other byte payloads through [`sim::Context`], and set timers; the
//!   simulator delivers messages after sampled link latencies, preserving
//!   per-link FIFO order (which the secure channels of `cyclosa-crypto`
//!   rely on), injects losses and models crashed or Byzantine-silent nodes.
//! * [`engine`] — the [`Engine`] scheduling trait shared with the sharded
//!   parallel engine of `cyclosa-runtime`, plus the deterministic event
//!   keys and per-link RNG streams that make executions bit-identical
//!   across engines.
//!
//! # Example
//!
//! ```
//! use cyclosa_net::sim::{Context, Envelope, NodeBehavior, Simulation};
//! use cyclosa_net::time::SimTime;
//! use cyclosa_net::NodeId;
//!
//! struct Echo;
//! impl NodeBehavior for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
//!         ctx.send(envelope.src, envelope.tag, envelope.payload);
//!     }
//! }
//!
//! struct Probe;
//! impl NodeBehavior for Probe {
//!     fn on_message(&mut self, _ctx: &mut Context<'_>, _envelope: Envelope) {}
//! }
//!
//! let mut sim = Simulation::new(1);
//! sim.add_node(NodeId(0), Box::new(Probe));
//! sim.add_node(NodeId(1), Box::new(Echo));
//! sim.post(SimTime::ZERO, NodeId(0), NodeId(1), 7, b"ping".to_vec());
//! sim.run();
//! assert!(sim.stats().delivered >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod latency;
pub mod sim;
pub mod time;

pub use engine::{Engine, EventClass, EventKey, EventKind, LinkTable, ScheduledEvent};
pub use latency::LatencyModel;
pub use sim::{Context, Envelope, NodeBehavior, Simulation, SimulationStats};
pub use time::SimTime;

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}
