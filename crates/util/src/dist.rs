//! Sampling helpers for the distributions used throughout the reproduction.
//!
//! The workload generator uses [`Zipf`] for term and query popularity (Web
//! query logs are famously heavy-tailed), the network simulator uses
//! [`LogNormal`] and [`Exponential`] for link latencies and think times, and
//! the annotation simulator uses [`normal`] noise.

use crate::rng::Rng;

/// A Zipf (discrete power-law) distribution over ranks `0..n`.
///
/// Rank `r` is drawn with probability proportional to `1 / (r + 1)^exponent`.
/// This matches the popularity skew of Web search terms: a few terms are
/// extremely popular while the tail is long.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalised) weights for binary-search sampling.
    cumulative: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or if `exponent` is negative or non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        Self {
            cumulative,
            exponent,
        }
    }

    /// Number of ranks in the distribution.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The skew exponent used to build this distribution.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = rng.next_f64() * total;
        // First index whose cumulative weight exceeds the target.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cumulative.len() {
            return 0.0;
        }
        let total = *self.cumulative.last().expect("non-empty");
        let w = 1.0 / ((rank + 1) as f64).powf(self.exponent);
        w / total
    }
}

/// An exponential distribution with the given `rate` (λ).
///
/// Used for inter-arrival times of user queries in the simulated deployment
/// (Fig. 8d): the 100 most active AOL users submit ~31.23 queries/hour, i.e.
/// a mean inter-arrival of ~115 s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (events per
    /// unit time).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self { rate }
    }

    /// The distribution's mean (`1 / rate`).
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Samples a waiting time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling; guard against ln(0).
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }
}

/// A log-normal distribution parameterised by the mean and standard deviation
/// of the underlying normal (i.e. of `ln X`).
///
/// Wide-area network round-trip times are well approximated by a log-normal;
/// the network simulator uses this for client→relay and relay→search-engine
/// links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the parameters of `ln X`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Self { mu, sigma }
    }

    /// Creates a log-normal whose *median* is `median` and whose spread is
    /// controlled by `sigma` (the standard deviation of `ln X`).
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        Self::new(median.ln(), sigma)
    }

    /// Samples a value (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * normal(rng)).exp()
    }

    /// The distribution median (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// Samples a standard normal variate using the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::stats::Summary;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(2018)
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let zipf = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(zipf.pmf(50), 0.0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((zipf.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let exp = Exponential::new(0.5);
        let mut rng = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| exp.sample(&mut rng)).collect();
        let summary = Summary::from_samples(&samples);
        assert!(
            (summary.mean - 2.0).abs() < 0.1,
            "mean was {}",
            summary.mean
        );
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn lognormal_median_is_close() {
        let ln = LogNormal::from_median(100.0, 0.5);
        let mut rng = rng();
        let mut samples: Vec<f64> = (0..50_000).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() / 100.0 < 0.05, "median was {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = rng();
        let samples: Vec<f64> = (0..50_000)
            .map(|_| normal_with(&mut rng, 5.0, 2.0))
            .collect();
        let summary = Summary::from_samples(&samples);
        assert!((summary.mean - 5.0).abs() < 0.05);
        assert!((summary.std_dev - 2.0).abs() < 0.05);
    }
}
