//! A minimal JSON value model and serializer.
//!
//! The benchmark harness emits machine-readable reports with `--json`. The
//! build environment has no networked crate registry, so instead of
//! depending on `serde`, report types implement the tiny [`ToJson`] trait —
//! usually through the [`impl_to_json!`](crate::impl_to_json) macro, which
//! generates a field-by-field object conversion:
//!
//! ```
//! use cyclosa_util::impl_to_json;
//! use cyclosa_util::json::ToJson;
//!
//! struct Row { name: String, score: f64, wins: u64 }
//! impl_to_json!(Row { name, score, wins });
//!
//! let row = Row { name: "cyclosa".into(), score: 0.5, wins: 3 };
//! assert_eq!(row.to_json().pretty(), "{\n  \"name\": \"cyclosa\",\n  \"score\": 0.5,\n  \"wins\": 3\n}");
//! ```

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number (non-finite values serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    // Whole floats keep a decimal point so consumers can tell floats from
    // integers (serde_json's behaviour for f64).
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') {
        s.push_str(".0");
    }
    s
}

impl Json {
    fn write_into(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => out.push_str(&number_to_string(*v)),
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    item.write_into(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(out, key);
                    out.push_str(": ");
                    value.write_into(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
        }
    }

    fn write_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => out.push_str(&number_to_string(*v)),
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.write_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Pretty-prints with two-space indentation (the `serde_json`
    /// `to_string_pretty` layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out
    }

    /// Serializes without any whitespace (the `serde_json` `to_string`
    /// layout) — one line per value, as JSONL consumers expect.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact_into(&mut out);
        out
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        })*
    };
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {
        $(impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        })*
    };
}
impl_signed!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(value) => value.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Implements [`ToJson`](crate::json::ToJson) for a struct as an object of
/// its named fields, in declaration order.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_owned(), $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(true.to_json().pretty(), "true");
        assert_eq!(42u64.to_json().pretty(), "42");
        assert_eq!((-3i64).to_json().pretty(), "-3");
        assert_eq!(1.5f64.to_json().pretty(), "1.5");
        assert_eq!(2.0f64.to_json().pretty(), "2.0");
        assert_eq!(f64::NAN.to_json().pretty(), "null");
        assert_eq!("a\"b\nc".to_json().pretty(), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let value = Json::Obj(vec![
            ("empty".into(), Json::Arr(vec![])),
            ("pair".into(), (1u64, 0.5f64).to_json()),
        ]);
        assert_eq!(
            value.pretty(),
            "{\n  \"empty\": [],\n  \"pair\": [\n    1,\n    0.5\n  ]\n}"
        );
    }

    #[test]
    fn derive_macro_preserves_field_order() {
        struct Report {
            name: String,
            values: Vec<u64>,
            ratio: f64,
        }
        crate::impl_to_json!(Report {
            name,
            values,
            ratio
        });
        let report = Report {
            name: "x".into(),
            values: vec![1, 2],
            ratio: 0.25,
        };
        let text = report.to_json().pretty();
        let name_at = text.find("\"name\"").unwrap();
        let values_at = text.find("\"values\"").unwrap();
        let ratio_at = text.find("\"ratio\"").unwrap();
        assert!(name_at < values_at && values_at < ratio_at);
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!("\u{1}".to_json().pretty(), "\"\\u0001\"");
    }

    #[test]
    fn compact_has_no_whitespace() {
        let value = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::U64(1), Json::Null])),
            ("b".into(), Json::Obj(vec![])),
            ("c".into(), Json::F64(2.0)),
        ]);
        assert_eq!(value.compact(), "{\"a\":[1,null],\"b\":{},\"c\":2.0}");
    }
}
