//! Deterministic hash containers for keyed hot-path state.
//!
//! `std::collections::HashMap` seeds SipHash from process entropy
//! (`RandomState`), so *iteration order varies between runs* — the exact
//! hazard cyclosa-lint's nondeterminism rule bans from determinism-critical
//! crates. [`DetHashMap`]/[`DetHashSet`] keep the O(1) access the engines'
//! per-event hot paths need while replacing the hasher with a fixed-key
//! FxHash: for one and the same sequence of insertions and removals the
//! table layout — and therefore iteration order — is a pure function of
//! that sequence, identical across runs, machines and shard counts.
//!
//! They are still *hash* containers: iteration order remains a function of
//! the operation history and capacity growth, not of the keys' natural
//! order. State whose iteration order feeds event order, exported bytes or
//! RNG draws should use `BTreeMap`/`BTreeSet` (or sort explicitly) instead;
//! `DetHashMap` is the sanctioned escape hatch for *keyed-access-only*
//! state where a B-tree's pointer chasing would sit on the hot path.

// The one sanctioned mention of the std hash containers: this module
// wraps them with a fixed-key hasher. clippy's disallowed-types backs up
// cyclosa-lint everywhere else.
#[allow(clippy::disallowed_types)]
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash (the rustc hasher): a fast, non-cryptographic,
/// fixed-parameter hash. No per-process seeding, so hashes — and
/// bucket layouts — are stable across runs and platforms.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x517C_C1B7_2722_0A95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic drop-in for `HashMap`: fixed-key FxHash, no process
/// entropy. See the module docs for when a `BTreeMap` is required instead.
#[allow(clippy::disallowed_types)]
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Deterministic drop-in for `HashSet`. See [`DetHashMap`].
#[allow(clippy::disallowed_types)]
pub type DetHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(value)
    }

    #[test]
    fn hashes_are_fixed_across_builders() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("query"), hash_one("query"));
        assert_ne!(hash_one(1u64), hash_one(2u64));
    }

    /// Same operation sequence ⇒ same iteration order, every time.
    #[test]
    fn iteration_order_is_a_pure_function_of_the_op_sequence() {
        let build = || {
            let mut map: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..1000u64 {
                map.insert(i.wrapping_mul(0x9E37_79B9), i);
            }
            for i in 0..300u64 {
                map.remove(&(i.wrapping_mul(0x9E37_79B9) * 2));
            }
            map.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn set_membership_behaves() {
        let mut set: DetHashSet<&str> = DetHashSet::default();
        assert!(set.insert("a"));
        assert!(!set.insert("a"));
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }
}
