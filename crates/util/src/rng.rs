//! Deterministic, seedable pseudo-random number generators.
//!
//! The reproduction deliberately avoids OS entropy: every source of
//! randomness is an explicit, seedable generator so that workloads, network
//! simulations and experiments are bit-for-bit reproducible. Two generators
//! are provided:
//!
//! * [`SplitMix64`] — a tiny generator mostly used to expand a single `u64`
//!   seed into the larger state required by [`Xoshiro256StarStar`].
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna),
//!   with 256 bits of state and excellent statistical quality for
//!   simulation purposes. It is *not* cryptographically secure; key material
//!   in `cyclosa-crypto` is derived through the HKDF construction instead.

/// A source of pseudo-random numbers.
///
/// The trait purposefully mirrors the tiny subset of the `rand` crate's API
/// that the reproduction needs, so that swapping in a different generator is
/// trivial.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    fn gen_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(
            low < high,
            "gen_range requires low < high ({low} >= {high})"
        );
        let span = high - low;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return low + v % span;
            }
        }
    }

    /// Returns a uniformly distributed `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(0, len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Returns an array of `N` random bytes.
    fn gen_bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill_bytes(&mut out);
        out
    }

    /// Shuffles `items` in place using the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }

    /// Samples `count` distinct indices from `[0, len)` without replacement.
    ///
    /// Returns fewer than `count` indices when `count > len`.
    fn sample_indices(&mut self, len: usize, count: usize) -> Vec<usize> {
        let count = count.min(len);
        // Partial Fisher–Yates over an index vector: O(len) memory but the
        // views involved in CYCLOSA are small (peer views, relay choices).
        let mut indices: Vec<usize> = (0..len).collect();
        for i in 0..count {
            let j = i + self.gen_index(len - i);
            indices.swap(i, j);
        }
        indices.truncate(count);
        indices
    }

    /// Samples an index according to the (non-negative) `weights`.
    ///
    /// Returns `None` when the weights are empty or sum to zero.
    fn sample_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if target < *w {
                return Some(i);
            }
            target -= *w;
        }
        // Floating point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

/// The SplitMix64 generator (Steele, Lea & Flood).
///
/// Mainly used to expand small seeds into the state of larger generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The Xoshiro256\*\* generator (Blackman & Vigna, 2018).
///
/// This is the default generator of the reproduction: fast, equidistributed
/// and with a 2^256 − 1 period, more than enough for multi-hour simulated
/// deployments.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeroes (the only forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro state must not be all zero"
        );
        Self { s }
    }

    /// Creates a generator by expanding a 64-bit seed through SplitMix64,
    /// following the construction recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Derives an independent generator for a labelled sub-component.
    ///
    /// This is how the reproduction hands out per-node and per-subsystem
    /// streams from a single experiment seed without correlations between
    /// them.
    pub fn fork(&mut self, label: u64) -> Self {
        let a = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let b = self.next_u64() ^ label.rotate_left(31);
        let mut sm = SplitMix64::new(a ^ b);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Default for Xoshiro256StarStar {
    fn default() -> Self {
        Self::seed_from_u64(0xC1C1_05A0_2018_1CDC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn splitmix_known_sequence() {
        // Reference values for seed 0 from the SplitMix64 reference
        // implementation (first three outputs).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference values from the xoshiro256** reference implementation
        // with state {1, 2, 3, 4}.
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected: [u64; 3] = [11520, 0, 1509978240];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn xoshiro_rejects_zero_state() {
        let _ = Xoshiro256StarStar::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn gen_range_rejects_empty_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let _ = rng.gen_range(5, 5);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            items,
            (0..100).collect::<Vec<_>>(),
            "shuffle left order intact"
        );
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let sample = rng.sample_indices(50, 10);
        assert_eq!(sample.len(), 10);
        let set: BTreeSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(sample.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_saturates_at_len() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let sample = rng.sample_indices(3, 10);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn sample_weighted_prefers_heavy_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.sample_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts: {counts:?}");
    }

    #[test]
    fn sample_weighted_handles_degenerate_inputs() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        assert_eq!(rng.sample_weighted(&[]), None);
        assert_eq!(rng.sample_weighted(&[0.0, 0.0]), None);
        assert_eq!(rng.sample_weighted(&[0.0, 3.0]), Some(1));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_produces_decorrelated_streams() {
        let mut root = Xoshiro256StarStar::seed_from_u64(99);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let seq_a: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Xoshiro256StarStar::seed_from_u64(12345);
        let mut b = Xoshiro256StarStar::seed_from_u64(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
