//! Shared utilities for the CYCLOSA reproduction.
//!
//! This crate provides the deterministic building blocks used by every other
//! crate in the workspace:
//!
//! * [`rng`] — seedable pseudo-random number generators (SplitMix64 and
//!   Xoshiro256\*\*). All randomness in the reproduction flows through these
//!   generators so that every simulation, workload and experiment is
//!   reproducible from a single seed.
//! * [`dist`] — sampling helpers for the distributions used by the workload
//!   generator and the network simulator (uniform, Zipf, exponential,
//!   log-normal, normal).
//! * [`stats`] — descriptive statistics, percentiles, CDFs and histograms used
//!   by the benchmark harness to report the paper's figures.
//! * [`smoothing`] — the exponential-smoothing aggregation used by both the
//!   linkability assessment (paper §V-A2) and SimAttack (paper §VII-E).
//! * [`json`] — a dependency-free JSON value model used by the benchmark
//!   harness for its `--json` report output.
//!
//! # Example
//!
//! ```
//! use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
//! use cyclosa_util::stats::Summary;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let samples: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
//! let summary = Summary::from_samples(&samples);
//! assert!(summary.mean > 0.4 && summary.mean < 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod det;
pub mod dist;
pub mod json;
pub mod rng;
pub mod smoothing;
pub mod stats;

pub use json::{Json, ToJson};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use smoothing::exponential_smoothing;
pub use stats::{Cdf, Histogram, Summary};
