//! Exponential smoothing aggregation.
//!
//! Both the linkability assessment on the client (paper §V-A2) and the
//! SimAttack adversary (paper §VII-E) score a query against a set of past
//! queries by (1) computing the cosine similarity with every past query,
//! (2) sorting the similarities, and (3) aggregating them with exponential
//! smoothing so that the most similar past queries dominate the score.
//!
//! This module implements that aggregation once so that the defence and the
//! attack are guaranteed to use the same definition.

/// Aggregates a set of similarity scores with exponential smoothing.
///
/// The scores are sorted in **descending** order and folded as
/// `s = alpha * x_i + (1 - alpha) * s` starting from the largest score, which
/// gives the highest weight to the most similar past queries (matching the
/// SimAttack definition: similarities "ranked in ascending order" and folded
/// from the smallest, which is equivalent to this descending fold with the
/// roles of `alpha` swapped; we use the formulation that weights the top
/// similarity by `alpha`).
///
/// Returns a value in `[0, 1]` when all inputs are in `[0, 1]`, and `0.0` for
/// an empty input.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
///
/// # Example
///
/// ```
/// use cyclosa_util::smoothing::exponential_smoothing;
/// let score = exponential_smoothing(&[0.1, 0.9, 0.3], 0.5);
/// assert!(score > 0.45 && score <= 0.9);
/// ```
pub fn exponential_smoothing(similarities: &[f64], alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    if similarities.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = similarities
        .iter()
        .copied()
        .filter(|s| s.is_finite())
        .collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    // Fold from the *smallest* up so that the largest similarity receives the
    // final (heaviest) alpha weight.
    let mut acc = *sorted.last().expect("non-empty");
    for &s in sorted.iter().rev().skip(1) {
        acc = alpha * s + (1.0 - alpha) * acc;
    }
    acc
}

/// An incremental exponentially weighted moving average.
///
/// Used by nodes to track their observed relay latency and by the search
/// engine simulator to track per-client request rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Records an observation and returns the updated average.
    pub fn record(&mut self, observation: f64) -> f64 {
        let next = match self.value {
            None => observation,
            Some(prev) => self.alpha * observation + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        next
    }

    /// Current average, or `None` if nothing has been recorded.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_scores_zero() {
        assert_eq!(exponential_smoothing(&[], 0.5), 0.0);
    }

    #[test]
    fn single_value_is_identity() {
        assert!((exponential_smoothing(&[0.7], 0.3) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn top_similarity_dominates() {
        // One perfect match among many poor matches should keep the score
        // high: that is what makes a *single* very similar past query enough
        // for re-identification.
        let mut sims = vec![0.05; 20];
        sims.push(1.0);
        let score = exponential_smoothing(&sims, 0.5);
        assert!(score > 0.5, "score was {score}");
    }

    #[test]
    fn all_low_similarities_stay_low() {
        let sims = vec![0.1; 30];
        let score = exponential_smoothing(&sims, 0.5);
        assert!((score - 0.1).abs() < 1e-9);
    }

    #[test]
    fn order_does_not_matter() {
        let a = exponential_smoothing(&[0.2, 0.9, 0.4, 0.1], 0.5);
        let b = exponential_smoothing(&[0.9, 0.1, 0.2, 0.4], 0.5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn result_bounded_by_extremes() {
        let sims = [0.15, 0.6, 0.33, 0.92, 0.4];
        let score = exponential_smoothing(&sims, 0.4);
        assert!((0.15..=0.92).contains(&score));
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let score = exponential_smoothing(&[f64::NAN, 0.5, f64::INFINITY], 0.5);
        assert!((score - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_zero_is_rejected() {
        let _ = exponential_smoothing(&[0.5], 0.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut ewma = Ewma::new(0.2);
        assert_eq!(ewma.value(), None);
        for _ in 0..200 {
            ewma.record(5.0);
        }
        assert!((ewma.value().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_is_taken_verbatim() {
        let mut ewma = Ewma::new(0.1);
        assert_eq!(ewma.record(3.0), 3.0);
        assert!(ewma.record(4.0) > 3.0);
    }
}
