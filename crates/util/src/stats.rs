//! Descriptive statistics, CDFs and histograms for the experiment harness.
//!
//! The paper reports most system results either as medians (Fig. 8a/8b) or as
//! cumulative distribution functions (Fig. 7, Fig. 8a, Fig. 8b). The types in
//! this module compute those summaries and render them in the same shape the
//! benchmark harness prints.

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean. Zero for an empty sample.
    pub mean: f64,
    /// Population standard deviation. Zero for an empty sample.
    pub std_dev: f64,
    /// Smallest sample. Zero for an empty sample.
    pub min: f64,
    /// Largest sample. Zero for an empty sample.
    pub max: f64,
    /// 50th percentile.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics from a slice of samples.
    ///
    /// Non-finite values are ignored. An empty (or all non-finite) sample
    /// yields an all-zero summary with `count == 0`.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut values: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: values[0],
            max: values[count - 1],
            median: percentile_sorted(&values, 50.0),
            p95: percentile_sorted(&values, 95.0),
            p99: percentile_sorted(&values, 99.0),
        }
    }

    /// Returns an arbitrary percentile (0–100) recomputed from raw samples.
    pub fn percentile_of(samples: &[f64], pct: f64) -> f64 {
        let mut values: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        percentile_sorted(&values, pct)
    }
}

/// Linear-interpolation percentile over an already sorted, non-empty slice.
fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pct = pct.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// An empirical cumulative distribution function.
///
/// The paper's CDF figures (Fig. 7, Fig. 8a, Fig. 8b) are reproduced by
/// evaluating a `Cdf` at a grid of x-values and printing the resulting
/// percentage series.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds an empirical CDF from samples, discarding non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Self { sorted }
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF was built from no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 for an empty CDF.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Percentage of samples `<= x`, in `[0, 100]`.
    pub fn percent_at(&self, x: f64) -> f64 {
        self.fraction_at(x) * 100.0
    }

    /// The value below which `fraction` of the samples fall (inverse CDF).
    ///
    /// `fraction` is clamped to `[0, 1]`. Returns 0 for an empty CDF.
    pub fn quantile(&self, fraction: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        percentile_sorted(&self.sorted, fraction.clamp(0.0, 1.0) * 100.0)
    }

    /// Evaluates the CDF on an evenly spaced grid of `points` x-values
    /// spanning the sample range, returning `(x, percent)` pairs.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if points == 1 || hi <= lo {
            return vec![(hi, 100.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.percent_at(x))
            })
            .collect()
    }

    /// Median of the underlying samples.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// A fixed-width histogram over `[low, high)` used for load-balance reports
/// (Fig. 8d prints per-node query counts over time buckets).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `low >= high`.
    pub fn new(low: f64, high: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(low < high, "histogram range must be non-empty");
        Self {
            low,
            high,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < self.low {
            self.underflow += 1;
            return;
        }
        if value >= self.high {
            self.overflow += 1;
            return;
        }
        let width = (self.high - self.low) / self.counts.len() as f64;
        let idx = ((value - self.low) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_low(&self, i: usize) -> f64 {
        let width = (self.high - self.low) / self.counts.len() as f64;
        self.low + width * i as f64
    }
}

/// Computes the [Jain fairness index] of a set of per-node loads.
///
/// Equals 1.0 for a perfectly balanced load and approaches `1/n` when a
/// single node carries all the load. Used to quantify the load-spreading
/// claim behind Fig. 8d.
///
/// [Jain fairness index]: https://en.wikipedia.org/wiki/Fairness_measure
pub fn jain_fairness(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let sum_sq: f64 = loads.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (loads.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::from_samples(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let values = [10.0, 20.0, 30.0, 40.0];
        assert!((Summary::percentile_of(&values, 0.0) - 10.0).abs() < 1e-12);
        assert!((Summary::percentile_of(&values, 100.0) - 40.0).abs() < 1e-12);
        assert!((Summary::percentile_of(&values, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_fraction_and_quantile_agree() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        assert!((cdf.fraction_at(50.0) - 0.5).abs() < 0.01);
        assert!((cdf.quantile(0.5) - 50.5).abs() < 1.0);
        assert_eq!(cdf.percent_at(0.0), 0.0);
        assert_eq!(cdf.percent_at(1000.0), 100.0);
        assert_eq!(cdf.len(), 100);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        let series = cdf.series(20);
        assert_eq!(series.len(), 20);
        for pair in series.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "CDF must be non-decreasing");
        }
        assert!((series.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_empty_behaves() {
        let cdf = Cdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
        assert!(cdf.series(10).is_empty());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.9, 10.0, -1.0, f64::NAN] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.total(), 7);
        assert!((h.bucket_low(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn jain_fairness_bounds() {
        assert!((jain_fairness(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[100.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }
}
