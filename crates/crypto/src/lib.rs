//! Cryptographic primitives for the CYCLOSA reproduction.
//!
//! The paper links an SGX-compatible mbedTLS into the enclave so that relayed
//! queries are never visible in plaintext outside an enclave (paper §V-F).
//! This crate provides the equivalent building blocks, implemented from
//! scratch against their RFC test vectors so that the reproduction has no
//! external cryptography dependency:
//!
//! * [`sha256`] — the SHA-256 hash (FIPS 180-4), also used for enclave
//!   measurements in `cyclosa-sgx`.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), used for key confirmation and the
//!   simulated attestation signatures.
//! * [`hkdf`] — HKDF (RFC 5869), used to derive channel and sealing keys.
//! * [`chacha20`] / [`poly1305`] / [`aead`] — the ChaCha20-Poly1305 AEAD
//!   (RFC 8439) protecting every inter-enclave and enclave-to-engine record.
//! * [`x25519`] — Diffie–Hellman over Curve25519 (RFC 7748) for the
//!   attested key exchange between enclaves.
//! * [`channel`] — a small record protocol combining the above: an
//!   ephemeral X25519 handshake bound to attestation evidence, then
//!   AEAD-protected records with sequence-number nonces.
//!
//! # Security note
//!
//! These implementations favour clarity over side-channel resistance; they
//! are intended for the simulation environment of this reproduction, not for
//! protecting real traffic.
//!
//! # Example
//!
//! ```
//! use cyclosa_crypto::aead::ChaCha20Poly1305;
//!
//! let key = [7u8; 32];
//! let cipher = ChaCha20Poly1305::new(&key);
//! let nonce = [0u8; 12];
//! let sealed = cipher.seal(&nonce, b"query: neuchatel weather", b"header");
//! let opened = cipher.open(&nonce, &sealed, b"header").unwrap();
//! assert_eq!(opened, b"query: neuchatel weather");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod channel;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod sha256;
pub mod x25519;

pub use aead::{AeadError, ChaCha20Poly1305};
pub use channel::{ChannelError, SecureChannel};
pub use sha256::Sha256;
pub use x25519::{PublicKey, SharedSecret, StaticSecret};

/// Constant-time byte-slice equality.
///
/// Returns `false` when the lengths differ. Used for MAC and key-confirmation
/// comparisons so that the comparison time does not leak the first differing
/// byte position.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches_equality() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }
}
