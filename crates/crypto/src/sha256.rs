//! SHA-256 (FIPS 180-4).
//!
//! Used for enclave measurements (`MRENCLAVE` analogues) in `cyclosa-sgx`,
//! as the hash underlying [`crate::hmac`] and [`crate::hkdf`], and for
//! content digests in the search-engine simulator.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// Block size of SHA-256 in bytes.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use cyclosa_crypto::sha256::Sha256;
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(digest[0], 0xba);
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Convenience one-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Convenience digest over several concatenated parts.
    pub fn digest_parts(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&input[..BLOCK_LEN]);
            self.compress(&block);
            input = &input[BLOCK_LEN..];
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0x00]);
        }
        // The length bytes must not be counted again, so write them directly.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hex-encodes a byte slice (lowercase). Handy for measurements and logs.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase/uppercase hex string. Returns `None` on malformed
/// input (odd length or non-hex characters).
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_vector() {
        // FIPS 180-4 / NIST test vector.
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = Sha256::digest(&data);
        // Feed in irregular chunk sizes to exercise buffering paths.
        let mut h = Sha256::new();
        let mut offset = 0;
        for (i, size) in [1usize, 63, 64, 65, 127, 129, 1000]
            .iter()
            .cycle()
            .enumerate()
        {
            if offset >= data.len() {
                break;
            }
            let end = (offset + size + i % 3).min(data.len());
            h.update(&data[offset..end]);
            offset = end;
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn digest_parts_matches_concatenation() {
        let a = Sha256::digest_parts(&[b"hello ", b"world"]);
        let b = Sha256::digest(b"hello world");
        assert_eq!(a, b);
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = [0x00, 0x01, 0xab, 0xff];
        let s = hex(&bytes);
        assert_eq!(s, "0001abff");
        assert_eq!(from_hex(&s).unwrap(), bytes.to_vec());
        assert_eq!(from_hex("abz"), None);
        assert_eq!(from_hex("abc"), None);
    }
}
