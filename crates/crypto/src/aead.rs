//! The ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8).
//!
//! Every message that leaves a CYCLOSA enclave — query forwarding requests,
//! relayed responses, attestation transcripts — is protected by this AEAD
//! under keys derived from the attested X25519 handshake.

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::poly1305::{Poly1305, TAG_LEN};

/// Errors returned by the AEAD open operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is shorter than the authentication tag.
    CiphertextTooShort,
    /// The authentication tag did not verify (wrong key, nonce, associated
    /// data, or tampered ciphertext).
    TagMismatch,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::CiphertextTooShort => write!(f, "ciphertext shorter than the tag"),
            AeadError::TagMismatch => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

/// A ChaCha20-Poly1305 AEAD cipher keyed with a 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305 {
    cipher: ChaCha20,
}

impl ChaCha20Poly1305 {
    /// Creates an AEAD instance from a 32-byte key.
    pub fn new(key: &[u8; 32]) -> Self {
        Self {
            cipher: ChaCha20::new(key),
        }
    }

    /// Encrypts `plaintext` and authenticates it together with `aad`.
    /// Returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut ciphertext = plaintext.to_vec();
        self.cipher.apply_keystream(nonce, 1, &mut ciphertext);
        let tag = self.compute_tag(nonce, aad, &ciphertext);
        ciphertext.extend_from_slice(&tag);
        ciphertext
    }

    /// Verifies and decrypts `ciphertext || tag` produced by [`Self::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`AeadError::CiphertextTooShort`] if the input cannot contain
    /// a tag and [`AeadError::TagMismatch`] if authentication fails.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        ciphertext_and_tag: &[u8],
        aad: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if ciphertext_and_tag.len() < TAG_LEN {
            return Err(AeadError::CiphertextTooShort);
        }
        let split = ciphertext_and_tag.len() - TAG_LEN;
        let (ciphertext, tag) = ciphertext_and_tag.split_at(split);
        let expected = self.compute_tag(nonce, aad, ciphertext);
        if !crate::ct_eq(&expected, tag) {
            return Err(AeadError::TagMismatch);
        }
        let mut plaintext = ciphertext.to_vec();
        self.cipher.apply_keystream(nonce, 1, &mut plaintext);
        Ok(plaintext)
    }

    /// Derives the one-time Poly1305 key (block 0 of the keystream) and
    /// computes the RFC 8439 MAC over `aad || pad || ciphertext || pad ||
    /// len(aad) || len(ciphertext)`.
    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let block0 = self.cipher.block(nonce, 0);
        let mut poly_key = [0u8; 32];
        poly_key.copy_from_slice(&block0[..32]);
        let mut mac = Poly1305::new(&poly_key);
        mac.update(aad);
        mac.update(&zero_pad(aad.len()));
        mac.update(ciphertext);
        mac.update(&zero_pad(ciphertext.len()));
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }
}

/// Returns the padding needed to round `len` up to a multiple of 16.
fn zero_pad(len: usize) -> Vec<u8> {
    vec![0u8; (16 - (len % 16)) % 16]
}

/// Builds a 12-byte nonce from a 32-bit channel id and a 64-bit sequence
/// number. Each (key, direction) pair uses its own sequence counter so that
/// nonces never repeat under the same key.
pub fn nonce_from_sequence(channel_id: u32, sequence: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&channel_id.to_le_bytes());
    nonce[4..].copy_from_slice(&sequence.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, hex};

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let key: [u8; 32] =
            from_hex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
                .unwrap()
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = from_hex("070000004041424344454647")
            .unwrap()
            .try_into()
            .unwrap();
        let aad = from_hex("50515253c0c1c2c3c4c5c6c7").unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, plaintext, &aad);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");
        // Round trip.
        assert_eq!(
            aead.open(&nonce, &sealed, &aad).unwrap(),
            plaintext.to_vec()
        );
    }

    #[test]
    fn open_rejects_tampered_ciphertext() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let nonce = [2u8; 12];
        let mut sealed = aead.seal(&nonce, b"real query", b"");
        sealed[0] ^= 0x01;
        assert_eq!(aead.open(&nonce, &sealed, b""), Err(AeadError::TagMismatch));
    }

    #[test]
    fn open_rejects_wrong_aad() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let nonce = [2u8; 12];
        let sealed = aead.seal(&nonce, b"real query", b"relay-3");
        assert_eq!(
            aead.open(&nonce, &sealed, b"relay-4"),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn open_rejects_wrong_nonce_or_key() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        let sealed = aead.seal(&[2u8; 12], b"msg", b"");
        assert!(aead.open(&[3u8; 12], &sealed, b"").is_err());
        let other = ChaCha20Poly1305::new(&[9u8; 32]);
        assert!(other.open(&[2u8; 12], &sealed, b"").is_err());
    }

    #[test]
    fn open_rejects_truncated_input() {
        let aead = ChaCha20Poly1305::new(&[1u8; 32]);
        assert_eq!(
            aead.open(&[0u8; 12], &[0u8; 5], b""),
            Err(AeadError::CiphertextTooShort)
        );
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let aead = ChaCha20Poly1305::new(&[4u8; 32]);
        let nonce = [9u8; 12];
        let sealed = aead.seal(&nonce, b"", b"header");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(
            aead.open(&nonce, &sealed, b"header").unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn nonce_from_sequence_is_unique_per_sequence() {
        let a = nonce_from_sequence(7, 1);
        let b = nonce_from_sequence(7, 2);
        let c = nonce_from_sequence(8, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn aead_error_display() {
        assert!(AeadError::TagMismatch.to_string().contains("tag"));
        assert!(AeadError::CiphertextTooShort
            .to_string()
            .contains("shorter"));
    }
}
