//! An attestation-bound secure channel.
//!
//! CYCLOSA nodes only exchange queries after mutually attesting their
//! enclaves (paper §V-D). The handshake implemented here mirrors that flow:
//!
//! 1. the initiator sends its ephemeral X25519 public key together with its
//!    attestation *evidence* (an opaque byte string produced by
//!    `cyclosa-sgx`, e.g. a quote);
//! 2. the responder replies with its own key and evidence plus a key
//!    confirmation tag computed over the handshake transcript;
//! 3. both sides derive two directional ChaCha20-Poly1305 keys with HKDF,
//!    bound to the transcript hash (and therefore to the exchanged
//!    evidence — swapping the evidence breaks the confirmation tag).
//!
//! Whether the evidence is *acceptable* (correct measurement, genuine
//! platform) is decided by the caller — the SGX simulation layer — before
//! the handshake is completed; this module only guarantees that the keys are
//! cryptographically bound to whatever evidence was exchanged.

use crate::aead::{nonce_from_sequence, AeadError, ChaCha20Poly1305};
use crate::hkdf;
use crate::hmac::HmacSha256;
use crate::sha256::Sha256;
use crate::x25519::{PublicKey, StaticSecret};

/// Errors produced by the handshake or the record layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// The peer's key confirmation tag did not verify.
    KeyConfirmationFailed,
    /// The Diffie–Hellman exchange produced an all-zero shared secret
    /// (low-order public key).
    DegenerateSharedSecret,
    /// A record failed authentication or was replayed / reordered.
    Record(AeadError),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::KeyConfirmationFailed => write!(f, "key confirmation tag mismatch"),
            ChannelError::DegenerateSharedSecret => {
                write!(f, "degenerate (all-zero) Diffie-Hellman shared secret")
            }
            ChannelError::Record(e) => write!(f, "record protection failure: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<AeadError> for ChannelError {
    fn from(e: AeadError) -> Self {
        ChannelError::Record(e)
    }
}

/// First handshake message (initiator → responder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeInit {
    /// The initiator's ephemeral public key.
    pub public_key: PublicKey,
    /// Opaque attestation evidence (e.g. an SGX quote).
    pub evidence: Vec<u8>,
}

/// Second handshake message (responder → initiator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeResponse {
    /// The responder's ephemeral public key.
    pub public_key: PublicKey,
    /// Opaque attestation evidence of the responder.
    pub evidence: Vec<u8>,
    /// HMAC over the transcript proving the responder derived the same keys.
    pub confirmation: [u8; 32],
}

/// Initiator side of the handshake.
#[derive(Debug)]
pub struct HandshakeInitiator {
    secret: StaticSecret,
    evidence: Vec<u8>,
}

impl HandshakeInitiator {
    /// Creates an initiator from an ephemeral secret and its attestation
    /// evidence, returning the first message to send.
    pub fn new(secret: StaticSecret, evidence: Vec<u8>) -> (Self, HandshakeInit) {
        let msg = HandshakeInit {
            public_key: secret.public_key(),
            evidence: evidence.clone(),
        };
        (Self { secret, evidence }, msg)
    }

    /// Processes the responder's reply, verifying key confirmation and the
    /// binding to both parties' evidence.
    ///
    /// # Errors
    ///
    /// Fails when the shared secret is degenerate or the confirmation tag
    /// does not verify.
    pub fn finish(self, response: &HandshakeResponse) -> Result<SecureChannel, ChannelError> {
        let shared = self.secret.diffie_hellman(&response.public_key);
        if shared.is_zero() {
            return Err(ChannelError::DegenerateSharedSecret);
        }
        let transcript = transcript_hash(
            &self.secret.public_key(),
            &response.public_key,
            &self.evidence,
            &response.evidence,
        );
        let keys = DerivedKeys::derive(shared.as_bytes(), &transcript);
        if !HmacSha256::verify(&keys.confirm_key, &transcript, &response.confirmation) {
            return Err(ChannelError::KeyConfirmationFailed);
        }
        Ok(SecureChannel::new(keys, Role::Initiator))
    }
}

/// Responder side of the handshake.
#[derive(Debug)]
pub struct HandshakeResponder;

impl HandshakeResponder {
    /// Processes the initiator's message and produces both the response and
    /// the responder's channel.
    ///
    /// # Errors
    ///
    /// Fails when the shared secret is degenerate.
    pub fn respond(
        secret: StaticSecret,
        evidence: Vec<u8>,
        init: &HandshakeInit,
    ) -> Result<(HandshakeResponse, SecureChannel), ChannelError> {
        let shared = secret.diffie_hellman(&init.public_key);
        if shared.is_zero() {
            return Err(ChannelError::DegenerateSharedSecret);
        }
        let transcript = transcript_hash(
            &init.public_key,
            &secret.public_key(),
            &init.evidence,
            &evidence,
        );
        let keys = DerivedKeys::derive(shared.as_bytes(), &transcript);
        let confirmation = HmacSha256::mac(&keys.confirm_key, &transcript);
        let response = HandshakeResponse {
            public_key: secret.public_key(),
            evidence,
            confirmation,
        };
        Ok((response, SecureChannel::new(keys, Role::Responder)))
    }
}

fn transcript_hash(
    initiator: &PublicKey,
    responder: &PublicKey,
    init_evidence: &[u8],
    resp_evidence: &[u8],
) -> [u8; 32] {
    Sha256::digest_parts(&[
        b"cyclosa-handshake-v1",
        initiator.as_bytes(),
        responder.as_bytes(),
        &(init_evidence.len() as u64).to_le_bytes(),
        init_evidence,
        &(resp_evidence.len() as u64).to_le_bytes(),
        resp_evidence,
    ])
}

#[derive(Debug, Clone)]
struct DerivedKeys {
    initiator_to_responder: [u8; 32],
    responder_to_initiator: [u8; 32],
    confirm_key: [u8; 32],
    channel_id: u32,
}

impl DerivedKeys {
    fn derive(shared: &[u8; 32], transcript: &[u8; 32]) -> Self {
        let prk = hkdf::extract(transcript, shared);
        let i2r = hkdf::expand(&prk, b"cyclosa channel initiator->responder", 32);
        let r2i = hkdf::expand(&prk, b"cyclosa channel responder->initiator", 32);
        let confirm = hkdf::expand(&prk, b"cyclosa key confirmation", 32);
        let id = hkdf::expand(&prk, b"cyclosa channel id", 4);
        Self {
            initiator_to_responder: i2r.try_into().expect("32 bytes"),
            responder_to_initiator: r2i.try_into().expect("32 bytes"),
            confirm_key: confirm.try_into().expect("32 bytes"),
            channel_id: u32::from_le_bytes(id.try_into().expect("4 bytes")),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Initiator,
    Responder,
}

/// An established bidirectional secure channel.
///
/// Records must be delivered in order per direction (the simulation's network
/// layer guarantees this); each direction uses an independent key and a
/// monotonically increasing sequence number as the AEAD nonce.
#[derive(Debug)]
pub struct SecureChannel {
    send: ChaCha20Poly1305,
    recv: ChaCha20Poly1305,
    channel_id: u32,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    fn new(keys: DerivedKeys, role: Role) -> Self {
        let (send_key, recv_key) = match role {
            Role::Initiator => (keys.initiator_to_responder, keys.responder_to_initiator),
            Role::Responder => (keys.responder_to_initiator, keys.initiator_to_responder),
        };
        Self {
            send: ChaCha20Poly1305::new(&send_key),
            recv: ChaCha20Poly1305::new(&recv_key),
            channel_id: keys.channel_id,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// A stable identifier derived from the handshake, equal on both ends.
    pub fn channel_id(&self) -> u32 {
        self.channel_id
    }

    /// Number of records sent so far.
    pub fn records_sent(&self) -> u64 {
        self.send_seq
    }

    /// Encrypts and authenticates `plaintext` with the given associated data.
    pub fn seal(&mut self, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let nonce = nonce_from_sequence(self.channel_id, self.send_seq);
        self.send_seq += 1;
        self.send.seal(&nonce, plaintext, aad)
    }

    /// Verifies and decrypts the next incoming record.
    ///
    /// # Errors
    ///
    /// Returns an error if the record is tampered with, replayed or received
    /// out of order (the receive sequence number would not match).
    pub fn open(&mut self, record: &[u8], aad: &[u8]) -> Result<Vec<u8>, ChannelError> {
        let nonce = nonce_from_sequence(self.channel_id, self.recv_seq);
        let plaintext = self.recv.open(&nonce, record, aad)?;
        self.recv_seq += 1;
        Ok(plaintext)
    }
}

/// Establishes a pair of connected channels in one call — convenient for
/// tests and for the in-process simulation where both ends live in the same
/// address space.
pub fn channel_pair(
    initiator_secret: StaticSecret,
    initiator_evidence: Vec<u8>,
    responder_secret: StaticSecret,
    responder_evidence: Vec<u8>,
) -> Result<(SecureChannel, SecureChannel), ChannelError> {
    let (initiator, init_msg) = HandshakeInitiator::new(initiator_secret, initiator_evidence);
    let (response, responder_channel) =
        HandshakeResponder::respond(responder_secret, responder_evidence, &init_msg)?;
    let initiator_channel = initiator.finish(&response)?;
    Ok((initiator_channel, responder_channel))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secrets() -> (StaticSecret, StaticSecret) {
        (
            StaticSecret::from_bytes([11u8; 32]),
            StaticSecret::from_bytes([22u8; 32]),
        )
    }

    #[test]
    fn handshake_establishes_matching_channels() {
        let (a, b) = secrets();
        let (mut alice, mut bob) =
            channel_pair(a, b"alice quote".to_vec(), b, b"bob quote".to_vec()).unwrap();
        assert_eq!(alice.channel_id(), bob.channel_id());

        let record = alice.seal(b"forward: swiss mountain weather", b"fwd");
        let opened = bob.open(&record, b"fwd").unwrap();
        assert_eq!(opened, b"forward: swiss mountain weather");

        let reply = bob.seal(b"results page 1", b"rsp");
        assert_eq!(alice.open(&reply, b"rsp").unwrap(), b"results page 1");
    }

    #[test]
    fn sequence_numbers_produce_distinct_records() {
        let (a, b) = secrets();
        let (mut alice, mut bob) = channel_pair(a, vec![], b, vec![]).unwrap();
        let r1 = alice.seal(b"same payload", b"");
        let r2 = alice.seal(b"same payload", b"");
        assert_ne!(r1, r2, "nonce reuse would leak equality of payloads");
        assert_eq!(bob.open(&r1, b"").unwrap(), b"same payload");
        assert_eq!(bob.open(&r2, b"").unwrap(), b"same payload");
        assert_eq!(alice.records_sent(), 2);
    }

    #[test]
    fn replayed_record_is_rejected() {
        let (a, b) = secrets();
        let (mut alice, mut bob) = channel_pair(a, vec![], b, vec![]).unwrap();
        let record = alice.seal(b"query", b"");
        assert!(bob.open(&record, b"").is_ok());
        assert!(matches!(
            bob.open(&record, b""),
            Err(ChannelError::Record(_))
        ));
    }

    #[test]
    fn out_of_order_record_is_rejected() {
        let (a, b) = secrets();
        let (mut alice, mut bob) = channel_pair(a, vec![], b, vec![]).unwrap();
        let _r1 = alice.seal(b"first", b"");
        let r2 = alice.seal(b"second", b"");
        assert!(matches!(bob.open(&r2, b""), Err(ChannelError::Record(_))));
    }

    #[test]
    fn evidence_tampering_breaks_confirmation() {
        let (a, b) = secrets();
        let (initiator, init_msg) = HandshakeInitiator::new(a, b"genuine enclave".to_vec());
        let (mut response, _responder_channel) =
            HandshakeResponder::respond(b, b"responder quote".to_vec(), &init_msg).unwrap();
        // A man in the middle substituting the responder's evidence is
        // detected because the confirmation tag covers the transcript.
        response.evidence = b"forged quote".to_vec();
        assert_eq!(
            initiator.finish(&response).unwrap_err(),
            ChannelError::KeyConfirmationFailed
        );
    }

    #[test]
    fn low_order_peer_key_is_rejected() {
        let (_, b) = secrets();
        let init = HandshakeInit {
            public_key: PublicKey([0u8; 32]),
            evidence: vec![],
        };
        assert_eq!(
            HandshakeResponder::respond(b, vec![], &init).unwrap_err(),
            ChannelError::DegenerateSharedSecret
        );
    }

    #[test]
    fn channels_with_different_peers_do_not_interoperate() {
        let (a, b) = secrets();
        let c = StaticSecret::from_bytes([33u8; 32]);
        let (mut alice, _bob) = channel_pair(a, vec![], b, vec![]).unwrap();
        let (_x, mut carol) =
            channel_pair(StaticSecret::from_bytes([44u8; 32]), vec![], c, vec![]).unwrap();
        let record = alice.seal(b"secret", b"");
        assert!(carol.open(&record, b"").is_err());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ChannelError::KeyConfirmationFailed
            .to_string()
            .contains("confirmation"));
        assert!(ChannelError::DegenerateSharedSecret
            .to_string()
            .contains("zero"));
    }
}
