//! The Poly1305 one-time authenticator (RFC 8439).
//!
//! Arithmetic is carried out modulo `2^130 - 5` on three 64-bit limbs with
//! `u128` intermediate products. The implementation favours clarity: every
//! multiplication is a schoolbook product followed by a fold of the bits
//! above position 130 (multiplied by 5, since `2^130 ≡ 5 (mod p)`).

/// Key size in bytes (the `r || s` pair).
pub const KEY_LEN: usize = 32;

/// Tag size in bytes.
pub const TAG_LEN: usize = 16;

/// A Poly1305 authenticator instance.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// Clamped multiplier `r` (two limbs, < 2^124).
    r: [u64; 2],
    /// Final addend `s` (two limbs).
    s: [u64; 2],
    /// Accumulator (three limbs, kept < 2^131 between blocks).
    h: [u64; 3],
    /// Buffered partial block.
    buffer: [u8; 16],
    buffer_len: usize,
}

impl Poly1305 {
    /// Creates an authenticator from a 32-byte one-time key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut r0 = u64::from_le_bytes(key[0..8].try_into().expect("slice of 8"));
        let mut r1 = u64::from_le_bytes(key[8..16].try_into().expect("slice of 8"));
        // Clamping per RFC 8439 §2.5: clear the top four bits of bytes
        // 3, 7, 11, 15 and the bottom two bits of bytes 4, 8, 12.
        r0 &= 0x0FFF_FFFC_0FFF_FFFF;
        r1 &= 0x0FFF_FFFC_0FFF_FFFC;
        let s0 = u64::from_le_bytes(key[16..24].try_into().expect("slice of 8"));
        let s1 = u64::from_le_bytes(key[24..32].try_into().expect("slice of 8"));
        Self {
            r: [r0, r1],
            s: [s0, s1],
            h: [0; 3],
            buffer: [0; 16],
            buffer_len: 0,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (16 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 16 {
                let block = self.buffer;
                self.process_block(&block, false);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 16 {
            let block: [u8; 16] = input[..16].try_into().expect("slice of 16");
            self.process_block(&block, false);
            input = &input[16..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes the computation and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffer_len > 0 {
            // Final partial block: append a single 0x01 byte then zeros.
            let mut block = [0u8; 16];
            block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
            block[self.buffer_len] = 0x01;
            let len = self.buffer_len;
            self.process_partial_block(&block, len);
        }

        // Fully reduce h modulo 2^130 - 5.
        let mut h = fold130(self.h);
        h = fold130(h);
        // Conditionally subtract p: if h + 5 >= 2^130, the reduced value is
        // (h + 5) mod 2^130.
        let (g0, c0) = h[0].overflowing_add(5);
        let (g1, c1) = h[1].overflowing_add(c0 as u64);
        let g2 = h[2].wrapping_add(c1 as u64);
        if g2 >> 2 != 0 {
            h = [g0, g1, g2 & 0x3];
        }

        // tag = (h + s) mod 2^128.
        let (t0, carry) = h[0].overflowing_add(self.s[0]);
        let t1 = h[1].wrapping_add(self.s[1]).wrapping_add(carry as u64);

        let mut tag = [0u8; TAG_LEN];
        tag[..8].copy_from_slice(&t0.to_le_bytes());
        tag[8..].copy_from_slice(&t1.to_le_bytes());
        tag
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Self::new(key);
        p.update(data);
        p.finalize()
    }

    /// Verifies a tag in constant time.
    pub fn verify(key: &[u8; KEY_LEN], data: &[u8], tag: &[u8]) -> bool {
        crate::ct_eq(&Self::mac(key, data), tag)
    }

    fn process_block(&mut self, block: &[u8; 16], _partial: bool) {
        let c0 = u64::from_le_bytes(block[0..8].try_into().expect("slice of 8"));
        let c1 = u64::from_le_bytes(block[8..16].try_into().expect("slice of 8"));
        self.accumulate([c0, c1, 1]);
    }

    fn process_partial_block(&mut self, padded: &[u8; 16], _len: usize) {
        let c0 = u64::from_le_bytes(padded[0..8].try_into().expect("slice of 8"));
        let c1 = u64::from_le_bytes(padded[8..16].try_into().expect("slice of 8"));
        // No 2^128 bit for the padded final block: the 0x01 terminator is
        // already inside the 16 bytes.
        self.accumulate([c0, c1, 0]);
    }

    /// h = ((h + c) * r) mod 2^130-5 (partially reduced to < 2^131).
    fn accumulate(&mut self, c: [u64; 3]) {
        // h += c
        let (h0, carry0) = self.h[0].overflowing_add(c[0]);
        let (h1a, carry1a) = self.h[1].overflowing_add(c[1]);
        let (h1, carry1b) = h1a.overflowing_add(carry0 as u64);
        let h2 = self.h[2]
            .wrapping_add(c[2])
            .wrapping_add((carry1a as u64) + (carry1b as u64));
        let h = [h0, h1, h2];

        // product = h * r (3 limbs x 2 limbs -> 5 limbs)
        let r = self.r;
        let mut p = [0u128; 5];
        for (i, &hi) in h.iter().enumerate() {
            for (j, &rj) in r.iter().enumerate() {
                p[i + j] += (hi as u128) * (rj as u128);
            }
        }
        // Carry propagation into 64-bit limbs.
        let mut limbs = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = p[i] + carry;
            limbs[i] = v as u64;
            carry = v >> 64;
        }
        debug_assert_eq!(carry, 0, "product exceeded 320 bits");

        // Reduce modulo 2^130 - 5: result = low 130 bits + 5 * (bits >= 130).
        let lo = [limbs[0], limbs[1], limbs[2] & 0x3];
        let hi = [
            (limbs[2] >> 2) | (limbs[3] << 62),
            (limbs[3] >> 2) | (limbs[4] << 62),
            limbs[4] >> 2,
        ];
        // h = lo + 5 * hi
        let mut acc = [0u128; 3];
        for i in 0..3 {
            acc[i] = lo[i] as u128 + 5 * (hi[i] as u128);
        }
        let mut out = [0u64; 3];
        let mut carry: u128 = 0;
        for i in 0..3 {
            let v = acc[i] + carry;
            out[i] = v as u64;
            carry = v >> 64;
        }
        debug_assert_eq!(carry, 0);
        self.h = out;
    }
}

/// Folds the bits of `h` above position 130 back into the low 130 bits
/// (multiplied by 5).
fn fold130(h: [u64; 3]) -> [u64; 3] {
    let lo = [h[0], h[1], h[2] & 0x3];
    let hi = h[2] >> 2;
    let v0 = lo[0] as u128 + 5 * hi as u128;
    let c = v0 >> 64;
    let v1 = lo[1] as u128 + c;
    let c = v1 >> 64;
    let v2 = lo[2] as u128 + c;
    [v0 as u64, v1 as u64, v2 as u64]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, hex};

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] =
            from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .unwrap()
                .try_into()
                .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn rfc8439_appendix_a3_vector_2() {
        // RFC 8439 Appendix A.3 test vector #2: r = 0, s = key2 text, any msg
        // gives tag = s... actually with r = 0 the accumulator stays 0 and
        // the tag equals s.
        let mut key = [0u8; 32];
        key[16..32].copy_from_slice(&from_hex("36e5f6b5c5e06070f0efca96227a863e").unwrap());
        let msg = b"Any submission to the IETF intended by the Contributor for publication";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(hex(&tag), "36e5f6b5c5e06070f0efca96227a863e");
    }

    #[test]
    fn empty_message_tag_is_s() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let tag = Poly1305::mac(&key, b"");
        // h stays 0, so the tag is exactly s (bytes 16..32 of the key).
        assert_eq!(&tag[..], &key[16..32]);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [0x5Au8; 32];
        let data: Vec<u8> = (0..200u8).collect();
        let oneshot = Poly1305::mac(&key, &data);
        let mut p = Poly1305::new(&key);
        // Irregular chunking exercises the buffering logic.
        for chunk in data.chunks(7) {
            p.update(chunk);
        }
        assert_eq!(p.finalize(), oneshot);
    }

    #[test]
    fn different_messages_different_tags() {
        let key = [0x33u8; 32];
        assert_ne!(
            Poly1305::mac(&key, b"query A"),
            Poly1305::mac(&key, b"query B")
        );
    }

    #[test]
    fn verify_detects_tampering() {
        let key = [0x11u8; 32];
        let tag = Poly1305::mac(&key, b"message");
        assert!(Poly1305::verify(&key, b"message", &tag));
        assert!(!Poly1305::verify(&key, b"Message", &tag));
        let mut bad_tag = tag;
        bad_tag[0] ^= 1;
        assert!(!Poly1305::verify(&key, b"message", &bad_tag));
    }

    #[test]
    fn exact_multiple_of_block_size() {
        let key = [0x77u8; 32];
        let data = vec![0xEE; 64];
        let a = Poly1305::mac(&key, &data);
        let mut p = Poly1305::new(&key);
        p.update(&data[..16]);
        p.update(&data[16..64]);
        assert_eq!(p.finalize(), a);
    }
}
