//! HKDF-SHA-256 (RFC 5869).
//!
//! Used to derive:
//! * per-direction channel keys from the X25519 shared secret established
//!   after remote attestation,
//! * enclave sealing keys from the (simulated) hardware root key and the
//!   enclave measurement,
//! * the simulated attestation service's report keys.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// Maximum output length allowed by RFC 5869 (255 blocks).
pub const MAX_OUTPUT_LEN: usize = 255 * DIGEST_LEN;

/// HKDF-Extract: derives a pseudo-random key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands a pseudo-random key into `len` bytes of output
/// keying material, bound to `info`.
///
/// # Panics
///
/// Panics if `len > MAX_OUTPUT_LEN`.
pub fn expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= MAX_OUTPUT_LEN, "HKDF output too long ({len} bytes)");
    let mut okm = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter: u8 = 1;
    while okm.len() < len {
        let mut h = HmacSha256::new(prk);
        h.update(&previous);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (len - okm.len()).min(DIGEST_LEN);
        okm.extend_from_slice(&block[..take]);
        previous = block.to_vec();
        counter = counter.wrapping_add(1);
    }
    okm
}

/// Convenience one-shot HKDF (extract then expand).
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

/// Derives a fixed-size 32-byte key, the common case for AEAD keys.
pub fn derive_key(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let okm = derive(salt, ikm, info, 32);
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, hex};

    // RFC 5869 Appendix A test vectors (SHA-256).
    #[test]
    fn rfc5869_case_1() {
        let ikm = vec![0x0b; 22];
        let salt = from_hex("000102030405060708090a0b0c").unwrap();
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_2_long() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let okm = derive(&salt, &ikm, &info, 82);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = vec![0x0b; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_key_is_prefix_of_longer_output() {
        let key = derive_key(b"salt", b"ikm", b"info");
        let longer = derive(b"salt", b"ikm", b"info", 64);
        assert_eq!(&key[..], &longer[..32]);
    }

    #[test]
    fn different_info_different_keys() {
        let a = derive_key(b"salt", b"ikm", b"client->relay");
        let b = derive_key(b"salt", b"ikm", b"relay->client");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn expand_rejects_oversized_output() {
        let prk = extract(b"salt", b"ikm");
        let _ = expand(&prk, b"", MAX_OUTPUT_LEN + 1);
    }
}
