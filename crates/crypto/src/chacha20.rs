//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Provides the keystream for the [`crate::aead`] construction and is also
//! used directly by `cyclosa-baselines::tor` for the per-hop onion layers.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;

/// Nonce size in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 cipher keyed with a 256-bit key.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
}

impl ChaCha20 {
    /// Creates a cipher instance from a 32-byte key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self { key: words }
    }

    /// Produces one 64-byte keystream block for the given nonce and counter.
    pub fn block(&self, nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13] = u32::from_le_bytes([nonce[0], nonce[1], nonce[2], nonce[3]]);
        state[14] = u32::from_le_bytes([nonce[4], nonce[5], nonce[6], nonce[7]]);
        state[15] = u32::from_le_bytes([nonce[8], nonce[9], nonce[10], nonce[11]]);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Encrypts or decrypts `data` in place (XOR with the keystream),
    /// starting at block `initial_counter`.
    pub fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], initial_counter: u32, data: &mut [u8]) {
        for (block_idx, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
            let counter = initial_counter.wrapping_add(block_idx as u32);
            let keystream = self.block(nonce, counter);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
        }
    }

    /// Convenience: returns the encryption of `data` (allocating).
    pub fn encrypt(&self, nonce: &[u8; NONCE_LEN], initial_counter: u32, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(nonce, initial_counter, &mut out);
        out
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, hex};

    fn rfc_key() -> [u8; 32] {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2.
        let key = rfc_key();
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key);
        let block = cipher.block(&nonce, 1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key = rfc_key();
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let cipher = ChaCha20::new(&key);
        let ciphertext = cipher.encrypt(&nonce, 1, plaintext);
        let expected = from_hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        )
        .unwrap();
        assert_eq!(ciphertext, expected);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = [0x42u8; 32];
        let nonce = [7u8; 12];
        let cipher = ChaCha20::new(&key);
        let msg = b"private web search query".to_vec();
        let ct = cipher.encrypt(&nonce, 0, &msg);
        assert_ne!(ct, msg);
        let pt = cipher.encrypt(&nonce, 0, &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn keystream_depends_on_counter_and_nonce() {
        let key = [1u8; 32];
        let cipher = ChaCha20::new(&key);
        let b0 = cipher.block(&[0u8; 12], 0);
        let b1 = cipher.block(&[0u8; 12], 1);
        let mut nonce2 = [0u8; 12];
        nonce2[0] = 1;
        let b2 = cipher.block(&nonce2, 0);
        assert_ne!(b0, b1);
        assert_ne!(b0, b2);
    }

    #[test]
    fn multi_block_messages_are_consistent() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let cipher = ChaCha20::new(&key);
        let msg = vec![0xAB; 300];
        // Encrypting all at once or in two pieces (with correct counters)
        // must give the same result.
        let whole = cipher.encrypt(&nonce, 5, &msg);
        let mut pieces = cipher.encrypt(&nonce, 5, &msg[..128]);
        pieces.extend(cipher.encrypt(&nonce, 7, &msg[128..]));
        assert_eq!(whole, pieces);
    }
}
