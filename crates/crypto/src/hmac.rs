//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the HKDF key-derivation, by the handshake key-confirmation
//! messages, and by the simulated Intel Attestation Service in `cyclosa-sgx`
//! to sign attestation verification reports.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// An incremental HMAC-SHA-256 computation.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key_pad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        // Keys longer than one block are hashed first, shorter keys are
        // zero-padded, per RFC 2104.
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            block_key[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut inner_pad = [0u8; BLOCK_LEN];
        let mut outer_pad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_pad[i] = block_key[i] ^ 0x36;
            outer_pad[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_pad);
        Self {
            inner,
            outer_key_pad: outer_pad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies a tag in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, hex};

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let key = vec![0x0b; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hex(&HmacSha256::mac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = vec![0xaa; 20];
        let data = vec![0xdd; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819").unwrap();
        let data = vec![0xcd; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = vec![0xaa; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = vec![0xaa; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex(&HmacSha256::mac(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"secret key";
        let mut h = HmacSha256::new(key);
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), HmacSha256::mac(key, b"part one part two"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"msg");
        assert!(HmacSha256::verify(b"k", b"msg", &tag));
        assert!(!HmacSha256::verify(b"k", b"msg2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"msg", &tag));
        assert!(!HmacSha256::verify(b"k", b"msg", &tag[..16]));
    }
}
