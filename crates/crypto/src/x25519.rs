//! X25519 Diffie–Hellman over Curve25519 (RFC 7748).
//!
//! Each CYCLOSA enclave generates an ephemeral X25519 key pair during the
//! attestation handshake; the resulting shared secret is fed through HKDF to
//! derive the per-direction AEAD channel keys. Field arithmetic uses five
//! 51-bit limbs with `u128` intermediate products — a clear, well-known
//! representation that trades a little speed for readability.

/// Length of public keys, secret keys and shared secrets in bytes.
pub const KEY_LEN: usize = 32;

const MASK51: u64 = (1u64 << 51) - 1;

/// An element of the field GF(2^255 − 19), as five 51-bit limbs.
#[derive(Debug, Clone, Copy)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |range: std::ops::Range<usize>| -> u64 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[range]);
            u64::from_le_bytes(buf)
        };
        Fe([
            load(0..8) & MASK51,
            (load(6..14) >> 3) & MASK51,
            (load(12..20) >> 6) & MASK51,
            (load(19..27) >> 1) & MASK51,
            (load(24..32) >> 12) & MASK51,
        ])
    }

    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.weak_reduce().0;
        // Compute the carry that results from adding 19: if it propagates
        // past the top limb the value is >= p and must be reduced once more.
        let mut q = (h[0].wrapping_add(19)) >> 51;
        q = (h[1].wrapping_add(q)) >> 51;
        q = (h[2].wrapping_add(q)) >> 51;
        q = (h[3].wrapping_add(q)) >> 51;
        q = (h[4].wrapping_add(q)) >> 51;
        h[0] = h[0].wrapping_add(19 * q);
        let mut carry = h[0] >> 51;
        h[0] &= MASK51;
        for limb in h.iter_mut().skip(1) {
            *limb = limb.wrapping_add(carry);
            carry = *limb >> 51;
            *limb &= MASK51;
        }
        // Pack the 255 bits into 32 bytes.
        let w0 = h[0] | (h[1] << 51);
        let w1 = (h[1] >> 13) | (h[2] << 38);
        let w2 = (h[2] >> 26) | (h[3] << 25);
        let w3 = (h[3] >> 39) | (h[4] << 12);
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&w0.to_le_bytes());
        out[8..16].copy_from_slice(&w1.to_le_bytes());
        out[16..24].copy_from_slice(&w2.to_le_bytes());
        out[24..32].copy_from_slice(&w3.to_le_bytes());
        out
    }

    /// Propagates carries so that all limbs fit in 52 bits.
    fn weak_reduce(self) -> Fe {
        let mut l = self.0;
        let mut carry = l[0] >> 51;
        l[0] &= MASK51;
        for limb in l.iter_mut().skip(1) {
            *limb = limb.wrapping_add(carry);
            carry = *limb >> 51;
            *limb &= MASK51;
        }
        l[0] = l[0].wrapping_add(19 * carry);
        let carry = l[0] >> 51;
        l[0] &= MASK51;
        l[1] = l[1].wrapping_add(carry);
        Fe(l)
    }

    fn add(self, other: Fe) -> Fe {
        let mut l = self.0;
        for (limb, other_limb) in l.iter_mut().zip(other.0) {
            *limb += other_limb;
        }
        Fe(l).weak_reduce()
    }

    fn sub(self, other: Fe) -> Fe {
        // Add 4p (limb-wise constants) before subtracting so the limbs never
        // underflow; valid because inputs are kept below 2^52 per limb.
        const FOUR_P: [u64; 5] = [
            0x1F_FFFF_FFFF_FFB4,
            0x1F_FFFF_FFFF_FFFC,
            0x1F_FFFF_FFFF_FFFC,
            0x1F_FFFF_FFFF_FFFC,
            0x1F_FFFF_FFFF_FFFC,
        ];
        let mut l = [0u64; 5];
        for i in 0..5 {
            l[i] = self.0[i] + FOUR_P[i] - other.0[i];
        }
        Fe(l).weak_reduce()
    }

    fn mul(self, other: Fe) -> Fe {
        let f = self.0;
        let g = other.0;
        let m = |a: u64, b: u64| (a as u128) * (b as u128);
        let r0 =
            m(f[0], g[0]) + 19 * (m(f[1], g[4]) + m(f[2], g[3]) + m(f[3], g[2]) + m(f[4], g[1]));
        let r1 =
            m(f[0], g[1]) + m(f[1], g[0]) + 19 * (m(f[2], g[4]) + m(f[3], g[3]) + m(f[4], g[2]));
        let r2 =
            m(f[0], g[2]) + m(f[1], g[1]) + m(f[2], g[0]) + 19 * (m(f[3], g[4]) + m(f[4], g[3]));
        let r3 = m(f[0], g[3]) + m(f[1], g[2]) + m(f[2], g[1]) + m(f[3], g[0]) + 19 * m(f[4], g[4]);
        let r4 = m(f[0], g[4]) + m(f[1], g[3]) + m(f[2], g[2]) + m(f[3], g[1]) + m(f[4], g[0]);
        carry_reduce([r0, r1, r2, r3, r4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn mul_small(self, scalar: u64) -> Fe {
        let f = self.0;
        let r: [u128; 5] = [
            (f[0] as u128) * scalar as u128,
            (f[1] as u128) * scalar as u128,
            (f[2] as u128) * scalar as u128,
            (f[3] as u128) * scalar as u128,
            (f[4] as u128) * scalar as u128,
        ];
        carry_reduce(r)
    }

    /// Computes the multiplicative inverse via Fermat's little theorem
    /// (exponentiation to p − 2).
    fn invert(self) -> Fe {
        // p - 2 = 2^255 - 21, little-endian bytes: 0xeb, 0xff × 30, 0x7f.
        let mut exponent = [0xffu8; 32];
        exponent[0] = 0xeb;
        exponent[31] = 0x7f;
        let mut result = Fe::ONE;
        // Square-and-multiply, scanning bits from the most significant.
        for bit in (0..255).rev() {
            result = result.square();
            if (exponent[bit / 8] >> (bit % 8)) & 1 == 1 {
                result = result.mul(self);
            }
        }
        result
    }
}

/// Carries a 5-limb `u128` accumulator back into 51-bit limbs (with the
/// 2^255 ≡ 19 fold).
fn carry_reduce(r: [u128; 5]) -> Fe {
    let mut l = [0u64; 5];
    let mut carry: u128 = 0;
    for i in 0..5 {
        let v = r[i] + carry;
        l[i] = (v as u64) & MASK51;
        carry = v >> 51;
    }
    // carry is at most ~2^77/2^51; fold it back through the 19 multiplier.
    let mut acc = (l[0] as u128) + carry * 19;
    l[0] = (acc as u64) & MASK51;
    acc >>= 51;
    let mut i = 1;
    while acc != 0 && i < 5 {
        acc += l[i] as u128;
        l[i] = (acc as u64) & MASK51;
        acc >>= 51;
        i += 1;
    }
    if acc != 0 {
        // Extremely rare final wrap-around.
        l[0] += (acc as u64) * 19;
    }
    Fe(l).weak_reduce()
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
fn clamp_scalar(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// The X25519 function: multiplies the point with u-coordinate `u` by the
/// clamped `scalar` and returns the resulting u-coordinate.
pub fn x25519(scalar: [u8; 32], u: [u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(scalar);
    let mut u_bytes = u;
    u_bytes[31] &= 127; // mask the unused high bit per RFC 7748
    let x1 = Fe::from_bytes(&u_bytes);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u8;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        if swap == 1 {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }
    if swap == 1 {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(z2.invert()).to_bytes()
}

/// The standard base point (u = 9).
pub fn base_point() -> [u8; 32] {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
}

/// A long-term or ephemeral X25519 secret key.
#[derive(Debug, Clone)]
pub struct StaticSecret {
    scalar: [u8; 32],
}

impl StaticSecret {
    /// Builds a secret key from 32 bytes of keying material (clamped
    /// internally, so any byte string is acceptable).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self { scalar: bytes }
    }

    /// Derives the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(x25519(self.scalar, base_point()))
    }

    /// Performs Diffie–Hellman with a peer public key.
    pub fn diffie_hellman(&self, peer: &PublicKey) -> SharedSecret {
        SharedSecret(x25519(self.scalar, peer.0))
    }
}

/// An X25519 public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; 32]);

impl PublicKey {
    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The result of an X25519 Diffie–Hellman exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedSecret(pub [u8; 32]);

impl SharedSecret {
    /// Raw secret bytes (feed these through HKDF before use as keys).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns `true` if the secret is all zeroes, which signals a
    /// contributory-behaviour failure (low-order peer point).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, hex};

    fn arr(hexstr: &str) -> [u8; 32] {
        from_hex(hexstr).unwrap().try_into().unwrap()
    }

    #[test]
    fn field_roundtrip_and_identities() {
        let a = Fe::from_bytes(&[42u8; 32]);
        assert_eq!(Fe::from_bytes(&a.to_bytes()).to_bytes(), a.to_bytes());
        assert_eq!(a.mul(Fe::ONE).to_bytes(), a.weak_reduce().to_bytes());
        assert_eq!(a.sub(a).to_bytes(), Fe::ZERO.to_bytes());
        let inv = a.invert();
        assert_eq!(a.mul(inv).to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn rfc7748_vector_1() {
        let scalar = arr("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = arr("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(scalar, u);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_vector_2() {
        let scalar = arr("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let u = arr("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(scalar, u);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    #[test]
    fn rfc7748_alice_bob_key_agreement() {
        let alice_secret = arr("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_secret = arr("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice = StaticSecret::from_bytes(alice_secret);
        let bob = StaticSecret::from_bytes(bob_secret);
        assert_eq!(
            hex(alice.public_key().as_bytes()),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(bob.public_key().as_bytes()),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = alice.diffie_hellman(&bob.public_key());
        let shared_b = bob.diffie_hellman(&alice.public_key());
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex(shared_a.as_bytes()),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn random_key_agreement_matches() {
        // Any two secrets must agree on the shared secret.
        for seed in 0u8..4 {
            let a = StaticSecret::from_bytes([seed + 1; 32]);
            let b = StaticSecret::from_bytes([seed + 101; 32]);
            let s1 = a.diffie_hellman(&b.public_key());
            let s2 = b.diffie_hellman(&a.public_key());
            assert_eq!(s1, s2);
            assert!(!s1.is_zero());
        }
    }

    #[test]
    fn low_order_point_yields_zero_secret() {
        let a = StaticSecret::from_bytes([7u8; 32]);
        let zero_point = PublicKey([0u8; 32]);
        assert!(a.diffie_hellman(&zero_point).is_zero());
    }

    #[test]
    fn clamping_makes_distinct_scalars_equivalent() {
        // Bits cleared by clamping must not change the result.
        let mut s1 = [0x55u8; 32];
        let mut s2 = s1;
        s1[0] |= 0x07; // low bits are cleared by the clamp
        s2[0] &= !0x07;
        let u = base_point();
        assert_eq!(x25519(s1, u), x25519(s2, u));
    }
}
