//! Text analysis substrate for the CYCLOSA reproduction.
//!
//! The paper's sensitivity analysis (paper §V-A) combines two text-analysis
//! components that this crate provides, together with the shared machinery
//! they need:
//!
//! * [`text`] — tokenization, normalization and stop-word removal for Web
//!   search queries, plus the shared [`text::TermInterner`] issuing dense
//!   [`text::TermId`]s.
//! * [`vector`] — string-keyed sparse term vectors (the readable reference
//!   implementation of the cosine similarity).
//! * [`kernel`] — the interned-term production kernel: sorted
//!   `(TermId, weight)` vectors with merge-join dot/cosine, used by every
//!   hot path.
//! * [`lexicon`] — a WordNet-like lexical database: synonym sets (synsets)
//!   mapped to domain labels, with a generator for synthetic lexica (the
//!   real WordNet + eXtended WordNet Domains cannot be bundled).
//! * [`lda`] — Latent Dirichlet Allocation trained with collapsed Gibbs
//!   sampling, standing in for the Mallet-trained model of §V-F.
//! * [`dictionary`] — per-topic dictionaries of sensitive terms assembled
//!   from the lexicon and/or LDA topics.
//! * [`categorizer`] — the semantic sensitivity detector evaluated in
//!   Table II (WordNet, LDA, and WordNet+LDA variants).
//! * [`profile`] — user interest profiles built from past queries and the
//!   exponential-smoothing similarity score shared by the linkability
//!   assessment (defence) and SimAttack (attack).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categorizer;
pub mod dictionary;
pub mod kernel;
pub mod lda;
pub mod lexicon;
pub mod profile;
pub mod text;
pub mod vector;

pub use categorizer::{CategorizerMethod, QueryCategorizer};
pub use dictionary::TopicDictionary;
pub use kernel::{cosine_similarity_ids, IdVector};
pub use lda::{LdaModel, LdaTrainingConfig};
pub use lexicon::{Lexicon, Synset};
pub use profile::UserProfile;
pub use text::{normalize, tokenize, TermId, TermInterner, Vocabulary};
pub use vector::{cosine_similarity, TermVector};
