//! Per-topic dictionaries of sensitive terms.
//!
//! The paper assembles, for every sensitive topic, a dictionary of terms
//! gathered from (i) the WordNet synsets mapped to the topic's domains and
//! (ii) the thematic vectors of the trained LDA model (paper §V-A1). A query
//! is semantically sensitive for a user when it contains a term of a
//! dictionary whose topic the user marked as sensitive.

use crate::lda::LdaModel;
use crate::lexicon::Lexicon;
use crate::text::{tokenize, Vocabulary};
use std::collections::BTreeSet;

/// A dictionary of terms associated with one sensitive topic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopicDictionary {
    topic: String,
    terms: BTreeSet<String>,
    /// Terms that are *unambiguous* evidence of the topic (present only in
    /// this topic's domain in the lexicon, or highly ranked by LDA).
    strong_terms: BTreeSet<String>,
}

impl TopicDictionary {
    /// Creates an empty dictionary for `topic`.
    pub fn new(topic: &str) -> Self {
        Self {
            topic: topic.to_lowercase(),
            ..Self::default()
        }
    }

    /// The topic this dictionary describes.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Number of terms in the dictionary.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the dictionary has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds a term (marking it strong if `strong` is true).
    pub fn add_term(&mut self, term: &str, strong: bool) {
        let term = term.to_lowercase();
        if strong {
            self.strong_terms.insert(term.clone());
        }
        self.terms.insert(term);
    }

    /// Returns `true` when `term` belongs to the dictionary.
    pub fn contains(&self, term: &str) -> bool {
        self.terms.contains(&term.to_lowercase())
    }

    /// Returns `true` when `term` is unambiguous evidence of the topic.
    pub fn contains_strong(&self, term: &str) -> bool {
        self.strong_terms.contains(&term.to_lowercase())
    }

    /// Returns `true` if any content term of `query` is in the dictionary.
    pub fn matches_query(&self, query: &str) -> bool {
        self.matches_terms(&tokenize(query))
    }

    /// Returns `true` if any content term of `query` is strong evidence.
    pub fn matches_query_strongly(&self, query: &str) -> bool {
        self.matches_terms_strongly(&tokenize(query))
    }

    /// [`TopicDictionary::matches_query`] over already-tokenized content
    /// terms — lets callers tokenize a query once and probe many
    /// dictionaries. Terms are expected lowercase, as produced by
    /// [`tokenize`].
    pub fn matches_terms<S: AsRef<str>>(&self, terms: &[S]) -> bool {
        terms.iter().any(|t| self.terms.contains(t.as_ref()))
    }

    /// [`TopicDictionary::matches_query_strongly`] over already-tokenized
    /// content terms.
    pub fn matches_terms_strongly<S: AsRef<str>>(&self, terms: &[S]) -> bool {
        terms.iter().any(|t| self.strong_terms.contains(t.as_ref()))
    }

    /// Builds a dictionary from the words a lexicon links to `domain`.
    /// Words linked *only* to that domain are marked strong.
    pub fn from_lexicon(topic: &str, lexicon: &Lexicon, domain: &str) -> Self {
        let mut dict = Self::new(topic);
        for word in lexicon.words_in_domain(domain) {
            dict.add_term(word, lexicon.word_exclusively_in_domain(word, domain));
        }
        dict
    }

    /// Builds a dictionary from the top `per_topic` terms of every LDA topic
    /// (the model is assumed to have been trained on a corpus about the
    /// sensitive subject, as in the paper). All LDA terms are strong.
    pub fn from_lda(topic: &str, model: &LdaModel, vocab: &Vocabulary, per_topic: usize) -> Self {
        let mut dict = Self::new(topic);
        for word_id in model.thematic_terms(per_topic) {
            if let Some(term) = vocab.term(word_id) {
                dict.add_term(term, true);
            }
        }
        dict
    }

    /// Merges another dictionary into this one (union of terms; strong terms
    /// stay strong).
    pub fn merge(&mut self, other: &TopicDictionary) {
        for t in &other.terms {
            self.terms.insert(t.clone());
        }
        for t in &other.strong_terms {
            self.strong_terms.insert(t.clone());
        }
    }

    /// Iterates over all terms.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().map(|t| t.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{Corpus, LdaTrainingConfig};
    use crate::lexicon::LexiconBuilder;
    use cyclosa_util::rng::Xoshiro256StarStar;

    #[test]
    fn manual_dictionary_matches_queries() {
        let mut dict = TopicDictionary::new("health");
        dict.add_term("diabetes", true);
        dict.add_term("Clinic", false);
        assert!(dict.matches_query("type 2 diabetes diet"));
        assert!(dict.matches_query("nearest CLINIC opening hours"));
        assert!(!dict.matches_query("cheap flights geneva"));
        assert!(dict.matches_query_strongly("diabetes insulin"));
        assert!(!dict.matches_query_strongly("clinic address"));
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn from_lexicon_marks_exclusive_words_strong() {
        let lexicon = LexiconBuilder::new()
            .domain_terms("sexuality", ["fetish"])
            .ambiguous_terms("sexuality", "general", ["adult"])
            .build();
        let dict = TopicDictionary::from_lexicon("sexuality", &lexicon, "sexuality");
        assert!(dict.contains("fetish") && dict.contains_strong("fetish"));
        assert!(dict.contains("adult") && !dict.contains_strong("adult"));
    }

    #[test]
    fn from_lda_extracts_topic_terms() {
        let mut vocab = Vocabulary::new();
        let corpus = Corpus::from_texts(
            &mut vocab,
            [
                "erotic massage video",
                "fetish lingerie video",
                "erotic fetish story",
                "lingerie massage story",
            ],
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let model = crate::lda::LdaModel::train(
            &corpus,
            LdaTrainingConfig {
                num_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                iterations: 50,
            },
            &mut rng,
        );
        let dict = TopicDictionary::from_lda("sexuality", &model, &vocab, 3);
        assert!(!dict.is_empty());
        assert!(dict.iter().all(|t| vocab.id_of(t).is_some()));
        // Every dictionary term came from the training corpus vocabulary.
        assert!(dict.contains("erotic") || dict.contains("fetish") || dict.contains("lingerie"));
    }

    #[test]
    fn merge_unions_terms() {
        let mut a = TopicDictionary::new("health");
        a.add_term("flu", true);
        let mut b = TopicDictionary::new("health");
        b.add_term("cancer", false);
        b.add_term("flu", false);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.contains_strong("flu"));
        assert!(!a.contains_strong("cancer"));
    }

    #[test]
    fn empty_dictionary_matches_nothing() {
        let dict = TopicDictionary::new("religion");
        assert!(dict.is_empty());
        assert!(!dict.matches_query("church schedule"));
        assert_eq!(dict.topic(), "religion");
    }
}
