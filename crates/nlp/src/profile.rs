//! User interest profiles and the profile–query similarity score.
//!
//! Both sides of the arms race use the same construction:
//!
//! * the **linkability assessment** on the client (paper §V-A2) compares the
//!   current query with the user's *own* past queries to estimate the risk
//!   that the query can be linked back to her;
//! * the **SimAttack adversary** (paper §VII-E) compares an intercepted
//!   query with every known user profile and re-identifies the user whose
//!   profile is most similar (above a confidence threshold).
//!
//! The score is: cosine similarity between the query vector and every past
//! query of the profile, similarities ranked, then aggregated with
//! exponential smoothing so that the closest past queries dominate.
//!
//! Profiles store past queries as interned-id vectors ([`IdVector`]) over a
//! [`TermInterner`]. Profiles that must be compared against the same query
//! (e.g. all profiles held by one SimAttack adversary) share one interner;
//! the query is then tokenized and vectorized **once** ([`UserProfile::prepare`])
//! and the prepared vector is scored against any number of profiles.

use crate::kernel::{cosine_similarity_ids, IdVector};
use crate::text::{TermId, TermInterner};
use cyclosa_util::smoothing::exponential_smoothing;

/// Default smoothing factor used by both the defence and the attack.
///
/// With `alpha = 0.7` a query identical to one past query scores ≈ 0.7, and
/// a query sharing no term with the profile scores 0 — comfortably on either
/// side of SimAttack's 0.5 confidence threshold.
pub const DEFAULT_SMOOTHING_ALPHA: f64 = 0.7;

/// A user profile: the collection of past queries attributed to one user.
#[derive(Debug, Clone)]
pub struct UserProfile {
    interner: TermInterner,
    queries: Vec<IdVector>,
    raw_queries: Vec<String>,
    alpha: f64,
}

impl Default for UserProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl UserProfile {
    /// Creates an empty profile with its own interner and the default
    /// smoothing factor.
    pub fn new() -> Self {
        Self::with_interner(TermInterner::new())
    }

    /// Creates an empty profile over a shared interner (cheap clone) with
    /// the default smoothing factor. All profiles scored against the same
    /// prepared query vector must share one interner.
    pub fn with_interner(interner: TermInterner) -> Self {
        Self {
            interner,
            queries: Vec::new(),
            raw_queries: Vec::new(),
            alpha: DEFAULT_SMOOTHING_ALPHA,
        }
    }

    /// Creates an empty profile with an explicit smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            ..Self::new()
        }
    }

    /// Builds a profile directly from an iterator of past query strings.
    pub fn from_queries<'a>(queries: impl IntoIterator<Item = &'a str>) -> Self {
        let mut profile = Self::new();
        for q in queries {
            profile.record_query(q);
        }
        profile
    }

    /// The interner this profile's vectors are keyed by.
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// The smoothing factor used by [`UserProfile::similarity`].
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one past query into the profile.
    pub fn record_query(&mut self, query: &str) {
        let vector = IdVector::binary_from_query(&self.interner, query);
        if vector.is_empty() {
            return;
        }
        self.queries.push(vector);
        self.raw_queries.push(query.to_owned());
    }

    /// Number of past queries in the profile.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` when no query has been recorded.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The raw past queries (useful for building fake-query tables and
    /// co-occurrence statistics).
    pub fn raw_queries(&self) -> &[String] {
        &self.raw_queries
    }

    /// The past queries as id vectors, in recording order — the postings
    /// source for inverted attack indexes.
    pub fn past_vectors(&self) -> &[IdVector] {
        &self.queries
    }

    /// Tokenizes and vectorizes `query` once against this profile's
    /// interner. The result can be scored against every profile sharing the
    /// interner via [`UserProfile::similarity_vector`].
    pub fn prepare(&self, query: &str) -> IdVector {
        IdVector::binary_from_query(&self.interner, query)
    }

    /// Vectorizes already-tokenized content terms (as produced by
    /// [`crate::text::tokenize`]) against this profile's interner.
    pub fn prepare_terms<S: AsRef<str>>(&self, terms: &[S]) -> IdVector {
        IdVector::binary_from_ids(
            terms
                .iter()
                .map(|t| self.interner.intern(t.as_ref()))
                .collect(),
        )
    }

    /// The similarity in `[0, 1]` between `query` and this profile:
    /// exponential smoothing over the ranked cosine similarities with every
    /// past query. Returns 0 for an empty profile or an empty query.
    pub fn similarity(&self, query: &str) -> f64 {
        self.similarity_vector(&self.prepare(query))
    }

    /// [`UserProfile::similarity`] for an already-prepared query vector
    /// (see [`UserProfile::prepare`]).
    pub fn similarity_vector(&self, vector: &IdVector) -> f64 {
        if vector.is_empty() || self.queries.is_empty() {
            return 0.0;
        }
        let similarities: Vec<f64> = self
            .queries
            .iter()
            .map(|past| cosine_similarity_ids(vector, past))
            .collect();
        exponential_smoothing(&similarities, self.alpha)
    }

    /// The maximum cosine similarity between `query` and any single past
    /// query (a cruder linkability signal, exposed for ablations).
    pub fn max_similarity(&self, query: &str) -> f64 {
        let vector = self.prepare(query);
        self.queries
            .iter()
            .map(|past| cosine_similarity_ids(&vector, past))
            .fold(0.0, f64::max)
    }

    /// Interns `term` into this profile's interner (exposed so callers can
    /// pre-intern shared vocabulary).
    pub fn intern(&self, term: &str) -> TermId {
        self.interner.intern(term)
    }
}

impl<'a> FromIterator<&'a str> for UserProfile {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        Self::from_queries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health_profile() -> UserProfile {
        UserProfile::from_queries([
            "diabetes type 2 symptoms",
            "insulin pump price",
            "low sugar diet plan",
            "glucose monitor reviews",
        ])
    }

    #[test]
    fn exact_repeat_scores_high() {
        let profile = health_profile();
        let score = profile.similarity("diabetes type 2 symptoms");
        assert!(score > 0.6, "score was {score}");
        assert!(
            score > 0.5,
            "an exact repeat must cross the SimAttack threshold"
        );
    }

    #[test]
    fn related_query_scores_moderately() {
        let profile = health_profile();
        let related = profile.similarity("diabetes diet");
        let unrelated = profile.similarity("football world cup schedule");
        assert!(related > unrelated);
        assert!(related > 0.1);
        assert_eq!(unrelated, 0.0);
    }

    #[test]
    fn empty_profile_or_query_scores_zero() {
        let empty = UserProfile::new();
        assert_eq!(empty.similarity("anything"), 0.0);
        assert!(empty.is_empty());
        let profile = health_profile();
        assert_eq!(profile.similarity(""), 0.0);
        assert_eq!(profile.similarity("the of and"), 0.0);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let profile = health_profile();
        for query in [
            "diabetes",
            "insulin glucose sugar diet",
            "completely unrelated query",
            "diabetes type 2 symptoms insulin pump price",
        ] {
            let s = profile.similarity(query);
            assert!(
                (0.0..=1.0).contains(&s),
                "score {s} out of range for {query}"
            );
        }
    }

    #[test]
    fn stop_word_only_queries_are_ignored_when_recording() {
        let mut profile = UserProfile::new();
        profile.record_query("the of and");
        assert!(profile.is_empty());
        profile.record_query("real query terms");
        assert_eq!(profile.len(), 1);
        assert_eq!(profile.raw_queries(), ["real query terms"]);
        assert_eq!(profile.past_vectors().len(), 1);
    }

    #[test]
    fn max_similarity_bounds_smoothed_score() {
        let profile = health_profile();
        let q = "insulin price comparison";
        assert!(profile.similarity(q) <= profile.max_similarity(q) + 1e-12);
    }

    #[test]
    fn with_alpha_validates_range() {
        let p = UserProfile::with_alpha(0.9);
        assert!(p.is_empty());
        assert!((p.alpha() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_is_rejected() {
        let _ = UserProfile::with_alpha(0.0);
    }

    #[test]
    fn from_iterator_collects_queries() {
        let profile: UserProfile = ["a query", "another query"].into_iter().collect();
        assert_eq!(profile.len(), 2);
    }

    #[test]
    fn prepared_vector_scores_like_raw_query() {
        let profile = health_profile();
        let q = "insulin pump battery";
        let prepared = profile.prepare(q);
        assert_eq!(profile.similarity(q), profile.similarity_vector(&prepared));
        let terms: Vec<String> = crate::text::tokenize(q);
        let from_terms = profile.prepare_terms(&terms);
        assert_eq!(prepared, from_terms);
    }

    #[test]
    fn shared_interner_profiles_agree_on_ids() {
        let interner = TermInterner::new();
        let mut a = UserProfile::with_interner(interner.clone());
        let mut b = UserProfile::with_interner(interner.clone());
        a.record_query("diabetes insulin");
        b.record_query("insulin pump");
        assert!(a.interner().ptr_eq(b.interner()));
        // The shared id of "insulin" appears in both profiles' vectors.
        let id = interner.id_of("insulin").unwrap();
        assert_eq!(a.past_vectors()[0].weight(id), 1.0);
        assert_eq!(b.past_vectors()[0].weight(id), 1.0);
    }
}
