//! A WordNet-like lexical database with domain labels.
//!
//! The paper builds per-topic dictionaries from WordNet synsets and the
//! eXtended WordNet Domains mapping (paper §V-A1, §V-F): every synset is
//! mapped to domain labels, and the dictionary of a sensitive topic gathers
//! all words of all synsets mapped to the corresponding domain.
//!
//! The real WordNet database cannot be bundled with this reproduction, so
//! [`Lexicon`] provides the same *structure* (synsets → words, synsets →
//! domains) and a [`LexiconBuilder`] that the workload crate uses to
//! synthesize a lexicon from its topic vocabularies — including the
//! polysemy/ambiguity that makes a purely lexicon-based categorizer
//! imprecise (Table II: WordNet alone reaches precision 0.53).

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

/// Lowercases only when needed: dictionary probes sit on the per-term hot
/// path of the sensitivity analysis, and query terms arrive already
/// lowercased from the tokenizer.
fn lowered(word: &str) -> Cow<'_, str> {
    if word.chars().any(char::is_uppercase) {
        Cow::Owned(word.to_lowercase())
    } else {
        Cow::Borrowed(word)
    }
}

/// A set of synonymous words tagged with the domains they belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synset {
    /// Identifier of the synset within its lexicon.
    pub id: usize,
    /// The words that form the synset.
    pub words: Vec<String>,
    /// Domain labels (e.g. `"sexuality"`, `"medicine"`, `"sport"`).
    pub domains: Vec<String>,
}

/// A lexical database mapping words to synsets and domains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lexicon {
    synsets: Vec<Synset>,
    word_index: BTreeMap<String, Vec<usize>>,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a synset and returns its id.
    pub fn add_synset<W, D>(&mut self, words: W, domains: D) -> usize
    where
        W: IntoIterator<Item = String>,
        D: IntoIterator<Item = String>,
    {
        let id = self.synsets.len();
        let words: Vec<String> = words.into_iter().map(|w| w.to_lowercase()).collect();
        let domains: Vec<String> = domains.into_iter().map(|d| d.to_lowercase()).collect();
        for w in &words {
            self.word_index.entry(w.clone()).or_default().push(id);
        }
        self.synsets.push(Synset { id, words, domains });
        id
    }

    /// Number of synsets.
    pub fn len(&self) -> usize {
        self.synsets.len()
    }

    /// Returns `true` when the lexicon has no synset.
    pub fn is_empty(&self) -> bool {
        self.synsets.is_empty()
    }

    /// The synsets containing `word`.
    pub fn synsets_of(&self, word: &str) -> Vec<&Synset> {
        self.word_index
            .get(lowered(word).as_ref())
            .map(|ids| ids.iter().map(|&i| &self.synsets[i]).collect())
            .unwrap_or_default()
    }

    /// The set of domains `word` is linked to (across all its synsets).
    pub fn domains_of(&self, word: &str) -> BTreeSet<&str> {
        self.synsets_of(word)
            .into_iter()
            .flat_map(|s| s.domains.iter().map(|d| d.as_str()))
            .collect()
    }

    /// Returns `true` when `word` is linked to `domain`.
    pub fn word_in_domain(&self, word: &str, domain: &str) -> bool {
        self.domains_of(word).contains(lowered(domain).as_ref())
    }

    /// Returns `true` when `word`'s only domains are `domain` (the word is
    /// unambiguous evidence for that domain).
    pub fn word_exclusively_in_domain(&self, word: &str, domain: &str) -> bool {
        let domain = lowered(domain);
        let domains = self.domains_of(word);
        !domains.is_empty() && domains.iter().all(|d| *d == domain)
    }

    /// All words linked to `domain` (the raw dictionary of that domain).
    pub fn words_in_domain(&self, domain: &str) -> BTreeSet<&str> {
        let domain = lowered(domain);
        self.synsets
            .iter()
            .filter(|s| s.domains.iter().any(|d| *d == domain))
            .flat_map(|s| s.words.iter().map(|w| w.as_str()))
            .collect()
    }

    /// All domains present in the lexicon.
    pub fn domains(&self) -> BTreeSet<&str> {
        self.synsets
            .iter()
            .flat_map(|s| s.domains.iter().map(|d| d.as_str()))
            .collect()
    }
}

/// A convenience builder for synthesizing lexica from topic vocabularies.
#[derive(Debug, Default)]
pub struct LexiconBuilder {
    lexicon: Lexicon,
}

impl LexiconBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds each term of `terms` as a single-word synset in `domain`.
    pub fn domain_terms<'a>(
        mut self,
        domain: &str,
        terms: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        for t in terms {
            self.lexicon.add_synset([t.to_owned()], [domain.to_owned()]);
        }
        self
    }

    /// Adds terms that belong to `domain` *and* to `other_domain` — the
    /// polysemous words that make a lexicon-only categorizer over-trigger.
    pub fn ambiguous_terms<'a>(
        mut self,
        domain: &str,
        other_domain: &str,
        terms: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        for t in terms {
            self.lexicon
                .add_synset([t.to_owned()], [domain.to_owned(), other_domain.to_owned()]);
        }
        self
    }

    /// Adds a multi-word synonym set in a domain.
    pub fn synset<'a>(mut self, domain: &str, words: impl IntoIterator<Item = &'a str>) -> Self {
        self.lexicon.add_synset(
            words.into_iter().map(|w| w.to_owned()).collect::<Vec<_>>(),
            [domain.to_owned()],
        );
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Lexicon {
        self.lexicon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lexicon {
        LexiconBuilder::new()
            .domain_terms("sexuality", ["erotic", "fetish"])
            .domain_terms("health", ["diabetes", "chemotherapy"])
            .ambiguous_terms("sexuality", "general", ["model", "adult"])
            .synset("health", ["flu", "influenza"])
            .build()
    }

    #[test]
    fn words_map_to_domains() {
        let lex = sample();
        assert!(lex.word_in_domain("erotic", "sexuality"));
        assert!(lex.word_in_domain("influenza", "health"));
        assert!(!lex.word_in_domain("erotic", "health"));
        assert!(lex.domains_of("unknownword").is_empty());
    }

    #[test]
    fn ambiguous_words_belong_to_both_domains() {
        let lex = sample();
        let domains = lex.domains_of("adult");
        assert!(domains.contains("sexuality"));
        assert!(domains.contains("general"));
        assert!(!lex.word_exclusively_in_domain("adult", "sexuality"));
        assert!(lex.word_exclusively_in_domain("fetish", "sexuality"));
    }

    #[test]
    fn synonyms_share_a_synset() {
        let lex = sample();
        let flu_synsets = lex.synsets_of("flu");
        assert_eq!(flu_synsets.len(), 1);
        assert!(flu_synsets[0].words.contains(&"influenza".to_owned()));
    }

    #[test]
    fn domain_dictionary_collects_all_words() {
        let lex = sample();
        let words = lex.words_in_domain("sexuality");
        assert!(words.contains("erotic"));
        assert!(words.contains("adult"));
        assert!(!words.contains("diabetes"));
        assert_eq!(lex.domains().len(), 3);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let lex = sample();
        assert!(lex.word_in_domain("Erotic", "SEXUALITY"));
    }

    #[test]
    fn empty_lexicon_behaves() {
        let lex = Lexicon::new();
        assert!(lex.is_empty());
        assert!(lex.synsets_of("x").is_empty());
        assert!(lex.words_in_domain("health").is_empty());
    }
}
