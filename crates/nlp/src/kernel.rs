//! The interned-term vector kernel: sorted `(TermId, weight)` slices with
//! merge-join similarity kernels.
//!
//! This is the production counterpart of [`crate::vector::TermVector`]: the
//! same binary/weighted sparse vectors, but keyed by dense [`TermId`]s from
//! a shared [`TermInterner`] instead of owned strings. A vector is a single
//! id-sorted allocation with a cached Euclidean norm, so
//!
//! * building one from a query is a single tokenizer pass plus a sort of a
//!   handful of `u32`s (queries average 2–4 terms),
//! * dot products are branch-light merge joins over two sorted slices, and
//! * cosine needs no recomputation of norms.
//!
//! For **binary** vectors (the paper's query representation) every kernel
//! here is bit-identical to the string-keyed reference implementation:
//! dot products are exact small-integer sums and norms are `sqrt(n)`, so
//! neither the summation order nor the key type can change a single bit.
//! The randomized equivalence suite in `tests/kernel_equivalence.rs` pins
//! this.

use crate::text::{TermId, TermInterner};

/// A sparse term-weight vector keyed by interned term id.
///
/// Invariant: `terms` is sorted by id with no duplicates and no zero
/// weights; `norm` caches the Euclidean norm of the weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdVector {
    terms: Vec<(TermId, f64)>,
    norm: f64,
}

impl IdVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a *binary* vector from a raw query string: each distinct
    /// content term gets weight 1. Unknown terms are interned (they still
    /// contribute to the norm, exactly as in the string-keyed reference).
    pub fn binary_from_query(interner: &TermInterner, query: &str) -> Self {
        Self::binary_from_ids(interner.tokenize_ids(query))
    }

    /// Builds a binary vector from term ids (duplicates collapsed).
    pub fn binary_from_ids(mut ids: Vec<TermId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        // Summing n ones is exact, so sqrt(n as f64) matches the reference
        // norm bit for bit.
        let norm = (ids.len() as f64).sqrt();
        Self {
            terms: ids.into_iter().map(|id| (id, 1.0)).collect(),
            norm,
        }
    }

    /// Builds a term-frequency vector from a raw text.
    pub fn tf_from_text(interner: &TermInterner, text: &str) -> Self {
        let mut ids = interner.tokenize_ids(text);
        ids.sort_unstable();
        let mut terms: Vec<(TermId, f64)> = Vec::new();
        for id in ids {
            match terms.last_mut() {
                Some((last, w)) if *last == id => *w += 1.0,
                _ => terms.push((id, 1.0)),
            }
        }
        Self::from_sorted(terms)
    }

    /// Builds a vector from `(id, weight)` pairs (weights of duplicate ids
    /// accumulate; zero weights are dropped).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TermId, f64)>) -> Self {
        let mut terms: Vec<(TermId, f64)> = pairs.into_iter().collect();
        terms.sort_unstable_by_key(|(id, _)| *id);
        let mut merged: Vec<(TermId, f64)> = Vec::with_capacity(terms.len());
        for (id, w) in terms {
            match merged.last_mut() {
                Some((last, acc)) if *last == id => *acc += w,
                _ => merged.push((id, w)),
            }
        }
        merged.retain(|(_, w)| *w != 0.0);
        Self::from_sorted(merged)
    }

    fn from_sorted(terms: Vec<(TermId, f64)>) -> Self {
        let norm = terms.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        Self { terms, norm }
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the vector has no non-zero term.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The weight of a term (0 if absent). Binary search over the sorted
    /// slice.
    pub fn weight(&self, id: TermId) -> f64 {
        match self.terms.binary_search_by_key(&id, |(t, _)| *t) {
            Ok(i) => self.terms[i].1,
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(id, weight)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// The sorted `(id, weight)` slice itself.
    pub fn as_pairs(&self) -> &[(TermId, f64)] {
        &self.terms
    }

    /// The cached Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Dot product with another vector: a merge join over the two sorted
    /// slices, `O(len_a + len_b)`.
    pub fn dot(&self, other: &IdVector) -> f64 {
        let (a, b) = (&self.terms[..], &other.terms[..]);
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            let (ia, wa) = a[i];
            let (ib, wb) = b[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// Cosine similarity between two id vectors, in `[0, 1]` for non-negative
/// weights. Returns 0 when either vector is empty.
///
/// Both vectors must come from (clones of) the same [`TermInterner`];
/// comparing vectors from unrelated interners silently compares unrelated
/// terms.
pub fn cosine_similarity_ids(a: &IdVector, b: &IdVector) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        return 0.0;
    }
    (a.dot(b) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interner() -> TermInterner {
        TermInterner::new()
    }

    #[test]
    fn binary_vector_deduplicates_terms() {
        let it = interner();
        let v = IdVector::binary_from_query(&it, "cheap cheap flights flights geneva");
        assert_eq!(v.len(), 3);
        assert_eq!(v.weight(it.id_of("cheap").unwrap()), 1.0);
        assert_eq!(v.weight(TermId(999)), 0.0);
    }

    #[test]
    fn tf_vector_counts_terms() {
        let it = interner();
        let v = IdVector::tf_from_text(&it, "flu flu symptoms");
        assert_eq!(v.weight(it.id_of("flu").unwrap()), 2.0);
        assert_eq!(v.weight(it.id_of("symptoms").unwrap()), 1.0);
    }

    #[test]
    fn identical_queries_have_similarity_one() {
        let it = interner();
        let a = IdVector::binary_from_query(&it, "private web search");
        let b = IdVector::binary_from_query(&it, "private web search");
        assert!((cosine_similarity_ids(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_queries_have_similarity_zero() {
        let it = interner();
        let a = IdVector::binary_from_query(&it, "swiss chocolate brands");
        let b = IdVector::binary_from_query(&it, "enclave attestation protocol");
        assert_eq!(cosine_similarity_ids(&a, &b), 0.0);
    }

    #[test]
    fn empty_vector_similarity_is_zero() {
        let it = interner();
        let a = IdVector::binary_from_query(&it, "");
        let b = IdVector::binary_from_query(&it, "anything");
        assert_eq!(cosine_similarity_ids(&a, &b), 0.0);
        assert!(a.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn partial_overlap_matches_closed_form() {
        let it = interner();
        let a = IdVector::binary_from_query(&it, "diabetes diet plan");
        let b = IdVector::binary_from_query(&it, "diabetes medication");
        let sim = cosine_similarity_ids(&a, &b);
        assert!((sim - 1.0 / (3.0_f64.sqrt() * 2.0_f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn dot_product_is_symmetric_merge_join() {
        let it = interner();
        let a = IdVector::tf_from_text(&it, "one two two three three three");
        let b = IdVector::tf_from_text(&it, "two three four");
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-12);
        assert!((a.dot(&b) - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_accumulates_and_drops_zeros() {
        let v = IdVector::from_pairs([
            (TermId(3), 1.0),
            (TermId(1), 2.0),
            (TermId(3), 2.0),
            (TermId(7), 4.0),
            (TermId(7), -4.0),
        ]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.weight(TermId(3)), 3.0);
        assert_eq!(v.weight(TermId(7)), 0.0);
        let ids: Vec<TermId> = v.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![TermId(1), TermId(3)]);
    }

    #[test]
    fn norm_is_cached_and_correct() {
        let it = interner();
        let v = IdVector::binary_from_query(&it, "one two three four");
        assert!((v.norm() - 2.0).abs() < 1e-12);
        assert_eq!(IdVector::new().norm(), 0.0);
    }

    #[test]
    fn similarity_is_clamped() {
        let v = IdVector::from_pairs([(TermId(0), 1.0 + 1e-15)]);
        assert!(cosine_similarity_ids(&v, &v) <= 1.0);
    }
}
