//! Sparse string-keyed term vectors and cosine similarity — the
//! **reference implementation**.
//!
//! The paper represents a query "in a binary vector where each element of
//! the vector is a term in the query" and compares it to past queries with
//! cosine similarity (paper §V-A2, §VII-E). [`TermVector`] supports both the
//! binary representation used for queries and weighted (e.g. TF or TF-IDF)
//! vectors used by the search-engine ranking.
//!
//! Hot paths (profiles, SimAttack, the search-engine index) use the
//! interned-id kernel in [`crate::kernel`] instead; this string-keyed
//! implementation is retained as the readable specification the kernel is
//! tested against (`tests/kernel_equivalence.rs` asserts bit-identical
//! binary cosines and 1e-12-close weighted cosines).

use crate::text::tokenize;
use std::collections::BTreeMap;

/// A sparse term-weight vector keyed by term string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TermVector {
    weights: BTreeMap<String, f64>,
}

impl TermVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a *binary* vector from a raw query string: each distinct
    /// content term gets weight 1.
    pub fn binary_from_query(query: &str) -> Self {
        let mut v = Self::new();
        for term in tokenize(query) {
            v.weights.insert(term, 1.0);
        }
        v
    }

    /// Builds a term-frequency vector from a raw text.
    pub fn tf_from_text(text: &str) -> Self {
        let mut v = Self::new();
        for term in tokenize(text) {
            *v.weights.entry(term).or_insert(0.0) += 1.0;
        }
        v
    }

    /// Sets the weight of a term explicitly.
    pub fn set(&mut self, term: &str, weight: f64) {
        if weight == 0.0 {
            self.weights.remove(term);
        } else {
            self.weights.insert(term.to_owned(), weight);
        }
    }

    /// Adds `delta` to the weight of a term.
    pub fn add(&mut self, term: &str, delta: f64) {
        let entry = self.weights.entry(term.to_owned()).or_insert(0.0);
        *entry += delta;
        if *entry == 0.0 {
            self.weights.remove(term);
        }
    }

    /// Returns the weight of a term (0 if absent).
    pub fn weight(&self, term: &str) -> f64 {
        self.weights.get(term).copied().unwrap_or(0.0)
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the vector has no non-zero term.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates over `(term, weight)` pairs in lexicographic term order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.weights.iter().map(|(t, w)| (t.as_str(), *w))
    }

    /// Terms with non-zero weight.
    pub fn terms(&self) -> impl Iterator<Item = &str> {
        self.weights.keys().map(|t| t.as_str())
    }

    /// The Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another vector.
    pub fn dot(&self, other: &TermVector) -> f64 {
        // Iterate over the smaller map for efficiency.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.weights.iter().map(|(t, w)| w * large.weight(t)).sum()
    }
}

impl FromIterator<(String, f64)> for TermVector {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        let mut v = TermVector::new();
        for (t, w) in iter {
            v.add(&t, w);
        }
        v
    }
}

/// Cosine similarity between two term vectors, in `[0, 1]` for non-negative
/// weights. Returns 0 when either vector is empty.
///
/// # Example
///
/// ```
/// use cyclosa_nlp::vector::{cosine_similarity, TermVector};
/// let a = TermVector::binary_from_query("flu symptoms fever");
/// let b = TermVector::binary_from_query("flu fever remedies");
/// let sim = cosine_similarity(&a, &b);
/// assert!(sim > 0.5 && sim < 1.0);
/// ```
pub fn cosine_similarity(a: &TermVector, b: &TermVector) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        return 0.0;
    }
    (a.dot(b) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_vector_deduplicates_terms() {
        let v = TermVector::binary_from_query("cheap cheap flights flights geneva");
        assert_eq!(v.len(), 3);
        assert_eq!(v.weight("cheap"), 1.0);
    }

    #[test]
    fn tf_vector_counts_terms() {
        let v = TermVector::tf_from_text("flu flu symptoms");
        assert_eq!(v.weight("flu"), 2.0);
        assert_eq!(v.weight("symptoms"), 1.0);
    }

    #[test]
    fn identical_queries_have_similarity_one() {
        let a = TermVector::binary_from_query("private web search");
        let b = TermVector::binary_from_query("private web search");
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_queries_have_similarity_zero() {
        let a = TermVector::binary_from_query("swiss chocolate brands");
        let b = TermVector::binary_from_query("enclave attestation protocol");
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn empty_vector_similarity_is_zero() {
        let a = TermVector::binary_from_query("");
        let b = TermVector::binary_from_query("anything");
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn partial_overlap_is_between_zero_and_one() {
        let a = TermVector::binary_from_query("diabetes diet plan");
        let b = TermVector::binary_from_query("diabetes medication");
        let sim = cosine_similarity(&a, &b);
        assert!(sim > 0.0 && sim < 1.0);
        // 1 common term / sqrt(3)*sqrt(2)
        assert!((sim - 1.0 / (3.0_f64.sqrt() * 2.0_f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn set_add_and_zero_removal() {
        let mut v = TermVector::new();
        v.set("a", 2.0);
        v.add("a", -2.0);
        assert!(v.is_empty());
        v.add("b", 1.5);
        v.set("b", 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn dot_product_is_symmetric() {
        let a = TermVector::tf_from_text("one two two three three three");
        let b = TermVector::tf_from_text("two three four");
        assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-12);
        assert!((a.dot(&b) - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_accumulates() {
        let v: TermVector = vec![("x".to_owned(), 1.0), ("x".to_owned(), 2.0)]
            .into_iter()
            .collect();
        assert_eq!(v.weight("x"), 3.0);
    }

    #[test]
    fn similarity_is_clamped() {
        let mut a = TermVector::new();
        a.set("t", 1.0 + 1e-15);
        let sim = cosine_similarity(&a, &a);
        assert!(sim <= 1.0);
    }
}
