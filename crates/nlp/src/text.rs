//! Query tokenization, normalization, interning and vocabulary management.
//!
//! Web search queries are short (2–4 terms on average in the AOL log), so
//! the pipeline is deliberately simple: lowercase, strip punctuation, split
//! on whitespace, drop stop words and single characters. Both the defence
//! (sensitivity analysis) and the attack (SimAttack) use exactly this
//! pipeline so neither gains an artificial advantage from preprocessing.
//!
//! Two layers are exposed:
//!
//! * the **string layer** — [`tokenize`], [`normalize`], [`Vocabulary`] —
//!   convenient, allocation-per-token, used at build time and in tests;
//! * the **interned layer** — [`TermId`], [`TermInterner`],
//!   [`for_each_term`] — the production path: a single pass over the query
//!   with one reusable buffer, dense `u32` term ids, and a cheaply-clonable
//!   shared interner so every subsystem (profiles, SimAttack, the
//!   search-engine index) agrees on the id of a term.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// English stop words that carry no topical signal in queries.
///
/// The slice is **sorted** (ASCII order) so membership is a binary search;
/// `stop_words_are_sorted` in the tests pins the order.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "how",
    "i", "in", "is", "it", "my", "of", "on", "or", "que", "that", "the", "this", "to", "was",
    "what", "when", "where", "which", "who", "will", "with", "you", "your",
];

/// Returns `true` if `term` is a stop word.
pub fn is_stop_word(term: &str) -> bool {
    STOP_WORDS.binary_search(&term).is_ok()
}

/// Lowercases a query and removes every character that is not alphanumeric
/// or whitespace.
pub fn normalize(query: &str) -> String {
    query
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c.is_whitespace() {
                c.to_ascii_lowercase()
            } else {
                ' '
            }
        })
        .collect()
}

/// Calls `f` with every content term of `query`, in query order, reusing a
/// single buffer — no intermediate normalized string and no per-token
/// allocation.
///
/// A content term is a maximal run of alphanumeric characters, ASCII
/// lowercased, that is longer than one byte and not a stop word — exactly
/// the terms [`tokenize`] returns.
pub fn for_each_term(query: &str, mut f: impl FnMut(&str)) {
    let mut token = String::with_capacity(16);
    for c in query.chars() {
        if c.is_alphanumeric() {
            token.push(c.to_ascii_lowercase());
        } else if !token.is_empty() {
            if token.len() > 1 && !is_stop_word(&token) {
                f(&token);
            }
            token.clear();
        }
    }
    if token.len() > 1 && !is_stop_word(&token) {
        f(&token);
    }
}

/// Returns `true` when `query` contains at least one content term — the
/// allocation-free equivalent of `!tokenize(query).is_empty()`.
pub fn has_content_terms(query: &str) -> bool {
    let mut token = String::with_capacity(16);
    for c in query.chars() {
        if c.is_alphanumeric() {
            token.push(c.to_ascii_lowercase());
        } else if !token.is_empty() {
            if token.len() > 1 && !is_stop_word(&token) {
                return true;
            }
            token.clear();
        }
    }
    token.len() > 1 && !is_stop_word(&token)
}

/// Tokenizes a query into lowercase content terms (stop words and single
/// characters removed).
///
/// # Example
///
/// ```
/// use cyclosa_nlp::text::tokenize;
/// assert_eq!(tokenize("What is the Weather in Lyon?"), vec!["weather", "lyon"]);
/// ```
pub fn tokenize(query: &str) -> Vec<String> {
    let mut terms = Vec::new();
    for_each_term(query, |t| terms.push(t.to_owned()));
    terms
}

/// A dense identifier for an interned term.
///
/// Ids are issued in first-intern order by a [`TermInterner`] (or a
/// [`Vocabulary`]) and are stable for the lifetime of the interner: a term
/// keeps the id of its first appearance forever, and ids are never reused.
/// Structures indexed by `TermId` (postings lists, LDA count tables) can
/// therefore use plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional mapping between terms and dense integer ids.
///
/// Shared by the LDA trainer, the search-engine index and the workload
/// generator so that term ids are consistent across crates. For the
/// cross-thread, cheaply-clonable variant used by the hot paths, see
/// [`TermInterner`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vocabulary from an iterator of terms (duplicates collapsed).
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vocab = Self::new();
        for t in terms {
            vocab.intern(t.as_ref());
        }
        vocab
    }

    /// Returns the id of `term`, inserting it if absent.
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len();
        self.terms.push(term.to_owned());
        self.index.insert(term.to_owned(), id);
        id
    }

    /// Returns the id of `term` if it is known.
    pub fn id_of(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Returns the term with the given id, if any.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.terms.get(id).map(|s| s.as_str())
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when no term has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (i, t.as_str()))
    }

    /// Converts a query into known term ids (unknown terms are dropped).
    pub fn encode(&self, query: &str) -> Vec<usize> {
        let mut ids = Vec::new();
        for_each_term(query, |t| {
            if let Some(id) = self.id_of(t) {
                ids.push(id);
            }
        });
        ids
    }

    /// Converts a query into term ids, interning unknown terms.
    pub fn encode_interning(&mut self, query: &str) -> Vec<usize> {
        let mut ids = Vec::new();
        for_each_term(query, |t| ids.push(self.intern(t)));
        ids
    }
}

/// A shared, cheaply-clonable term interner issuing dense [`TermId`]s.
///
/// Cloning shares the underlying storage (an `Arc`), so one interner can be
/// handed to every user profile, the SimAttack adversary and the
/// search-engine index, and they all agree on term ids. Interning through a
/// shared reference is possible (`&self` — the storage is behind an
/// `RwLock`), which lets read-mostly hot paths such as
/// `SimAttack::reidentify` intern previously unseen query terms without
/// exclusive access to the adversary.
///
/// Id stability rules: ids are issued densely in first-intern order, never
/// reused and never remapped. Vectors built against one interner must only
/// be compared against vectors built with a clone of the *same* interner —
/// see [`TermInterner::ptr_eq`].
#[derive(Debug, Clone, Default)]
pub struct TermInterner {
    inner: Arc<RwLock<Vocabulary>>,
}

impl TermInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` when `self` and `other` share the same storage (and
    /// therefore issue consistent ids).
    pub fn ptr_eq(&self, other: &TermInterner) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Returns the id of `term`, interning it if absent.
    pub fn intern(&self, term: &str) -> TermId {
        if let Some(id) = self.inner.read().expect("interner poisoned").id_of(term) {
            return TermId(id as u32);
        }
        TermId(self.inner.write().expect("interner poisoned").intern(term) as u32)
    }

    /// Returns the id of `term` if it is known.
    pub fn id_of(&self, term: &str) -> Option<TermId> {
        self.inner
            .read()
            .expect("interner poisoned")
            .id_of(term)
            .map(|id| TermId(id as u32))
    }

    /// Returns the term with the given id, if any (clones the string — the
    /// storage lives behind a lock).
    pub fn resolve(&self, id: TermId) -> Option<String> {
        self.inner
            .read()
            .expect("interner poisoned")
            .term(id.index())
            .map(str::to_owned)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").len()
    }

    /// Returns `true` when no term has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tokenizes `query` into term ids in query order (duplicates kept),
    /// interning unknown terms. Single pass, one reusable token buffer.
    pub fn tokenize_ids(&self, query: &str) -> Vec<TermId> {
        let mut ids = Vec::new();
        for_each_term(query, |t| ids.push(self.intern(t)));
        ids
    }

    /// Tokenizes `query` into known term ids in query order (duplicates
    /// kept, unknown terms dropped) without interning.
    pub fn lookup_ids(&self, query: &str) -> Vec<TermId> {
        let mut ids = Vec::new();
        for_each_term(query, |t| {
            if let Some(id) = self.id_of(t) {
                ids.push(id);
            }
        });
        ids
    }

    /// A point-in-time copy of the underlying vocabulary (for build-time
    /// consumers such as `TopicDictionary::from_lda`).
    pub fn snapshot(&self) -> Vocabulary {
        self.inner.read().expect("interner poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_punctuation_and_case() {
        assert_eq!(normalize("Hello, World!"), "hello  world ");
        assert_eq!(normalize("C++ & rust?"), "c     rust ");
    }

    #[test]
    fn tokenize_drops_stop_words_and_short_tokens() {
        assert_eq!(
            tokenize("how to treat a migraine at home"),
            vec!["treat", "migraine", "home"]
        );
        assert_eq!(tokenize("the of and"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(
            tokenize("windows 10 activation key"),
            vec!["windows", "10", "activation", "key"]
        );
    }

    #[test]
    fn tokenize_matches_reference_pipeline() {
        // The single-pass tokenizer must agree with the historical
        // normalize-then-split implementation on every input.
        let reference = |query: &str| -> Vec<String> {
            normalize(query)
                .split_whitespace()
                .filter(|t| t.len() > 1 && !is_stop_word(t))
                .map(|t| t.to_owned())
                .collect::<Vec<_>>()
        };
        for query in [
            "What is the Weather in Lyon?",
            "C++ & rust?",
            "  leading and trailing  ",
            "punctuation...everywhere!!!(here)",
            "Ünïcödé wörds stay",
            "a b c de fg h",
            "the of and",
            "",
            "singleletters a b c",
            "hyphen-ated words_and_underscores",
            "émigré café 42 x1",
        ] {
            assert_eq!(tokenize(query), reference(query), "query: {query:?}");
        }
    }

    #[test]
    fn stop_words_are_sorted() {
        // Binary-search membership relies on this exact order; a new stop
        // word must be inserted at its sorted position.
        for pair in STOP_WORDS.windows(2) {
            assert!(
                pair[0] < pair[1],
                "STOP_WORDS out of order: {:?} >= {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn has_content_terms_matches_tokenize() {
        for query in [
            "real query",
            "the of and",
            "",
            "a b",
            "ab",
            "  !!!  ",
            "the weather",
            "x",
        ] {
            assert_eq!(
                has_content_terms(query),
                !tokenize(query).is_empty(),
                "query: {query:?}"
            );
        }
    }

    #[test]
    fn vocabulary_interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("health");
        let b = v.intern("politics");
        let a2 = v.intern("health");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.term(a), Some("health"));
        assert_eq!(v.len(), 2);
        assert_eq!(v.id_of("missing"), None);
    }

    #[test]
    fn encode_known_and_unknown_terms() {
        let mut v = Vocabulary::from_terms(["flu", "symptoms"]);
        assert_eq!(v.encode("flu symptoms treatment"), vec![0, 1]);
        assert_eq!(v.encode_interning("flu symptoms treatment"), vec![0, 1, 2]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn vocabulary_iteration_preserves_order() {
        let v = Vocabulary::from_terms(["zebra", "apple", "zebra", "mango"]);
        let collected: Vec<_> = v.iter().map(|(_, t)| t.to_owned()).collect();
        assert_eq!(collected, vec!["zebra", "apple", "mango"]);
    }

    #[test]
    fn stop_word_lookup() {
        assert!(is_stop_word("the"));
        assert!(!is_stop_word("enclave"));
        // Every declared stop word must be found by the binary search.
        for w in STOP_WORDS {
            assert!(is_stop_word(w), "stop word {w:?} not found");
        }
    }

    #[test]
    fn interner_is_shared_through_clones() {
        let a = TermInterner::new();
        let b = a.clone();
        let id = a.intern("shared");
        assert_eq!(b.id_of("shared"), Some(id));
        assert_eq!(b.intern("shared"), id);
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&TermInterner::new()));
        let c = TermInterner::new();
        c.intern("elsewhere");
        assert_eq!(c.id_of("shared"), None);
    }

    #[test]
    fn interner_ids_are_dense_and_stable() {
        let interner = TermInterner::new();
        let ids = interner.tokenize_ids("flu symptoms flu treatment");
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[0], ids[2], "repeat terms share an id");
        assert_eq!(ids[0], TermId(0));
        assert_eq!(ids[1], TermId(1));
        assert_eq!(ids[3], TermId(2));
        assert_eq!(interner.resolve(TermId(1)).as_deref(), Some("symptoms"));
        assert_eq!(interner.resolve(TermId(99)), None);
        assert_eq!(interner.len(), 3);
        assert!(!interner.is_empty());
    }

    #[test]
    fn lookup_ids_drops_unknown_terms() {
        let interner = TermInterner::new();
        interner.intern("flu");
        assert_eq!(interner.lookup_ids("flu symptoms"), vec![TermId(0)]);
        assert_eq!(interner.len(), 1, "lookup must not intern");
    }

    #[test]
    fn snapshot_copies_vocabulary() {
        let interner = TermInterner::new();
        interner.intern("flu");
        let snap = interner.snapshot();
        interner.intern("later");
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.term(0), Some("flu"));
    }
}
