//! Query tokenization, normalization and vocabulary management.
//!
//! Web search queries are short (2–4 terms on average in the AOL log), so
//! the pipeline is deliberately simple: lowercase, strip punctuation, split
//! on whitespace, drop stop words and single characters. Both the defence
//! (sensitivity analysis) and the attack (SimAttack) use exactly this
//! pipeline so neither gains an artificial advantage from preprocessing.

use std::collections::HashMap;

/// English stop words that carry no topical signal in queries.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "how",
    "i", "in", "is", "it", "my", "of", "on", "or", "que", "that", "the", "this", "to", "was",
    "what", "when", "where", "which", "who", "will", "with", "you", "your",
];

/// Returns `true` if `term` is a stop word.
pub fn is_stop_word(term: &str) -> bool {
    STOP_WORDS.contains(&term)
}

/// Lowercases a query and removes every character that is not alphanumeric
/// or whitespace.
pub fn normalize(query: &str) -> String {
    query
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c.is_whitespace() {
                c.to_ascii_lowercase()
            } else {
                ' '
            }
        })
        .collect()
}

/// Tokenizes a query into lowercase content terms (stop words and single
/// characters removed).
///
/// # Example
///
/// ```
/// use cyclosa_nlp::text::tokenize;
/// assert_eq!(tokenize("What is the Weather in Lyon?"), vec!["weather", "lyon"]);
/// ```
pub fn tokenize(query: &str) -> Vec<String> {
    normalize(query)
        .split_whitespace()
        .filter(|t| t.len() > 1 && !is_stop_word(t))
        .map(|t| t.to_owned())
        .collect()
}

/// A bidirectional mapping between terms and dense integer ids.
///
/// Shared by the LDA trainer, the search-engine index and the workload
/// generator so that term ids are consistent across crates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, usize>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vocabulary from an iterator of terms (duplicates collapsed).
    pub fn from_terms<I, S>(terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vocab = Self::new();
        for t in terms {
            vocab.intern(t.as_ref());
        }
        vocab
    }

    /// Returns the id of `term`, inserting it if absent.
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len();
        self.terms.push(term.to_owned());
        self.index.insert(term.to_owned(), id);
        id
    }

    /// Returns the id of `term` if it is known.
    pub fn id_of(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// Returns the term with the given id, if any.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.terms.get(id).map(|s| s.as_str())
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when no term has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (i, t.as_str()))
    }

    /// Converts a query into known term ids (unknown terms are dropped).
    pub fn encode(&self, query: &str) -> Vec<usize> {
        tokenize(query)
            .iter()
            .filter_map(|t| self.id_of(t))
            .collect()
    }

    /// Converts a query into term ids, interning unknown terms.
    pub fn encode_interning(&mut self, query: &str) -> Vec<usize> {
        tokenize(query).iter().map(|t| self.intern(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_punctuation_and_case() {
        assert_eq!(normalize("Hello, World!"), "hello  world ");
        assert_eq!(normalize("C++ & rust?"), "c     rust ");
    }

    #[test]
    fn tokenize_drops_stop_words_and_short_tokens() {
        assert_eq!(
            tokenize("how to treat a migraine at home"),
            vec!["treat", "migraine", "home"]
        );
        assert_eq!(tokenize("the of and"), Vec::<String>::new());
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(
            tokenize("windows 10 activation key"),
            vec!["windows", "10", "activation", "key"]
        );
    }

    #[test]
    fn vocabulary_interning_is_stable() {
        let mut v = Vocabulary::new();
        let a = v.intern("health");
        let b = v.intern("politics");
        let a2 = v.intern("health");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.term(a), Some("health"));
        assert_eq!(v.len(), 2);
        assert_eq!(v.id_of("missing"), None);
    }

    #[test]
    fn encode_known_and_unknown_terms() {
        let mut v = Vocabulary::from_terms(["flu", "symptoms"]);
        assert_eq!(v.encode("flu symptoms treatment"), vec![0, 1]);
        assert_eq!(v.encode_interning("flu symptoms treatment"), vec![0, 1, 2]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn vocabulary_iteration_preserves_order() {
        let v = Vocabulary::from_terms(["zebra", "apple", "zebra", "mango"]);
        let collected: Vec<_> = v.iter().map(|(_, t)| t.to_owned()).collect();
        assert_eq!(collected, vec!["zebra", "apple", "mango"]);
    }

    #[test]
    fn stop_word_lookup() {
        assert!(is_stop_word("the"));
        assert!(!is_stop_word("enclave"));
    }
}
