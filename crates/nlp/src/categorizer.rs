//! The semantic sensitivity categorizer evaluated in Table II.
//!
//! Paper §V-A1/§V-F: a query is semantically sensitive when it contains a
//! term linked to a sensitive WordNet domain or present in an LDA topic of
//! the sensitive-subject model. Table II compares three variants —
//! WordNet-only, LDA-only, and the combination — on precision and recall.
//!
//! The combination implemented here requires either an LDA hit or an
//! *unambiguous* lexicon hit (a term whose only domains are the sensitive
//! one). This reproduces the paper's observation that the combined detector
//! keeps the recall of the individual detectors while avoiding most of the
//! false positives of the lexicon-only detector.

use crate::dictionary::TopicDictionary;
use crate::text::tokenize;

/// Which evidence source(s) the categorizer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategorizerMethod {
    /// Only the WordNet-like lexicon dictionaries.
    WordNet,
    /// Only the LDA topic dictionaries.
    Lda,
    /// LDA hits, plus unambiguous lexicon hits.
    Combined,
}

impl std::fmt::Display for CategorizerMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CategorizerMethod::WordNet => write!(f, "WordNet"),
            CategorizerMethod::Lda => write!(f, "LDA"),
            CategorizerMethod::Combined => write!(f, "WordNet + LDA"),
        }
    }
}

/// A per-user semantic sensitivity detector.
///
/// Each user selects the topics she considers sensitive (paper: health,
/// politics, sex, religion by default); the categorizer holds one lexicon
/// dictionary and one LDA dictionary per selected topic.
#[derive(Debug, Clone, Default)]
pub struct QueryCategorizer {
    lexicon_dictionaries: Vec<TopicDictionary>,
    lda_dictionaries: Vec<TopicDictionary>,
}

impl QueryCategorizer {
    /// Creates a categorizer with no dictionaries (never flags anything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a lexicon-derived dictionary for a sensitive topic.
    pub fn add_lexicon_dictionary(&mut self, dict: TopicDictionary) {
        self.lexicon_dictionaries.push(dict);
    }

    /// Registers an LDA-derived dictionary for a sensitive topic.
    pub fn add_lda_dictionary(&mut self, dict: TopicDictionary) {
        self.lda_dictionaries.push(dict);
    }

    /// The sensitive topics known to this categorizer.
    pub fn topics(&self) -> Vec<&str> {
        let mut topics: Vec<&str> = self
            .lexicon_dictionaries
            .iter()
            .chain(self.lda_dictionaries.iter())
            .map(|d| d.topic())
            .collect();
        topics.sort_unstable();
        topics.dedup();
        topics
    }

    /// Returns `true` when `query` is semantically sensitive according to
    /// the given `method`.
    pub fn is_sensitive(&self, query: &str, method: CategorizerMethod) -> bool {
        self.is_sensitive_terms(&tokenize(query), method)
    }

    /// [`QueryCategorizer::is_sensitive`] over already-tokenized content
    /// terms — the query is tokenized once and probed against every
    /// dictionary.
    pub fn is_sensitive_terms<S: AsRef<str>>(
        &self,
        terms: &[S],
        method: CategorizerMethod,
    ) -> bool {
        if terms.is_empty() {
            return false;
        }
        match method {
            CategorizerMethod::WordNet => self
                .lexicon_dictionaries
                .iter()
                .any(|d| d.matches_terms(terms)),
            CategorizerMethod::Lda => self.lda_dictionaries.iter().any(|d| d.matches_terms(terms)),
            CategorizerMethod::Combined => {
                self.lda_dictionaries.iter().any(|d| d.matches_terms(terms))
                    || self
                        .lexicon_dictionaries
                        .iter()
                        .any(|d| d.matches_terms_strongly(terms))
            }
        }
    }

    /// The sensitive topics matched by `query` under `method`.
    pub fn matching_topics(&self, query: &str, method: CategorizerMethod) -> Vec<&str> {
        self.matching_topics_terms(&tokenize(query), method)
    }

    /// [`QueryCategorizer::matching_topics`] over already-tokenized content
    /// terms.
    pub fn matching_topics_terms<S: AsRef<str>>(
        &self,
        terms: &[S],
        method: CategorizerMethod,
    ) -> Vec<&str> {
        let mut topics = Vec::new();
        let lexicon_matches = |d: &TopicDictionary| match method {
            CategorizerMethod::WordNet => d.matches_terms(terms),
            CategorizerMethod::Combined => d.matches_terms_strongly(terms),
            CategorizerMethod::Lda => false,
        };
        if method != CategorizerMethod::Lda {
            for d in &self.lexicon_dictionaries {
                if lexicon_matches(d) {
                    topics.push(d.topic());
                }
            }
        }
        if method != CategorizerMethod::WordNet {
            for d in &self.lda_dictionaries {
                if d.matches_terms(terms) {
                    topics.push(d.topic());
                }
            }
        }
        topics.sort_unstable();
        topics.dedup();
        topics
    }
}

/// Precision/recall of a detector against ground-truth labels.
///
/// `detections` and `ground_truth` are parallel slices: `detections[i]` says
/// whether query `i` was flagged, `ground_truth[i]` whether it is actually
/// sensitive. This mirrors the metric definitions of paper §VII-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionQuality {
    /// |detected ∩ sensitive| / |detected|; 1.0 when nothing was detected.
    pub precision: f64,
    /// |detected ∩ sensitive| / |sensitive|; 1.0 when nothing is sensitive.
    pub recall: f64,
    /// Number of evaluated queries.
    pub total: usize,
}

impl DetectionQuality {
    /// Computes precision and recall from parallel detection / label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn evaluate(detections: &[bool], ground_truth: &[bool]) -> Self {
        assert_eq!(
            detections.len(),
            ground_truth.len(),
            "parallel slices required"
        );
        let detected = detections.iter().filter(|&&d| d).count();
        let sensitive = ground_truth.iter().filter(|&&s| s).count();
        let true_positives = detections
            .iter()
            .zip(ground_truth.iter())
            .filter(|(&d, &s)| d && s)
            .count();
        let precision = if detected == 0 {
            1.0
        } else {
            true_positives as f64 / detected as f64
        };
        let recall = if sensitive == 0 {
            1.0
        } else {
            true_positives as f64 / sensitive as f64
        };
        Self {
            precision,
            recall,
            total: detections.len(),
        }
    }

    /// The harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn categorizer() -> QueryCategorizer {
        let mut lexicon_dict = TopicDictionary::new("sexuality");
        lexicon_dict.add_term("erotic", true);
        lexicon_dict.add_term("adult", false); // ambiguous: also "adult education"
        let mut lda_dict = TopicDictionary::new("sexuality");
        lda_dict.add_term("lingerie", true);
        let mut c = QueryCategorizer::new();
        c.add_lexicon_dictionary(lexicon_dict);
        c.add_lda_dictionary(lda_dict);
        c
    }

    #[test]
    fn wordnet_method_uses_all_lexicon_terms() {
        let c = categorizer();
        assert!(c.is_sensitive("adult education courses", CategorizerMethod::WordNet));
        assert!(c.is_sensitive("erotic stories", CategorizerMethod::WordNet));
        assert!(!c.is_sensitive("lingerie sale", CategorizerMethod::WordNet));
    }

    #[test]
    fn lda_method_uses_only_lda_terms() {
        let c = categorizer();
        assert!(c.is_sensitive("lingerie sale", CategorizerMethod::Lda));
        assert!(!c.is_sensitive("erotic stories", CategorizerMethod::Lda));
    }

    #[test]
    fn combined_method_drops_ambiguous_lexicon_hits() {
        let c = categorizer();
        // Ambiguous lexicon term alone: not flagged by the combined method.
        assert!(!c.is_sensitive("adult education courses", CategorizerMethod::Combined));
        // Strong lexicon term or LDA term: flagged.
        assert!(c.is_sensitive("erotic stories", CategorizerMethod::Combined));
        assert!(c.is_sensitive("lingerie sale", CategorizerMethod::Combined));
    }

    #[test]
    fn matching_topics_lists_topic_once() {
        let c = categorizer();
        assert_eq!(
            c.matching_topics("erotic lingerie", CategorizerMethod::Combined),
            vec!["sexuality"]
        );
        assert!(c
            .matching_topics("weather geneva", CategorizerMethod::Combined)
            .is_empty());
        assert_eq!(c.topics(), vec!["sexuality"]);
    }

    #[test]
    fn empty_query_is_never_sensitive() {
        let c = categorizer();
        assert!(!c.is_sensitive("", CategorizerMethod::WordNet));
        assert!(!c.is_sensitive("the of", CategorizerMethod::Combined));
    }

    #[test]
    fn detection_quality_known_values() {
        let detections = [true, true, false, true, false];
        let truth = [true, false, false, true, true];
        let q = DetectionQuality::evaluate(&detections, &truth);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.total, 5);
    }

    #[test]
    fn detection_quality_degenerate_cases() {
        let q = DetectionQuality::evaluate(&[false, false], &[false, false]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        let q = DetectionQuality::evaluate(&[], &[]);
        assert_eq!(q.total, 0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn detection_quality_rejects_mismatched_lengths() {
        let _ = DetectionQuality::evaluate(&[true], &[true, false]);
    }

    #[test]
    fn method_display_names() {
        assert_eq!(CategorizerMethod::WordNet.to_string(), "WordNet");
        assert_eq!(CategorizerMethod::Combined.to_string(), "WordNet + LDA");
    }
}
