//! Latent Dirichlet Allocation trained with collapsed Gibbs sampling.
//!
//! The paper trains an LDA model (with the Mallet toolkit, 200 topics) on a
//! corpus of sensitive-topic documents and declares a query semantically
//! sensitive when one of its terms appears in at least one LDA topic
//! (paper §V-A1, §V-F). This module provides an equivalent trainer and the
//! topic-term extraction the categorizer needs.

use crate::text::{TermInterner, Vocabulary};
use cyclosa_util::rng::Rng;
use std::collections::BTreeSet;

/// A training corpus: documents as sequences of term ids over a shared
/// vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// Size of the vocabulary the term ids refer to.
    pub vocab_size: usize,
    /// Documents as term-id sequences.
    pub documents: Vec<Vec<usize>>,
}

impl Corpus {
    /// Builds a corpus from raw texts, interning terms into `vocab`.
    pub fn from_texts<'a>(
        vocab: &mut Vocabulary,
        texts: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let documents: Vec<Vec<usize>> = texts
            .into_iter()
            .map(|t| vocab.encode_interning(t))
            .filter(|d| !d.is_empty())
            .collect();
        Self {
            vocab_size: vocab.len(),
            documents,
        }
    }

    /// Builds a corpus over a shared [`TermInterner`], so the trained model
    /// speaks the same term ids as the profiles and indexes built on that
    /// interner. `vocab_size` reflects the interner size after interning the
    /// texts — term ids issued earlier by other subsystems stay valid.
    pub fn from_texts_shared<'a>(
        interner: &TermInterner,
        texts: impl IntoIterator<Item = &'a str>,
    ) -> Self {
        let documents: Vec<Vec<usize>> = texts
            .into_iter()
            .map(|t| {
                interner
                    .tokenize_ids(t)
                    .into_iter()
                    .map(|id| id.index())
                    .collect::<Vec<usize>>()
            })
            .filter(|d: &Vec<usize>| !d.is_empty())
            .collect();
        Self {
            vocab_size: interner.len(),
            documents,
        }
    }

    /// Total number of tokens in the corpus.
    pub fn token_count(&self) -> usize {
        self.documents.iter().map(|d| d.len()).sum()
    }
}

/// Hyper-parameters for LDA training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdaTrainingConfig {
    /// Number of latent topics.
    pub num_topics: usize,
    /// Dirichlet prior on document-topic distributions.
    pub alpha: f64,
    /// Dirichlet prior on topic-word distributions.
    pub beta: f64,
    /// Number of Gibbs sweeps over the corpus.
    pub iterations: usize,
}

impl Default for LdaTrainingConfig {
    fn default() -> Self {
        Self {
            num_topics: 20,
            alpha: 0.1,
            beta: 0.01,
            iterations: 100,
        }
    }
}

/// A trained LDA model (topic-word statistics).
#[derive(Debug, Clone)]
pub struct LdaModel {
    num_topics: usize,
    vocab_size: usize,
    alpha: f64,
    beta: f64,
    /// `topic_word[k][w]` = number of tokens of word `w` assigned to topic `k`.
    topic_word: Vec<Vec<u32>>,
    /// `topic_total[k]` = number of tokens assigned to topic `k`.
    topic_total: Vec<u64>,
}

impl LdaModel {
    /// Trains a model on `corpus` with collapsed Gibbs sampling.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty or the configuration asks for zero
    /// topics or zero iterations.
    pub fn train<R: Rng + ?Sized>(corpus: &Corpus, config: LdaTrainingConfig, rng: &mut R) -> Self {
        assert!(config.num_topics > 0, "LDA needs at least one topic");
        assert!(config.iterations > 0, "LDA needs at least one iteration");
        assert!(
            corpus.vocab_size > 0 && !corpus.documents.is_empty(),
            "LDA needs a non-empty corpus"
        );
        let k = config.num_topics;
        let v = corpus.vocab_size;

        let mut topic_word = vec![vec![0u32; v]; k];
        let mut topic_total = vec![0u64; k];
        let mut doc_topic: Vec<Vec<u32>> = corpus.documents.iter().map(|_| vec![0u32; k]).collect();
        // Random initial assignment of every token to a topic.
        let mut assignments: Vec<Vec<usize>> = corpus
            .documents
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_index(k)).collect())
            .collect();
        for (d, doc) in corpus.documents.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let z = assignments[d][i];
                topic_word[z][w] += 1;
                topic_total[z] += 1;
                doc_topic[d][z] += 1;
            }
        }

        let mut weights = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, doc) in corpus.documents.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = assignments[d][i];
                    // Remove the token from the counts.
                    topic_word[old][w] -= 1;
                    topic_total[old] -= 1;
                    doc_topic[d][old] -= 1;
                    // Sample a new topic from the collapsed conditional.
                    for (t, weight) in weights.iter_mut().enumerate() {
                        let word_factor = (topic_word[t][w] as f64 + config.beta)
                            / (topic_total[t] as f64 + v as f64 * config.beta);
                        let doc_factor = doc_topic[d][t] as f64 + config.alpha;
                        *weight = word_factor * doc_factor;
                    }
                    let new = rng.sample_weighted(&weights).unwrap_or(old);
                    assignments[d][i] = new;
                    topic_word[new][w] += 1;
                    topic_total[new] += 1;
                    doc_topic[d][new] += 1;
                }
            }
        }

        Self {
            num_topics: k,
            vocab_size: v,
            alpha: config.alpha,
            beta: config.beta,
            topic_word,
            topic_total,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Vocabulary size the model was trained over.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Probability of `word` under `topic` (smoothed).
    pub fn topic_term_probability(&self, topic: usize, word: usize) -> f64 {
        if topic >= self.num_topics || word >= self.vocab_size {
            return 0.0;
        }
        (self.topic_word[topic][word] as f64 + self.beta)
            / (self.topic_total[topic] as f64 + self.vocab_size as f64 * self.beta)
    }

    /// The `n` highest-probability words of `topic`, as `(word id, prob)`.
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<(usize, f64)> {
        if topic >= self.num_topics {
            return Vec::new();
        }
        let mut scored: Vec<(usize, f64)> = (0..self.vocab_size)
            .map(|w| (w, self.topic_term_probability(topic, w)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
        scored.truncate(n);
        scored
    }

    /// The union of the top `per_topic` word ids of every topic — the "LDA
    /// dictionary" used by the sensitivity categorizer.
    pub fn thematic_terms(&self, per_topic: usize) -> BTreeSet<usize> {
        (0..self.num_topics)
            .flat_map(|t| self.top_words(t, per_topic).into_iter().map(|(w, _)| w))
            .collect()
    }

    /// Infers the topic distribution of a new token sequence by a short
    /// Gibbs chain holding the topic-word statistics fixed.
    pub fn infer<R: Rng + ?Sized>(
        &self,
        tokens: &[usize],
        iterations: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let k = self.num_topics;
        if tokens.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut doc_topic = vec![0u32; k];
        let mut assignments: Vec<usize> = tokens.iter().map(|_| rng.gen_index(k)).collect();
        for &z in &assignments {
            doc_topic[z] += 1;
        }
        let mut weights = vec![0.0f64; k];
        for _ in 0..iterations.max(1) {
            for (i, &w) in tokens.iter().enumerate() {
                let old = assignments[i];
                doc_topic[old] -= 1;
                for (t, weight) in weights.iter_mut().enumerate() {
                    *weight =
                        self.topic_term_probability(t, w) * (doc_topic[t] as f64 + self.alpha);
                }
                let new = rng.sample_weighted(&weights).unwrap_or(old);
                assignments[i] = new;
                doc_topic[new] += 1;
            }
        }
        let total: f64 = tokens.len() as f64 + k as f64 * self.alpha;
        (0..k)
            .map(|t| (doc_topic[t] as f64 + self.alpha) / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    /// Builds a corpus with two clearly separable topics.
    fn separable_corpus(vocab: &mut Vocabulary) -> Corpus {
        // Documents within a topic share vocabulary (doctor/treatment for
        // health, trip/booking for travel) so that a two-topic model aligns
        // with the intended split.
        let health = [
            "flu symptoms fever cough doctor treatment",
            "diabetes insulin glucose doctor treatment symptoms",
            "cancer chemotherapy tumor doctor treatment",
            "flu fever cough medicine doctor symptoms",
            "insulin glucose monitor diabetes treatment doctor",
            "tumor biopsy cancer scan treatment symptoms",
            "fever cough flu vaccine doctor treatment",
            "glucose diabetes diet insulin doctor symptoms",
        ];
        let travel = [
            "cheap flights geneva paris trip booking",
            "hotel booking barcelona beach trip flights",
            "train tickets zurich milan trip booking",
            "flights hotel package holiday trip booking",
            "beach resort barcelona booking trip hotel",
            "zurich geneva train schedule trip flights",
            "paris hotel cheap booking trip flights",
            "holiday package flights resort trip hotel",
        ];
        Corpus::from_texts(vocab, health.iter().chain(travel.iter()).copied())
    }

    fn train_two_topics() -> (Vocabulary, LdaModel) {
        let mut vocab = Vocabulary::new();
        let corpus = separable_corpus(&mut vocab);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let config = LdaTrainingConfig {
            num_topics: 2,
            alpha: 0.1,
            beta: 0.01,
            iterations: 300,
        };
        let model = LdaModel::train(&corpus, config, &mut rng);
        (vocab, model)
    }

    #[test]
    fn topics_separate_health_from_travel() {
        let (vocab, model) = train_two_topics();
        // The topic that puts the most mass on "flu" should also rank other
        // health terms highly and travel terms low.
        let flu = vocab.id_of("flu").unwrap();
        let flights = vocab.id_of("flights").unwrap();
        let health_topic = (0..2)
            .max_by(|&a, &b| {
                model
                    .topic_term_probability(a, flu)
                    .partial_cmp(&model.topic_term_probability(b, flu))
                    .unwrap()
            })
            .unwrap();
        let travel_topic = 1 - health_topic;
        assert!(
            model.topic_term_probability(health_topic, flu)
                > model.topic_term_probability(travel_topic, flu)
        );
        assert!(
            model.topic_term_probability(travel_topic, flights)
                > model.topic_term_probability(health_topic, flights)
        );
        // Top words of the health topic should contain several health terms.
        let top: Vec<&str> = model
            .top_words(health_topic, 6)
            .into_iter()
            .filter_map(|(w, _)| vocab.term(w))
            .collect();
        let health_hits = top
            .iter()
            .filter(|t| {
                [
                    "flu",
                    "fever",
                    "cough",
                    "diabetes",
                    "insulin",
                    "glucose",
                    "cancer",
                    "tumor",
                    "chemotherapy",
                    "medicine",
                    "vaccine",
                    "biopsy",
                    "scan",
                    "monitor",
                    "diet",
                    "doctor",
                    "treatment",
                    "symptoms",
                ]
                .contains(t)
            })
            .count();
        assert!(health_hits >= 4, "top words were {top:?}");
    }

    #[test]
    fn inference_assigns_dominant_topic() {
        let (mut vocab, model) = train_two_topics();
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let health_query = vocab.encode_interning("flu fever insulin");
        let dist = model.infer(&health_query, 50, &mut rng);
        assert_eq!(dist.len(), 2);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(dist.iter().cloned().fold(f64::MIN, f64::max) > 0.6);
    }

    #[test]
    fn thematic_terms_cover_both_topics() {
        let (vocab, model) = train_two_topics();
        let terms = model.thematic_terms(5);
        assert!(terms.len() >= 5);
        assert!(terms.iter().all(|&w| w < vocab.len()));
    }

    #[test]
    fn probabilities_are_normalized_per_topic() {
        let (_, model) = train_two_topics();
        for t in 0..model.num_topics() {
            let total: f64 = (0..model.vocab_size())
                .map(|w| model.topic_term_probability(t, w))
                .sum();
            assert!((total - 1.0).abs() < 1e-6, "topic {t} sums to {total}");
        }
        assert_eq!(model.topic_term_probability(99, 0), 0.0);
        assert_eq!(model.topic_term_probability(0, 1_000_000), 0.0);
    }

    #[test]
    fn empty_query_inference_is_uniform() {
        let (_, model) = train_two_topics();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let dist = model.infer(&[], 10, &mut rng);
        assert!(dist.iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "non-empty corpus")]
    fn empty_corpus_is_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let corpus = Corpus {
            vocab_size: 0,
            documents: vec![],
        };
        let _ = LdaModel::train(&corpus, LdaTrainingConfig::default(), &mut rng);
    }

    #[test]
    fn corpus_from_texts_counts_tokens() {
        let mut vocab = Vocabulary::new();
        let corpus = Corpus::from_texts(&mut vocab, ["alpha beta", "beta gamma delta", ""]);
        assert_eq!(corpus.documents.len(), 2);
        assert_eq!(corpus.token_count(), 5);
        assert_eq!(corpus.vocab_size, 4);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let mut vocab_a = Vocabulary::new();
        let corpus_a = separable_corpus(&mut vocab_a);
        let mut rng_a = Xoshiro256StarStar::seed_from_u64(99);
        let model_a = LdaModel::train(
            &corpus_a,
            LdaTrainingConfig {
                num_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                iterations: 50,
            },
            &mut rng_a,
        );

        let mut vocab_b = Vocabulary::new();
        let corpus_b = separable_corpus(&mut vocab_b);
        let mut rng_b = Xoshiro256StarStar::seed_from_u64(99);
        let model_b = LdaModel::train(
            &corpus_b,
            LdaTrainingConfig {
                num_topics: 2,
                alpha: 0.5,
                beta: 0.01,
                iterations: 50,
            },
            &mut rng_b,
        );

        for t in 0..2 {
            for w in 0..corpus_a.vocab_size {
                assert_eq!(
                    model_a.topic_term_probability(t, w),
                    model_b.topic_term_probability(t, w)
                );
            }
        }
    }
}
