//! Simulation of the crowd-sourcing sensitivity-annotation campaign.
//!
//! Paper §VII-C: the first 10,000 testing queries were shown to 5
//! CrowdFlower workers each, who labelled them as related to sensitive
//! topics or not; 15.74 % of the queries were labelled sensitive. The
//! campaign's labels are the ground truth of the Table II precision/recall
//! evaluation.
//!
//! The simulation starts from the generator's ground-truth labels and passes
//! them through imperfect annotators (each flips the label with a small
//! error probability); the published label is the majority vote, which is
//! almost always correct but occasionally disagrees with the generator —
//! matching the noise a real campaign exhibits.

use crate::generator::LabeledQuery;
use cyclosa_util::rng::Rng;

/// Configuration of the simulated campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationConfig {
    /// Number of workers that label each query.
    pub workers_per_query: usize,
    /// Probability that a single worker mislabels a query.
    pub worker_error_rate: f64,
    /// Maximum number of queries to annotate (the paper annotates the first
    /// 10,000 testing queries).
    pub max_queries: usize,
}

impl Default for AnnotationConfig {
    fn default() -> Self {
        Self {
            workers_per_query: 5,
            worker_error_rate: 0.08,
            max_queries: 10_000,
        }
    }
}

/// One annotated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedQuery {
    /// The query and its generator ground truth.
    pub labeled: LabeledQuery,
    /// Votes of the individual workers.
    pub votes: Vec<bool>,
    /// Majority-vote label published by the campaign.
    pub annotated_sensitive: bool,
}

/// The result of running the campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationCampaign {
    /// Annotated queries in input order.
    pub queries: Vec<AnnotatedQuery>,
}

impl AnnotationCampaign {
    /// Runs the campaign over (a prefix of) `queries`.
    pub fn run<R: Rng + ?Sized>(
        queries: &[LabeledQuery],
        config: AnnotationConfig,
        rng: &mut R,
    ) -> Self {
        assert!(
            config.workers_per_query >= 1,
            "campaign needs at least one worker"
        );
        let mut annotated = Vec::with_capacity(queries.len().min(config.max_queries));
        for labeled in queries.iter().take(config.max_queries) {
            let votes: Vec<bool> = (0..config.workers_per_query)
                .map(|_| {
                    if rng.gen_bool(config.worker_error_rate) {
                        !labeled.sensitive
                    } else {
                        labeled.sensitive
                    }
                })
                .collect();
            let yes = votes.iter().filter(|&&v| v).count();
            annotated.push(AnnotatedQuery {
                labeled: labeled.clone(),
                annotated_sensitive: yes * 2 > votes.len(),
                votes,
            });
        }
        Self { queries: annotated }
    }

    /// Number of annotated queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` when nothing was annotated.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Fraction of queries annotated as sensitive (the paper reports
    /// 15.74 %).
    pub fn sensitive_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .filter(|q| q.annotated_sensitive)
            .count() as f64
            / self.queries.len() as f64
    }

    /// Agreement between the campaign labels and the generator ground truth.
    pub fn agreement_with_ground_truth(&self) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        self.queries
            .iter()
            .filter(|q| q.annotated_sensitive == q.labeled.sensitive)
            .count() as f64
            / self.queries.len() as f64
    }

    /// The annotated sensitivity labels, parallel to `queries`.
    pub fn labels(&self) -> Vec<bool> {
        self.queries.iter().map(|q| q.annotated_sensitive).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{QueryLog, WorkloadConfig, WorkloadGenerator};
    use crate::topics::TopicCatalog;
    use cyclosa_util::rng::Xoshiro256StarStar;

    fn testing_queries() -> Vec<LabeledQuery> {
        let generator =
            WorkloadGenerator::new(TopicCatalog::default_catalog(), WorkloadConfig::small());
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let log = generator.generate(&mut rng);
        let (_, test) = log.train_test_split(2.0 / 3.0);
        QueryLog::interleave(&test)
    }

    #[test]
    fn majority_vote_mostly_matches_ground_truth() {
        let queries = testing_queries();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let campaign = AnnotationCampaign::run(&queries, AnnotationConfig::default(), &mut rng);
        assert_eq!(campaign.len(), queries.len().min(10_000));
        assert!(campaign.agreement_with_ground_truth() > 0.97);
    }

    #[test]
    fn five_votes_are_collected_per_query() {
        let queries = testing_queries();
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let campaign =
            AnnotationCampaign::run(&queries[..50], AnnotationConfig::default(), &mut rng);
        assert!(campaign.queries.iter().all(|q| q.votes.len() == 5));
    }

    #[test]
    fn max_queries_truncates_the_campaign() {
        let queries = testing_queries();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let config = AnnotationConfig {
            max_queries: 25,
            ..AnnotationConfig::default()
        };
        let campaign = AnnotationCampaign::run(&queries, config, &mut rng);
        assert_eq!(campaign.len(), 25);
        assert_eq!(campaign.labels().len(), 25);
    }

    #[test]
    fn perfect_workers_reproduce_ground_truth_exactly() {
        let queries = testing_queries();
        let mut rng = Xoshiro256StarStar::seed_from_u64(10);
        let config = AnnotationConfig {
            worker_error_rate: 0.0,
            ..AnnotationConfig::default()
        };
        let campaign = AnnotationCampaign::run(&queries[..200], config, &mut rng);
        assert_eq!(campaign.agreement_with_ground_truth(), 1.0);
        let truth_fraction = queries[..200].iter().filter(|q| q.sensitive).count() as f64 / 200.0;
        assert!((campaign.sensitive_fraction() - truth_fraction).abs() < 1e-12);
    }

    #[test]
    fn empty_campaign_behaves() {
        let campaign = AnnotationCampaign::default();
        assert!(campaign.is_empty());
        assert_eq!(campaign.sensitive_fraction(), 0.0);
        assert_eq!(campaign.agreement_with_ground_truth(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let config = AnnotationConfig {
            workers_per_query: 0,
            ..AnnotationConfig::default()
        };
        let _ = AnnotationCampaign::run(&[], config, &mut rng);
    }
}
