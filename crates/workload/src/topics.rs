//! Topic vocabularies, the sensitive-subject corpus, the synthetic lexicon
//! and trending seed queries.
//!
//! The vocabularies double as (a) the source of user queries in the
//! generator, (b) the source of the synthetic document corpus indexed by the
//! search engine, and (c) the raw material of the WordNet-like lexicon and
//! the LDA training corpus used by the sensitivity categorizer — exactly the
//! coupling that exists in the real evaluation, where queries, documents and
//! dictionaries all come from the same natural language.

use cyclosa_nlp::lexicon::{Lexicon, LexiconBuilder};

/// One query topic with its vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topic {
    /// Topic name (doubles as the lexicon domain label).
    pub name: &'static str,
    /// Whether the topic belongs to the default sensitive set (health,
    /// politics, religion, sexuality — per Google's definition cited in
    /// §V-A1).
    pub sensitive: bool,
    /// Vocabulary of the topic.
    pub terms: &'static [&'static str],
}

/// The catalogue of topics used by the synthetic workload.
#[derive(Debug, Clone, Default)]
pub struct TopicCatalog {
    topics: Vec<Topic>,
}

const HEALTH: &[&str] = &[
    "diabetes",
    "insulin",
    "glucose",
    "chemotherapy",
    "tumor",
    "oncology",
    "migraine",
    "asthma",
    "inhaler",
    "depression",
    "anxiety",
    "therapy",
    "antidepressant",
    "hiv",
    "std",
    "symptoms",
    "treatment",
    "diagnosis",
    "prescription",
    "dosage",
    "cardiology",
    "arrhythmia",
    "biopsy",
    "dermatology",
    "psoriasis",
    "arthritis",
    "ibuprofen",
    "vaccine",
    "allergy",
    "fertility",
    "pregnancy",
    "contraception",
    "hepatitis",
    "cholesterol",
    "hypertension",
    "insomnia",
];

const POLITICS: &[&str] = &[
    "election",
    "senate",
    "congress",
    "ballot",
    "referendum",
    "campaign",
    "candidate",
    "democrat",
    "republican",
    "socialist",
    "conservative",
    "liberal",
    "immigration",
    "asylum",
    "protest",
    "impeachment",
    "lobbying",
    "parliament",
    "coalition",
    "minister",
    "legislation",
    "veto",
    "primaries",
    "caucus",
    "gerrymandering",
    "populism",
    "sanctions",
    "diplomacy",
    "treaty",
];

const RELIGION: &[&str] = &[
    "church",
    "mosque",
    "synagogue",
    "temple",
    "prayer",
    "scripture",
    "bible",
    "quran",
    "torah",
    "pastor",
    "imam",
    "rabbi",
    "baptism",
    "ramadan",
    "easter",
    "pilgrimage",
    "atheism",
    "faith",
    "communion",
    "sermon",
    "monastery",
    "meditation",
    "karma",
    "theology",
    "convert",
    "worship",
];

const SEXUALITY: &[&str] = &[
    "erotic",
    "fetish",
    "lingerie",
    "escort",
    "swinger",
    "orientation",
    "bisexual",
    "transgender",
    "kink",
    "bdsm",
    "sexting",
    "libido",
    "intimacy",
    "seduction",
    "nudity",
    "webcam",
    "hookup",
    "polyamory",
    "aphrodisiac",
    "tantra",
    "burlesque",
    "strip",
    "adultery",
    "dominatrix",
];

const TRAVEL: &[&str] = &[
    "flights",
    "hotel",
    "booking",
    "hostel",
    "itinerary",
    "luggage",
    "visa",
    "passport",
    "resort",
    "beach",
    "cruise",
    "backpacking",
    "airline",
    "airport",
    "train",
    "roadtrip",
    "camping",
    "sightseeing",
    "museum",
    "tour",
    "paris",
    "geneva",
    "barcelona",
    "zurich",
    "lisbon",
    "tokyo",
];

const SHOPPING: &[&str] = &[
    "coupon",
    "discount",
    "deal",
    "sneakers",
    "laptop",
    "headphones",
    "furniture",
    "mattress",
    "jacket",
    "handbag",
    "jewelry",
    "watch",
    "returns",
    "refund",
    "delivery",
    "marketplace",
    "auction",
    "wishlist",
    "checkout",
    "voucher",
    "clearance",
    "outlet",
    "brand",
    "review",
];

const SPORTS: &[&str] = &[
    "football",
    "basketball",
    "tennis",
    "marathon",
    "cycling",
    "playoffs",
    "transfer",
    "league",
    "championship",
    "olympics",
    "score",
    "fixture",
    "goalkeeper",
    "quarterback",
    "homerun",
    "skiing",
    "snowboard",
    "climbing",
    "swimming",
    "triathlon",
    "stadium",
    "coach",
    "referee",
];

const TECHNOLOGY: &[&str] = &[
    "laptop",
    "smartphone",
    "android",
    "linux",
    "windows",
    "driver",
    "firmware",
    "router",
    "bandwidth",
    "programming",
    "python",
    "javascript",
    "database",
    "compiler",
    "encryption",
    "firewall",
    "malware",
    "backup",
    "cloud",
    "server",
    "graphics",
    "processor",
    "keyboard",
];

const ENTERTAINMENT: &[&str] = &[
    "movie",
    "trailer",
    "netflix",
    "series",
    "episode",
    "actor",
    "actress",
    "soundtrack",
    "concert",
    "festival",
    "album",
    "lyrics",
    "playlist",
    "celebrity",
    "gossip",
    "premiere",
    "boxoffice",
    "streaming",
    "podcast",
    "comedy",
    "thriller",
    "documentary",
    "anime",
];

const FINANCE: &[&str] = &[
    "mortgage",
    "refinance",
    "savings",
    "dividend",
    "portfolio",
    "broker",
    "etf",
    "pension",
    "budget",
    "invoice",
    "taxes",
    "deduction",
    "audit",
    "insurance",
    "premium",
    "loan",
    "interest",
    "credit",
    "debit",
    "bankruptcy",
    "crypto",
    "bitcoin",
    "exchange",
    "inflation",
];

const FOOD: &[&str] = &[
    "recipe",
    "pasta",
    "risotto",
    "fondue",
    "sourdough",
    "barbecue",
    "vegan",
    "vegetarian",
    "gluten",
    "dessert",
    "chocolate",
    "espresso",
    "restaurant",
    "reservation",
    "takeaway",
    "brunch",
    "smoothie",
    "casserole",
    "marinade",
    "airfryer",
    "paella",
    "tapas",
    "sushi",
    "ramen",
];

/// Terms that are evidence of a sensitive topic in some readings but appear
/// in harmless queries too — the polysemy that drags down the precision of
/// the lexicon-only categorizer (Table II).
const AMBIGUOUS_SEXUALITY: &[&str] = &["adult", "model", "massage", "dating", "toys", "escorts"];
const AMBIGUOUS_HEALTH: &[&str] = &["virus", "clinic", "drug", "dose", "pain"];
const AMBIGUOUS_POLITICS: &[&str] = &["party", "vote", "border", "union"];
const AMBIGUOUS_RELIGION: &[&str] = &["cross", "mass", "fast", "saint"];

impl TopicCatalog {
    /// The default catalogue: four sensitive topics and eight non-sensitive
    /// ones, which yields roughly the paper's 15.74 % sensitive-query rate
    /// under the default user-profile mix.
    pub fn default_catalog() -> Self {
        Self {
            topics: vec![
                Topic {
                    name: "health",
                    sensitive: true,
                    terms: HEALTH,
                },
                Topic {
                    name: "politics",
                    sensitive: true,
                    terms: POLITICS,
                },
                Topic {
                    name: "religion",
                    sensitive: true,
                    terms: RELIGION,
                },
                Topic {
                    name: "sexuality",
                    sensitive: true,
                    terms: SEXUALITY,
                },
                Topic {
                    name: "travel",
                    sensitive: false,
                    terms: TRAVEL,
                },
                Topic {
                    name: "shopping",
                    sensitive: false,
                    terms: SHOPPING,
                },
                Topic {
                    name: "sports",
                    sensitive: false,
                    terms: SPORTS,
                },
                Topic {
                    name: "technology",
                    sensitive: false,
                    terms: TECHNOLOGY,
                },
                Topic {
                    name: "entertainment",
                    sensitive: false,
                    terms: ENTERTAINMENT,
                },
                Topic {
                    name: "finance",
                    sensitive: false,
                    terms: FINANCE,
                },
                Topic {
                    name: "food",
                    sensitive: false,
                    terms: FOOD,
                },
            ],
        }
    }

    /// All topics.
    pub fn topics(&self) -> &[Topic] {
        &self.topics
    }

    /// The sensitive topics.
    pub fn sensitive_topics(&self) -> Vec<&Topic> {
        self.topics.iter().filter(|t| t.sensitive).collect()
    }

    /// The non-sensitive topics.
    pub fn non_sensitive_topics(&self) -> Vec<&Topic> {
        self.topics.iter().filter(|t| !t.sensitive).collect()
    }

    /// Looks a topic up by name.
    pub fn topic(&self, name: &str) -> Option<&Topic> {
        self.topics.iter().find(|t| t.name == name)
    }

    /// `(name, vocabulary)` pairs in the form the corpus generator of
    /// `cyclosa-search-engine` expects.
    pub fn as_corpus_topics(&self) -> Vec<(String, Vec<String>)> {
        self.topics
            .iter()
            .map(|t| {
                (
                    t.name.to_owned(),
                    t.terms.iter().map(|s| s.to_string()).collect(),
                )
            })
            .collect()
    }
}

/// Builds the synthetic WordNet-like lexicon: every sensitive-topic term is
/// a synset in its topic's domain, and the ambiguous terms additionally
/// belong to the `general` domain. A small fraction of sensitive terms is
/// deliberately *omitted* (the lexicon is incomplete), which is what keeps
/// the lexicon-based categorizer's recall below 1 as in Table II.
pub fn synthetic_lexicon(catalog: &TopicCatalog) -> Lexicon {
    let mut builder = LexiconBuilder::new();
    for topic in catalog.sensitive_topics() {
        // Cover only part of each sensitive vocabulary (roughly 60 %): real
        // lexica miss slang and recent coinages, which is what keeps the
        // WordNet-only detector's recall at 0.83 in Table II.
        let covered: Vec<&str> = topic
            .terms
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 5 < 3)
            .map(|(_, t)| *t)
            .collect();
        builder = builder.domain_terms(topic.name, covered);
    }
    builder = builder.ambiguous_terms("sexuality", "general", AMBIGUOUS_SEXUALITY.iter().copied());
    builder = builder.ambiguous_terms("health", "general", AMBIGUOUS_HEALTH.iter().copied());
    builder = builder.ambiguous_terms("politics", "general", AMBIGUOUS_POLITICS.iter().copied());
    builder = builder.ambiguous_terms("religion", "general", AMBIGUOUS_RELIGION.iter().copied());
    builder.build()
}

/// The ambiguous terms associated with a sensitive topic (used by the
/// generator to inject them into *non-sensitive* queries, creating the
/// false-positive pressure measured in Table II).
pub fn ambiguous_terms(topic: &str) -> &'static [&'static str] {
    match topic {
        "sexuality" => AMBIGUOUS_SEXUALITY,
        "health" => AMBIGUOUS_HEALTH,
        "politics" => AMBIGUOUS_POLITICS,
        "religion" => AMBIGUOUS_RELIGION,
        _ => &[],
    }
}

/// A small corpus of documents about the sensitive subject (the stand-in
/// for the 2 M adult-video titles the paper trains its LDA model on).
/// Returns raw texts; the categorizer trains LDA on them.
pub fn sensitive_corpus(
    catalog: &TopicCatalog,
    documents: usize,
    rng: &mut impl cyclosa_util::rng::Rng,
) -> Vec<String> {
    let sexuality = catalog.topic("sexuality").expect("catalogue has sexuality");
    let ambiguous = AMBIGUOUS_SEXUALITY;
    let mut corpus = Vec::with_capacity(documents);
    for _ in 0..documents {
        let len = 4 + rng.gen_index(4);
        let mut terms = Vec::with_capacity(len);
        for _ in 0..len {
            // Mostly core sensitive vocabulary with some ambiguous terms
            // mixed in, as real adult-content titles do.
            if rng.gen_bool(0.9) {
                terms.push(*rng.choose(sexuality.terms).expect("non-empty"));
            } else {
                terms.push(*rng.choose(ambiguous).expect("non-empty"));
            }
        }
        corpus.push(terms.join(" "));
    }
    corpus
}

/// Trend-style seed queries used to prefill the fake-query table at
/// bootstrap (paper §V-D cites Google Trends). All seeds are non-sensitive.
pub fn seed_queries(
    catalog: &TopicCatalog,
    count: usize,
    rng: &mut impl cyclosa_util::rng::Rng,
) -> Vec<String> {
    let topics = catalog.non_sensitive_topics();
    let mut seeds = Vec::with_capacity(count);
    for _ in 0..count {
        let topic = topics[rng.gen_index(topics.len())];
        let len = 2 + rng.gen_index(2);
        let mut terms = Vec::with_capacity(len);
        for _ in 0..len {
            terms.push(*rng.choose(topic.terms).expect("non-empty"));
        }
        seeds.push(terms.join(" "));
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    #[test]
    fn catalogue_has_expected_structure() {
        let catalog = TopicCatalog::default_catalog();
        assert_eq!(catalog.sensitive_topics().len(), 4);
        assert!(catalog.non_sensitive_topics().len() >= 6);
        assert!(catalog.topic("health").unwrap().sensitive);
        assert!(!catalog.topic("travel").unwrap().sensitive);
        assert!(catalog.topic("nonexistent").is_none());
        // Vocabularies are non-trivial.
        for t in catalog.topics() {
            assert!(t.terms.len() >= 20, "topic {} too small", t.name);
        }
    }

    #[test]
    fn lexicon_covers_most_but_not_all_sensitive_terms() {
        let catalog = TopicCatalog::default_catalog();
        let lexicon = synthetic_lexicon(&catalog);
        let health = catalog.topic("health").unwrap();
        let covered = health
            .terms
            .iter()
            .filter(|t| lexicon.word_in_domain(t, "health"))
            .count();
        assert!(covered > health.terms.len() / 2, "coverage too low");
        assert!(
            covered < health.terms.len() * 7 / 10,
            "coverage should be incomplete"
        );
        // Ambiguous terms are present but not exclusive.
        assert!(lexicon.word_in_domain("adult", "sexuality"));
        assert!(!lexicon.word_exclusively_in_domain("adult", "sexuality"));
    }

    #[test]
    fn sensitive_corpus_uses_sensitive_vocabulary() {
        let catalog = TopicCatalog::default_catalog();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let corpus = sensitive_corpus(&catalog, 50, &mut rng);
        assert_eq!(corpus.len(), 50);
        let sexuality: std::collections::BTreeSet<&str> = catalog
            .topic("sexuality")
            .unwrap()
            .terms
            .iter()
            .copied()
            .collect();
        let ambiguous: std::collections::BTreeSet<&str> =
            AMBIGUOUS_SEXUALITY.iter().copied().collect();
        for doc in &corpus {
            for term in doc.split_whitespace() {
                assert!(
                    sexuality.contains(term) || ambiguous.contains(term),
                    "stray term {term}"
                );
            }
        }
    }

    #[test]
    fn seed_queries_are_non_sensitive() {
        let catalog = TopicCatalog::default_catalog();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let seeds = seed_queries(&catalog, 30, &mut rng);
        assert_eq!(seeds.len(), 30);
        let sensitive_terms: std::collections::BTreeSet<&str> = catalog
            .sensitive_topics()
            .iter()
            .flat_map(|t| t.terms.iter().copied())
            .collect();
        for seed in &seeds {
            for term in seed.split_whitespace() {
                assert!(
                    !sensitive_terms.contains(term),
                    "sensitive term {term} in seed"
                );
            }
        }
    }

    #[test]
    fn ambiguous_terms_lookup() {
        assert!(!ambiguous_terms("sexuality").is_empty());
        assert!(ambiguous_terms("travel").is_empty());
    }

    #[test]
    fn corpus_topics_conversion() {
        let catalog = TopicCatalog::default_catalog();
        let corpus_topics = catalog.as_corpus_topics();
        assert_eq!(corpus_topics.len(), catalog.topics().len());
        assert!(corpus_topics.iter().all(|(_, v)| !v.is_empty()));
    }
}
