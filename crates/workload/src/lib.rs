//! Synthetic Web-search workloads standing in for the AOL query log.
//!
//! The paper's evaluation (§VII-B) uses the 2006 AOL query log: 21 million
//! queries from 650,000 users, from which the authors extract the most
//! active users (those hardest to protect), split each user's queries into a
//! training set (the adversary's prior knowledge) and a testing set (the
//! queries to protect), and run a crowd-sourcing campaign to label query
//! sensitivity (15.74 % of queries touch sensitive topics).
//!
//! The AOL log cannot be redistributed, so this crate generates a synthetic
//! log with the statistical structure the experiments rely on:
//!
//! * [`topics`] — topic vocabularies (sensitive and non-sensitive), the
//!   sensitive-subject training corpus for LDA, the synthetic WordNet-like
//!   lexicon, and trending seed queries for bootstrap.
//! * [`generator`] — per-user topical interest profiles, Zipfian term
//!   popularity, query repetition (what makes users re-identifiable),
//!   heavy-tailed per-user activity, and the train/test split.
//! * [`annotation`] — a simulation of the 5-worker crowd-sourcing campaign
//!   that produces the ground-truth sensitivity labels of Table II.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotation;
pub mod generator;
pub mod topics;

pub use annotation::{AnnotationCampaign, AnnotationConfig};
pub use generator::{LabeledQuery, QueryLog, UserTrace, WorkloadConfig, WorkloadGenerator};
pub use topics::{seed_queries, sensitive_corpus, synthetic_lexicon, Topic, TopicCatalog};
