//! The adversary: SimAttack user re-identification and the accuracy metrics.
//!
//! This crate implements the evaluation side of the paper:
//!
//! * [`simattack`] — the SimAttack re-identification attack (paper §VII-E):
//!   the honest-but-curious search engine holds a profile of past queries
//!   for every user and tries to link each incoming query back to a profile
//!   using cosine similarity + exponential smoothing with a 0.5 confidence
//!   threshold.
//! * [`evaluation`] — drives a [`cyclosa_mechanism::Mechanism`] over a test
//!   workload and computes the re-identification rate of Fig. 5, applying
//!   the attack the way the paper does for each mechanism class
//!   (identity-exposed mechanisms are attacked by separating real queries
//!   from fakes; unlinkability mechanisms are attacked by attributing the
//!   anonymous request stream).
//! * [`accuracy`] — the correctness / completeness metrics of Fig. 6
//!   (paper §VII-F), computed against the simulated search engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod evaluation;
pub mod simattack;

pub use accuracy::{evaluate_accuracy, AccuracyReport};
pub use evaluation::{
    evaluate_reidentification, evaluate_reidentification_with, ReidentificationReport,
};
pub use simattack::SimAttack;
