//! Re-identification evaluation harness (Fig. 5).
//!
//! The harness drives a [`Mechanism`] over the testing queries of a
//! workload and attacks what the search engine observes, the way the paper
//! does for each mechanism class (§VIII-A):
//!
//! * **Identity-exposed mechanisms** (TrackMeNot, GooPIR, direct search):
//!   the engine already knows who sent each request; "the re-identification
//!   rate corresponds to retrieving the real queries from the fake ones."
//!   For every protected user query, the adversary ranks the requests (or
//!   the OR-disjuncts) of that user by profile similarity and succeeds when
//!   the top-ranked candidate is the real query. The rate is over real
//!   queries.
//! * **Unlinkability mechanisms** (TOR, PEAS, X-SEARCH, CYCLOSA): the
//!   adversary must attribute anonymous requests to user profiles. The rate
//!   is "the proportion of queries for which the user profile is
//!   successfully re-identified to all queries sent to the Web search" —
//!   the denominator counts every request reaching the engine, which is why
//!   CYCLOSA's per-query fake traffic dilutes the attack on top of making
//!   individual attributions harder.

use crate::simattack::SimAttack;
use cyclosa_mechanism::{Mechanism, ProtectionOutcome, SourceIdentity};
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_workload::generator::{LabeledQuery, UserTrace};

/// The outcome of attacking one mechanism over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ReidentificationReport {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of protected (real) test queries.
    pub real_queries: usize,
    /// Total requests that reached the search engine.
    pub engine_requests: usize,
    /// Real queries whose originating user was correctly identified.
    pub successful: usize,
    /// Whether the mechanism exposes user identities to the engine (selects
    /// which denominator the paper uses).
    pub identity_exposed: bool,
}

impl ReidentificationReport {
    /// The re-identification rate as defined by the paper for this
    /// mechanism class (see module documentation).
    pub fn rate(&self) -> f64 {
        let denominator = if self.identity_exposed {
            self.real_queries
        } else {
            self.engine_requests
        };
        if denominator == 0 {
            0.0
        } else {
            self.successful as f64 / denominator as f64
        }
    }

    /// The rate as a percentage.
    pub fn rate_percent(&self) -> f64 {
        self.rate() * 100.0
    }
}

/// Attacks one protected query's observable footprint and reports whether
/// the adversary correctly identified the originating user of the real
/// query.
fn attack_outcome(attack: &SimAttack, query: &LabeledQuery, outcome: &ProtectionOutcome) -> bool {
    // Split the observation into exposed and anonymous requests.
    let exposed: Vec<_> = outcome
        .observed
        .iter()
        .filter(|r| r.source == SourceIdentity::Exposed(query.query.user))
        .collect();
    let anonymous: Vec<_> = outcome
        .observed
        .iter()
        .filter(|r| !r.source.is_exposed())
        .collect();

    // Case 1: the real query travels under the user's own identity
    // (TrackMeNot, GooPIR, direct search). The adversary separates real
    // from fake by profile consistency.
    if exposed.iter().any(|r| r.carries_real_query) {
        // Collect the candidate texts: individual requests, with OR groups
        // expanded into their disjuncts.
        let mut candidates: Vec<(&str, bool)> = Vec::new();
        for request in &exposed {
            if request.text.contains(" OR ") {
                let real_text = query.query.text.as_str();
                for part in request.text.split(" OR ") {
                    let part = part.trim();
                    candidates.push((part, request.carries_real_query && part == real_text));
                }
            } else {
                candidates.push((request.text.as_str(), request.carries_real_query));
            }
        }
        let texts: Vec<&str> = candidates.iter().map(|(t, _)| *t).collect();
        return match attack.pick_real_query(query.query.user, &texts) {
            Some(index) => candidates[index].1,
            None => false,
        };
    }

    // Case 2: unlinkability mechanisms. The adversary attributes each
    // anonymous request; success when the request carrying the real query
    // is attributed to the true user (for OR groups the adversary must also
    // single out the real disjunct).
    for request in &anonymous {
        if !request.carries_real_query {
            continue;
        }
        if request.text.contains(" OR ") {
            // PEAS / X-SEARCH: the adversary must both attribute the group
            // to the right user and single out the real disjunct.
            let disjuncts: Vec<&str> = request.text.split(" OR ").map(str::trim).collect();
            return match attack.reidentify_group(&disjuncts) {
                Some((user, index)) => {
                    user == query.query.user && disjuncts[index] == query.query.text
                }
                None => false,
            };
        }
        return attack.reidentify(&request.text) == Some(query.query.user);
    }
    false
}

/// Runs the full Fig. 5 evaluation of one mechanism: builds the adversary
/// from the training traces, protects every testing query, attacks the
/// observation and aggregates the re-identification rate.
///
/// When evaluating several mechanisms against the same training set, build
/// the adversary once and use [`evaluate_reidentification_with`]: the
/// adversary's inverted index over the training profiles is by far the most
/// expensive part of the setup.
pub fn evaluate_reidentification(
    mechanism: &mut dyn Mechanism,
    training: &[UserTrace],
    testing: &[LabeledQuery],
    rng: &mut Xoshiro256StarStar,
) -> ReidentificationReport {
    let attack = SimAttack::from_training(training);
    evaluate_reidentification_with(&attack, mechanism, testing, rng)
}

/// [`evaluate_reidentification`] against a prebuilt adversary, so one
/// trained [`SimAttack`] (and its inverted profile index) is reused across
/// every mechanism of a figure.
pub fn evaluate_reidentification_with(
    attack: &SimAttack,
    mechanism: &mut dyn Mechanism,
    testing: &[LabeledQuery],
    rng: &mut Xoshiro256StarStar,
) -> ReidentificationReport {
    let mut engine_requests = 0usize;
    let mut successful = 0usize;
    let mut any_exposed_real = false;
    for query in testing {
        let outcome = mechanism.protect(&query.query, rng);
        engine_requests += outcome.engine_requests();
        if outcome
            .observed
            .iter()
            .any(|r| r.carries_real_query && r.source.is_exposed())
        {
            any_exposed_real = true;
        }
        if attack_outcome(attack, query, &outcome) {
            successful += 1;
        }
    }
    ReidentificationReport {
        mechanism: mechanism.name().to_owned(),
        real_queries: testing.len(),
        engine_requests,
        successful,
        identity_exposed: any_exposed_real,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{
        MechanismProperties, ObservedRequest, Query, QueryId, ResultsDelivery, UserId,
    };

    /// A mechanism that sends the raw query anonymously (TOR-like).
    struct Anonymizer;
    impl Mechanism for Anonymizer {
        fn name(&self) -> &'static str {
            "ANON"
        }
        fn properties(&self) -> MechanismProperties {
            MechanismProperties {
                unlinkability: true,
                indistinguishability: false,
                accuracy: true,
                scalability: true,
            }
        }
        fn protect(&mut self, query: &Query, _rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
            ProtectionOutcome {
                observed: vec![ObservedRequest {
                    source: SourceIdentity::Anonymous,
                    text: query.text.clone(),
                    carries_real_query: true,
                }],
                delivery: ResultsDelivery::ExactQuery,
                relay_messages: 1,
            }
        }
    }

    /// A mechanism that exposes the identity and adds one obvious fake.
    struct ExposedWithFake;
    impl Mechanism for ExposedWithFake {
        fn name(&self) -> &'static str {
            "EXPOSED"
        }
        fn properties(&self) -> MechanismProperties {
            MechanismProperties {
                unlinkability: false,
                indistinguishability: true,
                accuracy: true,
                scalability: true,
            }
        }
        fn protect(&mut self, query: &Query, _rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
            ProtectionOutcome {
                observed: vec![
                    ObservedRequest {
                        source: SourceIdentity::Exposed(query.user),
                        text: query.text.clone(),
                        carries_real_query: true,
                    },
                    ObservedRequest {
                        source: SourceIdentity::Exposed(query.user),
                        text: "celebrity gossip premiere".to_owned(),
                        carries_real_query: false,
                    },
                ],
                delivery: ResultsDelivery::ExactQuery,
                relay_messages: 0,
            }
        }
    }

    fn training() -> Vec<UserTrace> {
        use cyclosa_workload::generator::LabeledQuery;
        let mk = |user: u32, texts: &[&str]| UserTrace {
            user: UserId(user),
            queries: texts
                .iter()
                .enumerate()
                .map(|(i, t)| LabeledQuery {
                    query: Query::new(QueryId(user as u64 * 100 + i as u64), UserId(user), *t),
                    topic: "t".into(),
                    sensitive: false,
                })
                .collect(),
        };
        vec![
            mk(
                0,
                &[
                    "diabetes insulin dosage",
                    "insulin pump price",
                    "glucose monitor",
                ],
            ),
            mk(
                1,
                &[
                    "cheap flights geneva",
                    "hotel booking barcelona",
                    "train zurich",
                ],
            ),
        ]
    }

    fn testing() -> Vec<LabeledQuery> {
        use cyclosa_workload::generator::LabeledQuery;
        vec![
            LabeledQuery {
                query: Query::new(QueryId(900), UserId(0), "diabetes insulin dosage"),
                topic: "health".into(),
                sensitive: true,
            },
            LabeledQuery {
                query: Query::new(QueryId(901), UserId(1), "surf lessons portugal"),
                topic: "travel".into(),
                sensitive: false,
            },
        ]
    }

    #[test]
    fn anonymizer_is_attacked_through_profile_similarity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let report = evaluate_reidentification(&mut Anonymizer, &training(), &testing(), &mut rng);
        // The repeated health query is re-identified, the fresh unrelated
        // travel query is not.
        assert_eq!(report.successful, 1);
        assert_eq!(report.real_queries, 2);
        assert_eq!(report.engine_requests, 2);
        assert!(!report.identity_exposed);
        assert!((report.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exposed_mechanism_is_attacked_by_separating_fakes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let report =
            evaluate_reidentification(&mut ExposedWithFake, &training(), &testing(), &mut rng);
        assert!(report.identity_exposed);
        // Rate is over real queries, not over the doubled request count.
        assert_eq!(report.real_queries, 2);
        assert_eq!(report.engine_requests, 4);
        // Query 0 matches the profile and is picked over the gossip fake;
        // query 1 has no profile support, the adversary abstains.
        assert_eq!(report.successful, 1);
        assert!((report.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_testing_set_yields_zero_rate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let report = evaluate_reidentification(&mut Anonymizer, &training(), &[], &mut rng);
        assert_eq!(report.rate(), 0.0);
        assert_eq!(report.rate_percent(), 0.0);
    }
}
