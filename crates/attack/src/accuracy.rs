//! Accuracy metrics: correctness and completeness of private Web search
//! (Fig. 6, paper §VII-F).
//!
//! For a user query `q`, let `R_or` be the result page the engine returns
//! for `q` itself and `R_xs` the result page the user actually receives
//! through the mechanism. Then
//!
//! * `correctness = |R_or ∩ R_xs| / |R_xs|` — how much of what the user sees
//!   is genuinely about her query;
//! * `completeness = |R_or ∩ R_xs| / |R_or|` — how much of what she should
//!   have seen she actually received.
//!
//! Mechanisms that return the exact results of the original query (direct
//! search, TOR, TrackMeNot, CYCLOSA) score 1.0 on both by construction.
//! OR-obfuscating mechanisms (GooPIR, PEAS, X-SEARCH) lose results to the
//! fake disjuncts and let foreign results through the client-side filter.

use cyclosa_mechanism::{Mechanism, ResultsDelivery};
use cyclosa_search_engine::corpus::DocId;
use cyclosa_search_engine::SearchEngine;
use cyclosa_util::rng::Xoshiro256StarStar;
use cyclosa_workload::generator::LabeledQuery;
use std::collections::BTreeSet;

/// Aggregated accuracy of one mechanism over a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Mean correctness over evaluated queries, in `[0, 1]`.
    pub correctness: f64,
    /// Mean completeness over evaluated queries, in `[0, 1]`.
    pub completeness: f64,
    /// Number of queries that contributed to the averages (queries with an
    /// empty reference result set are skipped, as in the original
    /// methodology).
    pub evaluated: usize,
}

/// Computes the result page the user receives for a given delivery mode and
/// returns `(received docs, reference docs)`.
fn result_sets(
    engine: &SearchEngine,
    original_query: &str,
    delivery: &ResultsDelivery,
) -> (BTreeSet<DocId>, BTreeSet<DocId>) {
    let reference: BTreeSet<DocId> = engine
        .reference_results(original_query)
        .results
        .iter()
        .map(|r| r.doc)
        .collect();
    let received: BTreeSet<DocId> = match delivery {
        ResultsDelivery::ExactQuery => reference.clone(),
        ResultsDelivery::FilteredFromObfuscated { obfuscated_query } => {
            // The engine answers the OR-aggregated query; the client (or
            // proxy) keeps only the results containing at least one term of
            // the original query — the filtering strategy described in
            // §II-A3.
            engine
                .reference_results(obfuscated_query)
                .results
                .iter()
                .map(|r| r.doc)
                .filter(|doc| engine.index().matches_any_term(*doc, original_query))
                .collect()
        }
    };
    (received, reference)
}

/// Evaluates the accuracy of one mechanism over the testing queries.
pub fn evaluate_accuracy(
    mechanism: &mut dyn Mechanism,
    engine: &SearchEngine,
    testing: &[LabeledQuery],
    rng: &mut Xoshiro256StarStar,
) -> AccuracyReport {
    let mut correctness_sum = 0.0;
    let mut completeness_sum = 0.0;
    let mut evaluated = 0usize;
    for query in testing {
        let outcome = mechanism.protect(&query.query, rng);
        let (received, reference) = result_sets(engine, &query.query.text, &outcome.delivery);
        if reference.is_empty() {
            continue;
        }
        let intersection = received.intersection(&reference).count() as f64;
        let correctness = if received.is_empty() {
            0.0
        } else {
            intersection / received.len() as f64
        };
        let completeness = intersection / reference.len() as f64;
        correctness_sum += correctness;
        completeness_sum += completeness;
        evaluated += 1;
    }
    if evaluated == 0 {
        return AccuracyReport {
            correctness: 0.0,
            completeness: 0.0,
            evaluated: 0,
        };
    }
    AccuracyReport {
        correctness: correctness_sum / evaluated as f64,
        completeness: completeness_sum / evaluated as f64,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{
        MechanismProperties, ObservedRequest, ProtectionOutcome, Query, QueryId, SourceIdentity,
        UserId,
    };
    use cyclosa_search_engine::corpus::{CorpusGenerator, Document};
    use cyclosa_search_engine::{EngineConfig, Index};
    use cyclosa_workload::topics::TopicCatalog;

    fn engine() -> SearchEngine {
        let catalog = TopicCatalog::default_catalog();
        let generator = CorpusGenerator::new(catalog.as_corpus_topics(), 15);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let docs: Vec<Document> = generator.generate(60, &mut rng);
        SearchEngine::new(Index::build(&docs), EngineConfig::default())
    }

    struct Exact;
    impl Mechanism for Exact {
        fn name(&self) -> &'static str {
            "EXACT"
        }
        fn properties(&self) -> MechanismProperties {
            MechanismProperties {
                unlinkability: true,
                indistinguishability: true,
                accuracy: true,
                scalability: true,
            }
        }
        fn protect(&mut self, query: &Query, _rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
            ProtectionOutcome {
                observed: vec![ObservedRequest {
                    source: SourceIdentity::Anonymous,
                    text: query.text.clone(),
                    carries_real_query: true,
                }],
                delivery: ResultsDelivery::ExactQuery,
                relay_messages: 0,
            }
        }
    }

    struct Obfuscating;
    impl Mechanism for Obfuscating {
        fn name(&self) -> &'static str {
            "OBFUSCATED"
        }
        fn properties(&self) -> MechanismProperties {
            MechanismProperties {
                unlinkability: false,
                indistinguishability: true,
                accuracy: false,
                scalability: true,
            }
        }
        fn protect(&mut self, query: &Query, _rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
            let obfuscated = format!(
                "{} OR mortgage refinance savings OR football playoffs score OR movie trailer netflix",
                query.text
            );
            ProtectionOutcome {
                observed: vec![ObservedRequest {
                    source: SourceIdentity::Exposed(query.user),
                    text: obfuscated.clone(),
                    carries_real_query: true,
                }],
                delivery: ResultsDelivery::FilteredFromObfuscated {
                    obfuscated_query: obfuscated,
                },
                relay_messages: 0,
            }
        }
    }

    fn testing() -> Vec<LabeledQuery> {
        vec![
            LabeledQuery {
                query: Query::new(QueryId(0), UserId(0), "diabetes insulin glucose"),
                topic: "health".into(),
                sensitive: true,
            },
            LabeledQuery {
                query: Query::new(QueryId(1), UserId(1), "cheap flights geneva hotel"),
                topic: "travel".into(),
                sensitive: false,
            },
            LabeledQuery {
                query: Query::new(QueryId(2), UserId(2), "sourdough recipe"),
                topic: "food".into(),
                sensitive: false,
            },
        ]
    }

    #[test]
    fn exact_delivery_has_perfect_accuracy() {
        let engine = engine();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let report = evaluate_accuracy(&mut Exact, &engine, &testing(), &mut rng);
        assert!(report.evaluated >= 2);
        assert!((report.correctness - 1.0).abs() < 1e-12);
        assert!((report.completeness - 1.0).abs() < 1e-12);
    }

    #[test]
    fn obfuscated_delivery_loses_accuracy() {
        let engine = engine();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let report = evaluate_accuracy(&mut Obfuscating, &engine, &testing(), &mut rng);
        assert!(report.evaluated >= 2);
        assert!(
            report.completeness < 0.999,
            "completeness {}",
            report.completeness
        );
        assert!(
            report.correctness > 0.2,
            "correctness {}",
            report.correctness
        );
        assert!(report.completeness > 0.1);
    }

    #[test]
    fn empty_testing_set() {
        let engine = engine();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let report = evaluate_accuracy(&mut Exact, &engine, &[], &mut rng);
        assert_eq!(report.evaluated, 0);
        assert_eq!(report.correctness, 0.0);
    }
}
