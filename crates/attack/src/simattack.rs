//! The SimAttack user re-identification attack.
//!
//! Paper §VII-E, following Petit et al. (2016): the adversary holds, for
//! every user, a profile built from that user's past queries (the training
//! set). Given an intercepted query, SimAttack computes the smoothed
//! profile similarity against every user profile; if the best score exceeds
//! a confidence threshold (0.5) and a single profile attains it, the query
//! is attributed to that user.
//!
//! # Inverted profile index
//!
//! The textbook formulation scans every profile per query —
//! `O(queries × users × terms)` with a fresh tokenization of the query for
//! each profile. This implementation instead maintains an **inverted
//! index** over the adversary's knowledge base:
//!
//! * one shared [`TermInterner`] assigns a dense
//!   [`TermId`](cyclosa_nlp::text::TermId) to every term ever seen in
//!   training or attacked queries;
//! * postings `TermId → [(user, past-query)]` list, for every term, the
//!   training queries containing it;
//! * per past-query norms come cached from the [`IdVector`]s the profiles
//!   already store.
//!
//! `reidentify` then tokenizes the query **once**, walks only the postings
//! of its terms, and scores only the *candidate* profiles that share at
//! least one term with the query. Profiles sharing no term score exactly
//! `0.0` — below any threshold in `[0, 1]` and unable to create a tie
//! (ties require a positive score) — so skipping them cannot change the
//! attribution decision: the index returns **bit-identical decisions** to
//! the reference scan (retained as [`SimAttack::reidentify_scan`] and
//! pinned by `tests/kernel_equivalence.rs`), at `O(matching postings)`
//! cost per query.

use cyclosa_mechanism::UserId;
use cyclosa_nlp::kernel::IdVector;
use cyclosa_nlp::profile::UserProfile;
use cyclosa_nlp::text::TermInterner;
use cyclosa_util::smoothing::exponential_smoothing;
use cyclosa_workload::generator::UserTrace;
use std::collections::BTreeMap;

/// The confidence threshold used by the paper.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// One entry of a term's postings list: a training query of one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posting {
    /// Dense index of the user (insertion order into the adversary).
    user: u32,
    /// Index of the past query within that user's profile.
    query: u32,
}

/// The SimAttack adversary.
#[derive(Debug, Default)]
pub struct SimAttack {
    interner: TermInterner,
    profiles: BTreeMap<UserId, UserProfile>,
    /// Users in learning order; positions are the dense user indexes the
    /// postings refer to.
    users: Vec<UserId>,
    user_index: BTreeMap<UserId, u32>,
    /// `postings[term.index()]` lists the training queries containing the
    /// term. Indexed by `TermId`, grown lazily as training terms appear.
    postings: Vec<Vec<Posting>>,
    threshold: f64,
}

impl SimAttack {
    /// Creates an adversary with an empty knowledge base and the default
    /// confidence threshold.
    pub fn new() -> Self {
        Self::with_threshold(DEFAULT_THRESHOLD)
    }

    /// Creates an adversary with a custom confidence threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not within `[0, 1]`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        Self {
            interner: TermInterner::new(),
            profiles: BTreeMap::new(),
            users: Vec::new(),
            user_index: BTreeMap::new(),
            postings: Vec::new(),
            threshold,
        }
    }

    /// Builds the adversary's prior knowledge from the training traces
    /// (2/3 of each user's history in the paper's setup).
    pub fn from_training(traces: &[UserTrace]) -> Self {
        let mut attack = Self::new();
        for trace in traces {
            attack.learn_user(trace);
        }
        attack
    }

    /// Adds (or extends) the profile of one user from a training trace,
    /// updating the inverted index incrementally.
    pub fn learn_user(&mut self, trace: &UserTrace) {
        let user_idx = match self.user_index.get(&trace.user) {
            Some(&idx) => idx,
            None => {
                let idx = self.users.len() as u32;
                self.users.push(trace.user);
                self.user_index.insert(trace.user, idx);
                self.profiles.insert(
                    trace.user,
                    UserProfile::with_interner(self.interner.clone()),
                );
                idx
            }
        };
        let profile = self
            .profiles
            .get_mut(&trace.user)
            .expect("profile inserted above");
        for q in &trace.queries {
            let before = profile.len();
            profile.record_query(&q.query.text);
            if profile.len() == before {
                continue; // no content terms — not recorded
            }
            let vector = &profile.past_vectors()[before];
            let query_idx = before as u32;
            for (id, _) in vector.iter() {
                if id.index() >= self.postings.len() {
                    self.postings.resize_with(id.index() + 1, Vec::new);
                }
                self.postings[id.index()].push(Posting {
                    user: user_idx,
                    query: query_idx,
                });
            }
        }
    }

    /// Number of user profiles known to the adversary.
    pub fn known_users(&self) -> usize {
        self.profiles.len()
    }

    /// The confidence threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The shared term interner (clone it to build query vectors or other
    /// structures speaking the same term ids).
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// Tokenizes and vectorizes a query once against the adversary's
    /// interner; the result can be passed to [`SimAttack::reidentify_vector`]
    /// any number of times.
    pub fn prepare(&self, query: &str) -> IdVector {
        IdVector::binary_from_query(&self.interner, query)
    }

    /// The profile similarity of `query` with a specific user, if known.
    /// The query is tokenized and vectorized once.
    pub fn similarity_to(&self, user: UserId, query: &str) -> Option<f64> {
        let profile = self.profiles.get(&user)?;
        Some(profile.similarity_vector(&self.prepare(query)))
    }

    /// The smoothed similarity scores of every candidate profile sharing at
    /// least one term with `vector`, as `(dense user index, score)` pairs
    /// sorted by user index. Profiles not listed score exactly 0.
    fn candidate_scores(&self, vector: &IdVector) -> Vec<(u32, f64)> {
        // Count shared terms per (user, past query). Both sides are binary
        // vectors, so the dot product is the (exact, small-integer) overlap
        // count.
        let mut overlap: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for (id, _) in vector.iter() {
            if let Some(posts) = self.postings.get(id.index()) {
                for p in posts {
                    *overlap.entry((p.user, p.query)).or_insert(0) += 1;
                }
            }
        }
        if overlap.is_empty() {
            return Vec::new();
        }
        // Group per user, deterministically.
        let mut matched: Vec<((u32, u32), u32)> = overlap.into_iter().collect();
        matched.sort_unstable_by_key(|&(key, _)| key);

        let mut scores: Vec<(u32, f64)> = Vec::new();
        let mut i = 0usize;
        while i < matched.len() {
            let user = matched[i].0 .0;
            let profile = &self.profiles[&self.users[user as usize]];
            // Norms are cached inside each past-query vector at recording
            // time.
            let past = profile.past_vectors();
            // Reconstruct the full similarity list the reference scan feeds
            // into the smoothing: matched past queries get their cosine,
            // every other past query contributes an exact 0.0.
            let mut sims: Vec<f64> = Vec::with_capacity(past.len());
            while i < matched.len() && matched[i].0 .0 == user {
                let (_, query_idx) = matched[i].0;
                let count = matched[i].1;
                let denom = vector.norm() * past[query_idx as usize].norm();
                let sim = if denom == 0.0 {
                    0.0
                } else {
                    (count as f64 / denom).clamp(-1.0, 1.0)
                };
                sims.push(sim);
                i += 1;
            }
            sims.resize(past.len(), 0.0);
            scores.push((user, exponential_smoothing(&sims, profile.alpha())));
        }
        scores
    }

    /// Attempts to re-identify the user behind an anonymous query.
    ///
    /// Returns `Some(user)` when exactly one profile scores above the
    /// threshold with the maximum similarity, `None` otherwise (no
    /// confident, unique attribution — the attack abstains).
    ///
    /// The query is tokenized once and only candidate profiles (sharing at
    /// least one term) are scored — see the module documentation for why
    /// this cannot change the decision relative to the full scan.
    pub fn reidentify(&self, query: &str) -> Option<UserId> {
        self.reidentify_vector(&self.prepare(query))
    }

    /// [`SimAttack::reidentify`] for an already-prepared query vector.
    pub fn reidentify_vector(&self, vector: &IdVector) -> Option<UserId> {
        let mut best: Option<(u32, f64)> = None;
        let mut tie = false;
        for (user, score) in self.candidate_scores(vector) {
            match best {
                None => best = Some((user, score)),
                Some((_, best_score)) => {
                    if score > best_score {
                        best = Some((user, score));
                        tie = false;
                    } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                        tie = true;
                    }
                }
            }
        }
        match best {
            Some((user, score)) if score > self.threshold && !tie => {
                Some(self.users[user as usize])
            }
            _ => None,
        }
    }

    /// The reference full-scan implementation of [`SimAttack::reidentify`]:
    /// every profile is scored (re-vectorizing the query through the shared
    /// interner once, not per profile). Kept as the specification the
    /// inverted index is benchmarked and equivalence-tested against.
    pub fn reidentify_scan(&self, query: &str) -> Option<UserId> {
        let vector = self.prepare(query);
        let mut best: Option<(UserId, f64)> = None;
        let mut tie = false;
        for user in &self.users {
            let score = self.profiles[user].similarity_vector(&vector);
            match best {
                None => best = Some((*user, score)),
                Some((_, best_score)) => {
                    if score > best_score {
                        best = Some((*user, score));
                        tie = false;
                    } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                        tie = true;
                    }
                }
            }
        }
        match best {
            Some((user, score)) if score > self.threshold && !tie => Some(user),
            _ => None,
        }
    }

    /// Attacks an OR-aggregated request (PEAS / X-SEARCH style): the
    /// adversary scores every disjunct against every profile and attributes
    /// the group to the user whose profile best matches *some* disjunct,
    /// provided the best score clears the threshold and is unique.
    ///
    /// Returns `(user, index of the disjunct believed to be that user's
    /// real query)`.
    pub fn reidentify_group(&self, disjuncts: &[&str]) -> Option<(UserId, usize)> {
        // Candidate scores per disjunct via the inverted index; pairs that
        // never appear score exactly 0 and can neither win (the threshold
        // is ≥ 0 and wins are strict) nor tie (ties require score > 0).
        let mut scored: Vec<(u32, usize, f64)> = Vec::new();
        for (i, disjunct) in disjuncts.iter().enumerate() {
            let vector = self.prepare(disjunct);
            for (user, score) in self.candidate_scores(&vector) {
                scored.push((user, i, score));
            }
        }
        // Deterministic order: user-major, then disjunct (the reference
        // nesting: profiles outer, disjuncts inner).
        scored.sort_unstable_by_key(|&(user, i, _)| (user, i));
        let mut best: Option<(u32, usize, f64)> = None;
        let mut tie = false;
        for (user, i, score) in scored {
            match best {
                None => best = Some((user, i, score)),
                Some((_, _, best_score)) => {
                    if score > best_score {
                        best = Some((user, i, score));
                        tie = false;
                    } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                        tie = true;
                    }
                }
            }
        }
        match best {
            Some((user, i, score)) if score > self.threshold && !tie => {
                Some((self.users[user as usize], i))
            }
            _ => None,
        }
    }

    /// Given a set of candidate query texts all attributed to the *same
    /// known* user (e.g. the disjuncts of an OR-obfuscated query, or a batch
    /// of real + fake queries sent under the user's own identity), returns
    /// the index of the candidate the adversary believes is the user's real
    /// query: the one most similar to the user's profile. Returns `None`
    /// when the user is unknown, the candidate list is empty, or no
    /// candidate shows any similarity to the profile.
    pub fn pick_real_query(&self, user: UserId, candidates: &[&str]) -> Option<usize> {
        let profile = self.profiles.get(&user)?;
        let mut best: Option<(usize, f64)> = None;
        for (i, candidate) in candidates.iter().enumerate() {
            let score = profile.similarity_vector(&profile.prepare(candidate));
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((i, score));
            }
        }
        match best {
            Some((i, score)) if score > 0.0 => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{Query, QueryId};
    use cyclosa_workload::generator::LabeledQuery;

    fn trace(user: u32, queries: &[&str]) -> UserTrace {
        UserTrace {
            user: UserId(user),
            queries: queries
                .iter()
                .enumerate()
                .map(|(i, q)| LabeledQuery {
                    query: Query::new(QueryId(user as u64 * 1000 + i as u64), UserId(user), *q),
                    topic: "test".to_owned(),
                    sensitive: false,
                })
                .collect(),
        }
    }

    fn adversary() -> SimAttack {
        SimAttack::from_training(&[
            trace(
                0,
                &[
                    "diabetes insulin dosage",
                    "glucose monitor reviews",
                    "insulin pump price",
                ],
            ),
            trace(
                1,
                &[
                    "cheap flights geneva",
                    "hotel booking barcelona",
                    "train zurich milan",
                ],
            ),
            trace(
                2,
                &[
                    "football league fixtures",
                    "basketball playoffs score",
                    "marathon training plan",
                ],
            ),
        ])
    }

    #[test]
    fn repeated_query_is_reidentified() {
        let attack = adversary();
        assert_eq!(attack.known_users(), 3);
        assert_eq!(
            attack.reidentify("diabetes insulin dosage"),
            Some(UserId(0))
        );
        assert_eq!(
            attack.reidentify("hotel booking barcelona"),
            Some(UserId(1))
        );
    }

    #[test]
    fn unrelated_query_is_not_attributed() {
        let attack = adversary();
        assert_eq!(attack.reidentify("quantum entanglement tutorial"), None);
        assert_eq!(attack.reidentify(""), None);
    }

    #[test]
    fn weakly_similar_query_stays_below_threshold() {
        let attack = adversary();
        // Shares a single term with user 1's profile: not confident enough.
        assert_eq!(attack.reidentify("hotel california lyrics"), None);
        assert!(
            attack
                .similarity_to(UserId(1), "hotel california lyrics")
                .unwrap()
                < 0.5
        );
    }

    #[test]
    fn index_and_scan_agree() {
        let attack = adversary();
        for query in [
            "diabetes insulin dosage",
            "hotel booking barcelona",
            "hotel california lyrics",
            "quantum entanglement tutorial",
            "insulin glucose",
            "train marathon",
            "",
            "the of and",
        ] {
            assert_eq!(
                attack.reidentify(query),
                attack.reidentify_scan(query),
                "query: {query:?}"
            );
        }
    }

    #[test]
    fn index_scores_match_profile_similarity() {
        let attack = adversary();
        for query in ["insulin glucose", "train milan", "football plan basket"] {
            let vector = attack.prepare(query);
            let scores = attack.candidate_scores(&vector);
            for (user_idx, score) in scores {
                let user = attack.users[user_idx as usize];
                let expected = attack.similarity_to(user, query).unwrap();
                assert_eq!(
                    score.to_bits(),
                    expected.to_bits(),
                    "user {user:?}, query {query:?}"
                );
            }
        }
    }

    #[test]
    fn shared_term_across_users_creates_tie_abstention() {
        // Both users' profiles are exactly the query: identical maximal
        // scores above the threshold — the attack must abstain.
        let mut attack = SimAttack::new();
        attack.learn_user(&trace(0, &["diabetes insulin"]));
        attack.learn_user(&trace(1, &["diabetes insulin"]));
        assert_eq!(attack.reidentify("diabetes insulin"), None);
        assert_eq!(attack.reidentify_scan("diabetes insulin"), None);
    }

    #[test]
    fn pick_real_query_prefers_profile_consistent_candidate() {
        let attack = adversary();
        let candidates = [
            "paella recipe easy",
            "insulin pump price",
            "concert tickets",
        ];
        assert_eq!(
            attack.pick_real_query(UserId(0), candidates.as_ref()),
            Some(1)
        );
        // Unknown user: abstain.
        assert_eq!(attack.pick_real_query(UserId(99), &["a", "b"]), None);
        // No candidate matches the profile at all: abstain.
        assert_eq!(
            attack.pick_real_query(UserId(0), &["paella recipe", "concert tickets"]),
            None
        );
        assert_eq!(attack.pick_real_query(UserId(0), &[]), None);
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        let lenient = {
            let mut a = SimAttack::with_threshold(0.05);
            a.learn_user(&trace(0, &["diabetes insulin dosage"]));
            a
        };
        // With a low threshold even a single shared term suffices.
        assert_eq!(lenient.reidentify("insulin syringes"), Some(UserId(0)));
        assert!((lenient.threshold() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn incremental_learning_extends_profiles_and_index() {
        let mut attack = SimAttack::new();
        attack.learn_user(&trace(0, &["diabetes insulin dosage"]));
        assert_eq!(attack.reidentify("glucose monitor reviews"), None);
        // Learning more queries for the same user extends the same profile.
        attack.learn_user(&trace(0, &["glucose monitor reviews"]));
        assert_eq!(attack.known_users(), 1);
        assert_eq!(
            attack.reidentify("glucose monitor reviews"),
            Some(UserId(0))
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        let _ = SimAttack::with_threshold(1.5);
    }
}
