//! The SimAttack user re-identification attack.
//!
//! Paper §VII-E, following Petit et al. (2016): the adversary holds, for
//! every user, a profile built from that user's past queries (the training
//! set). Given an intercepted query, SimAttack computes the smoothed
//! profile similarity against every user profile; if the best score exceeds
//! a confidence threshold (0.5) and a single profile attains it, the query
//! is attributed to that user.

use cyclosa_mechanism::UserId;
use cyclosa_nlp::profile::UserProfile;
use cyclosa_workload::generator::UserTrace;
use std::collections::HashMap;

/// The confidence threshold used by the paper.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// The SimAttack adversary.
#[derive(Debug, Default)]
pub struct SimAttack {
    profiles: HashMap<UserId, UserProfile>,
    threshold: f64,
}

impl SimAttack {
    /// Creates an adversary with an empty knowledge base and the default
    /// confidence threshold.
    pub fn new() -> Self {
        Self {
            profiles: HashMap::new(),
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Creates an adversary with a custom confidence threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not within `[0, 1]`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        Self {
            profiles: HashMap::new(),
            threshold,
        }
    }

    /// Builds the adversary's prior knowledge from the training traces
    /// (2/3 of each user's history in the paper's setup).
    pub fn from_training(traces: &[UserTrace]) -> Self {
        let mut attack = Self::new();
        for trace in traces {
            attack.learn_user(trace);
        }
        attack
    }

    /// Adds (or extends) the profile of one user from a training trace.
    pub fn learn_user(&mut self, trace: &UserTrace) {
        let profile = self.profiles.entry(trace.user).or_default();
        for q in &trace.queries {
            profile.record_query(&q.query.text);
        }
    }

    /// Number of user profiles known to the adversary.
    pub fn known_users(&self) -> usize {
        self.profiles.len()
    }

    /// The confidence threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The profile similarity of `query` with a specific user, if known.
    pub fn similarity_to(&self, user: UserId, query: &str) -> Option<f64> {
        self.profiles.get(&user).map(|p| p.similarity(query))
    }

    /// Attempts to re-identify the user behind an anonymous query.
    ///
    /// Returns `Some(user)` when exactly one profile scores above the
    /// threshold with the maximum similarity, `None` otherwise (no
    /// confident, unique attribution — the attack abstains).
    pub fn reidentify(&self, query: &str) -> Option<UserId> {
        let mut best: Option<(UserId, f64)> = None;
        let mut tie = false;
        for (&user, profile) in &self.profiles {
            let score = profile.similarity(query);
            match best {
                None => best = Some((user, score)),
                Some((_, best_score)) => {
                    if score > best_score {
                        best = Some((user, score));
                        tie = false;
                    } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                        tie = true;
                    }
                }
            }
        }
        match best {
            Some((user, score)) if score > self.threshold && !tie => Some(user),
            _ => None,
        }
    }

    /// Attacks an OR-aggregated request (PEAS / X-SEARCH style): the
    /// adversary scores every disjunct against every profile and attributes
    /// the group to the user whose profile best matches *some* disjunct,
    /// provided the best score clears the threshold and is unique.
    ///
    /// Returns `(user, index of the disjunct believed to be that user's
    /// real query)`.
    pub fn reidentify_group(&self, disjuncts: &[&str]) -> Option<(UserId, usize)> {
        let mut best: Option<(UserId, usize, f64)> = None;
        let mut tie = false;
        for (&user, profile) in &self.profiles {
            for (i, disjunct) in disjuncts.iter().enumerate() {
                let score = profile.similarity(disjunct);
                match best {
                    None => best = Some((user, i, score)),
                    Some((_, _, best_score)) => {
                        if score > best_score {
                            best = Some((user, i, score));
                            tie = false;
                        } else if (score - best_score).abs() < 1e-12 && score > 0.0 {
                            tie = true;
                        }
                    }
                }
            }
        }
        match best {
            Some((user, i, score)) if score > self.threshold && !tie => Some((user, i)),
            _ => None,
        }
    }

    /// Given a set of candidate query texts all attributed to the *same
    /// known* user (e.g. the disjuncts of an OR-obfuscated query, or a batch
    /// of real + fake queries sent under the user's own identity), returns
    /// the index of the candidate the adversary believes is the user's real
    /// query: the one most similar to the user's profile. Returns `None`
    /// when the user is unknown, the candidate list is empty, or no
    /// candidate shows any similarity to the profile.
    pub fn pick_real_query(&self, user: UserId, candidates: &[&str]) -> Option<usize> {
        let profile = self.profiles.get(&user)?;
        let mut best: Option<(usize, f64)> = None;
        for (i, candidate) in candidates.iter().enumerate() {
            let score = profile.similarity(candidate);
            if best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((i, score));
            }
        }
        match best {
            Some((i, score)) if score > 0.0 => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{Query, QueryId};
    use cyclosa_workload::generator::LabeledQuery;

    fn trace(user: u32, queries: &[&str]) -> UserTrace {
        UserTrace {
            user: UserId(user),
            queries: queries
                .iter()
                .enumerate()
                .map(|(i, q)| LabeledQuery {
                    query: Query::new(QueryId(user as u64 * 1000 + i as u64), UserId(user), *q),
                    topic: "test".to_owned(),
                    sensitive: false,
                })
                .collect(),
        }
    }

    fn adversary() -> SimAttack {
        SimAttack::from_training(&[
            trace(
                0,
                &[
                    "diabetes insulin dosage",
                    "glucose monitor reviews",
                    "insulin pump price",
                ],
            ),
            trace(
                1,
                &[
                    "cheap flights geneva",
                    "hotel booking barcelona",
                    "train zurich milan",
                ],
            ),
            trace(
                2,
                &[
                    "football league fixtures",
                    "basketball playoffs score",
                    "marathon training plan",
                ],
            ),
        ])
    }

    #[test]
    fn repeated_query_is_reidentified() {
        let attack = adversary();
        assert_eq!(attack.known_users(), 3);
        assert_eq!(
            attack.reidentify("diabetes insulin dosage"),
            Some(UserId(0))
        );
        assert_eq!(
            attack.reidentify("hotel booking barcelona"),
            Some(UserId(1))
        );
    }

    #[test]
    fn unrelated_query_is_not_attributed() {
        let attack = adversary();
        assert_eq!(attack.reidentify("quantum entanglement tutorial"), None);
        assert_eq!(attack.reidentify(""), None);
    }

    #[test]
    fn weakly_similar_query_stays_below_threshold() {
        let attack = adversary();
        // Shares a single term with user 1's profile: not confident enough.
        assert_eq!(attack.reidentify("hotel california lyrics"), None);
        assert!(
            attack
                .similarity_to(UserId(1), "hotel california lyrics")
                .unwrap()
                < 0.5
        );
    }

    #[test]
    fn pick_real_query_prefers_profile_consistent_candidate() {
        let attack = adversary();
        let candidates = [
            "paella recipe easy",
            "insulin pump price",
            "concert tickets",
        ];
        assert_eq!(
            attack.pick_real_query(UserId(0), candidates.as_ref()),
            Some(1)
        );
        // Unknown user: abstain.
        assert_eq!(attack.pick_real_query(UserId(99), &["a", "b"]), None);
        // No candidate matches the profile at all: abstain.
        assert_eq!(
            attack.pick_real_query(UserId(0), &["paella recipe", "concert tickets"]),
            None
        );
        assert_eq!(attack.pick_real_query(UserId(0), &[]), None);
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        let lenient = {
            let mut a = SimAttack::with_threshold(0.05);
            a.learn_user(&trace(0, &["diabetes insulin dosage"]));
            a
        };
        // With a low threshold even a single shared term suffices.
        assert_eq!(lenient.reidentify("insulin syringes"), Some(UserId(0)));
        assert!((lenient.threshold() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        let _ = SimAttack::with_threshold(1.5);
    }
}
