//! `cyclosa-runtime` — the population-scale execution engine of the
//! CYCLOSA reproduction.
//!
//! The paper evaluates CYCLOSA with ~100 nodes; the roadmap targets
//! millions. This crate provides the two pieces that make that jump
//! possible:
//!
//! * [`shard`] — [`shard::ShardedEngine`], a deterministic parallel
//!   discrete-event engine. Nodes are partitioned across worker shards by
//!   `NodeId` hash, each shard runs on its own thread, and shards
//!   synchronize with a conservative time-window barrier sized by the
//!   minimum link-latency floor. Executions are bit-identical to the
//!   sequential `cyclosa_net::sim::Simulation` for the same seed, for any
//!   shard count — so every experiment can scale out without changing its
//!   results. The whole fault surface of the `Engine` trait rides along:
//!   membership events (join/leave/crash/recover) are local to the owning
//!   shard, while the global and link-group loss schedules (loss storms,
//!   network partitions) are replicated to every shard and evaluated as
//!   pure functions of send time — so even a partition boundary that cuts
//!   across shard boundaries cannot break bit-identity.
//! * [`metrics`] — counters, gauges and log-linear latency histograms with
//!   p50/p95/p99 export, cheap enough to thread through relay forwarding,
//!   enclave transitions and search-engine queries on the hot path.
//!
//! The deterministic tracing layer (`cyclosa-telemetry`) is re-exported
//! as [`telemetry`]: install a [`telemetry::TraceSink`] with
//! [`shard::ShardedEngine::set_trace_sink`] and the engine folds buffered
//! trace events into the merged timeline at each window barrier;
//! [`shard::ShardedEngine::enable_profiling`] registers per-shard
//! self-profiling instruments (event-class throughput, mailbox depth,
//! barrier-stall wall time) in a metrics [`Registry`].
//!
//! Both engines implement [`cyclosa_net::engine::Engine`]; behaviours
//! written against `cyclosa_net::sim::NodeBehavior` run unchanged on
//! either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod shard;

pub use cyclosa_net::engine::Engine;
pub use cyclosa_telemetry as telemetry;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use shard::{shard_of, EngineConfigError, ShardedEngine};
