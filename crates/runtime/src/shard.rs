//! The sharded parallel discrete-event engine.
//!
//! [`ShardedEngine`] partitions nodes across worker shards by `NodeId`
//! hash ([`shard_of`]) and runs each shard's event loop on its own thread.
//! Shards synchronize through a **conservative time-window barrier**: the
//! window width is the minimum latency floor across all configured link
//! models (the *lookahead*), so a message sent during a window can never be
//! due for delivery inside the same window — every shard can therefore
//! process its window in parallel without ever seeing an event out of
//! order.
//!
//! Within a window each shard pops events in [`EventKey`] order; messages
//! to nodes on other shards are collected into per-shard-pair FIFO
//! mailboxes and merged into the destination heaps at the barrier.
//! Because event keys and all link randomness are deterministic (see
//! `cyclosa_net::engine`), an execution is **bit-identical to the
//! sequential [`Simulation`](cyclosa_net::sim::Simulation) for the same
//! seed, for any shard count**.
//!
//! ```
//! use cyclosa_net::engine::Engine;
//! use cyclosa_net::sim::{Context, Envelope, NodeBehavior};
//! use cyclosa_net::time::SimTime;
//! use cyclosa_net::NodeId;
//! use cyclosa_runtime::shard::ShardedEngine;
//!
//! struct Echo;
//! impl NodeBehavior for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
//!         if envelope.tag == 0 {
//!             ctx.send(envelope.src, 1, envelope.payload);
//!         }
//!     }
//! }
//!
//! let mut engine = ShardedEngine::new(7, 4);
//! engine.add_node(NodeId(1), Box::new(Echo));
//! engine.add_node(NodeId(2), Box::new(Echo));
//! engine.post(SimTime::ZERO, NodeId(1), NodeId(2), 0, b"ping".to_vec());
//! engine.run();
//! assert_eq!(engine.stats().delivered, 2);
//! ```

use crate::metrics::{Counter, Gauge, Histogram, Registry};
use cyclosa_net::engine::{
    Engine, EventClass, EventKey, EventKind, LinkGroupSchedule, LinkTable, LossSchedule,
    MembershipChange, MembershipLedger, ScheduledEvent,
};
use cyclosa_net::latency::LatencyModel;
use cyclosa_net::sim::{Action, Context, Envelope, NodeBehavior, SimulationStats};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_telemetry::TraceSink;
use cyclosa_util::det::{DetHashMap, DetHashSet};
use cyclosa_util::rng::{Rng, SplitMix64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

/// The shard that owns `node` in an engine with `shards` shards.
///
/// Uses a SplitMix64 hash of the id so that dense id ranges spread evenly.
/// Nodes joining mid-run hash exactly like seed nodes — membership never
/// changes the partitioning function.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (SplitMix64::new(node.0).next_u64() % shards as u64) as usize
}

/// A configuration the sharded engine cannot execute.
///
/// Returned by the fallible construction/validation surface
/// ([`ShardedEngine::try_new`], [`ShardedEngine::validate`],
/// [`ShardedEngine::try_run`]); the infallible [`Engine`] methods panic
/// with the same message instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineConfigError {
    /// The engine was asked for zero worker shards.
    ZeroShards,
    /// Some configured latency model has no positive floor, so no
    /// conservative window width is safe (a zero-latency link admits
    /// same-instant cross-shard deliveries that cannot be ordered
    /// deterministically).
    ZeroLatencyFloor {
        /// The offending model.
        model: LatencyModel,
    },
}

impl std::fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineConfigError::ZeroShards => write!(f, "an engine needs at least one shard"),
            EngineConfigError::ZeroLatencyFloor { model } => write!(
                f,
                "sharded execution requires every configured latency model to have a \
                 positive floor (a zero-latency link admits same-instant cross-shard \
                 deliveries, which no conservative window can order deterministically); \
                 {model:?} has floor 0 — use the sequential Simulation for zero-latency \
                 topologies"
            ),
        }
    }
}

impl std::error::Error for EngineConfigError {}

/// Per-shard self-profiling instruments, registered by
/// [`ShardedEngine::enable_profiling`]. All handles are cheap clones into
/// a shared [`Registry`]; recording is wall-clock observability only and
/// never touches simulation state.
#[derive(Clone)]
struct ShardProfile {
    deliver: Counter,
    timer: Counter,
    membership: Counter,
    mailbox_depth: Gauge,
    barrier_stall_ns: Histogram,
}

impl ShardProfile {
    fn new(registry: &Registry, index: usize) -> Self {
        let name = |metric: &str| format!("engine.shard{index}.{metric}");
        Self {
            deliver: registry.counter(&name("deliver")),
            timer: registry.counter(&name("timer")),
            membership: registry.counter(&name("membership")),
            mailbox_depth: registry.gauge(&name("mailbox_depth")),
            barrier_stall_ns: registry.histogram(&name("barrier_stall_ns")),
        }
    }

    /// Waits at `barrier`, recording the wall time spent stalled.
    fn wait_timed(&self, barrier: &Barrier) {
        #[allow(clippy::disallowed_methods)]
        // cyclosa-lint: allow(wall_clock, reason = "profiling-only barrier-stall stopwatch; the reading feeds a metrics histogram and never touches simulated state")
        let start = Instant::now();
        barrier.wait();
        self.barrier_stall_ns
            .record(start.elapsed().as_nanos() as u64);
    }
}

fn wait(barrier: &Barrier, profile: Option<&ShardProfile>) {
    match profile {
        Some(profile) => profile.wait_timed(barrier),
        None => {
            barrier.wait();
        }
    }
}

/// One shard: a slice of the node population plus everything needed to run
/// their events locally (heap, per-link state for links originating here,
/// timer sequences, statistics).
struct Shard {
    index: usize,
    num_shards: usize,
    nodes: DetHashMap<NodeId, Box<dyn NodeBehavior + Send>>,
    crashed: DetHashSet<NodeId>,
    queue: BinaryHeap<Reverse<ScheduledEvent>>,
    links: LinkTable,
    default_latency: LatencyModel,
    link_latency: DetHashMap<(NodeId, NodeId), LatencyModel>,
    loss: LossSchedule,
    link_loss: LinkGroupSchedule,
    timer_sequences: DetHashMap<NodeId, u64>,
    membership: MembershipLedger<Box<dyn NodeBehavior + Send>>,
    clock: SimTime,
    processed: u64,
    stats: SimulationStats,
    profile: Option<ShardProfile>,
}

impl Shard {
    fn new(index: usize, num_shards: usize, seed: u64) -> Self {
        Self {
            index,
            num_shards,
            nodes: DetHashMap::default(),
            crashed: DetHashSet::default(),
            queue: BinaryHeap::new(),
            links: LinkTable::new(seed),
            default_latency: LatencyModel::wan(),
            link_latency: DetHashMap::default(),
            loss: LossSchedule::new(),
            link_loss: LinkGroupSchedule::new(),
            timer_sequences: DetHashMap::default(),
            membership: MembershipLedger::new(),
            clock: SimTime::ZERO,
            processed: 0,
            stats: SimulationStats::default(),
            profile: None,
        }
    }

    fn link_model(&self, src: NodeId, dst: NodeId) -> LatencyModel {
        self.link_latency
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_latency)
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(event)| event.key.at)
    }

    /// Turns one send into a scheduled delivery (or a loss). Must run on
    /// the shard owning `envelope.src` so the per-link state is touched in
    /// the sender's deterministic order.
    fn prepare_send(&mut self, at: SimTime, envelope: Envelope) -> Option<ScheduledEvent> {
        let model = self.link_model(envelope.src, envelope.dst);
        // Every shard evaluates the same replicated schedules at the same
        // deterministic send times, so the partition boundary crossing
        // shard boundaries cannot break bit-identity.
        let loss = self
            .link_loss
            .combined(self.loss.at(at), at, envelope.src, envelope.dst);
        match self
            .links
            .prepare(at, envelope.src, envelope.dst, model, loss)
        {
            None => {
                self.stats.lost += 1;
                None
            }
            Some((deliver_at, sequence)) => Some(ScheduledEvent {
                key: EventKey {
                    at: deliver_at,
                    node: envelope.dst,
                    class: EventClass::Deliver,
                    a: envelope.src.0,
                    b: sequence,
                },
                kind: EventKind::Deliver(envelope),
            }),
        }
    }

    fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        let sequence = self.timer_sequences.entry(node).or_insert(0);
        let key = EventKey {
            at,
            node,
            class: EventClass::Timer,
            a: *sequence,
            b: token,
        };
        *sequence += 1;
        self.queue.push(Reverse(ScheduledEvent {
            key,
            kind: EventKind::Timer { token },
        }));
    }

    fn schedule_membership(&mut self, at: SimTime, node: NodeId, change: MembershipChange) {
        let key = self.membership.next_key(at, node, change);
        self.queue.push(Reverse(ScheduledEvent {
            key,
            kind: EventKind::Membership(change),
        }));
    }

    /// Processes every local event strictly before `end`, appending
    /// cross-shard deliveries to `outgoing[dst_shard]`.
    fn process_window(&mut self, end: SimTime, outgoing: &mut [Vec<ScheduledEvent>]) {
        let mut actions = Vec::new();
        while let Some(Reverse(event)) = self.queue.peek() {
            if event.key.at >= end {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked above");
            let at = event.key.at;
            let node = event.key.node;
            self.clock = at;
            self.processed += 1;
            if let Some(profile) = &self.profile {
                match &event.kind {
                    EventKind::Deliver(_) => profile.deliver.inc(),
                    EventKind::Timer { .. } => profile.timer.inc(),
                    EventKind::Membership(_) => profile.membership.inc(),
                }
            }
            match event.kind {
                EventKind::Deliver(envelope) => {
                    if self.crashed.contains(&node) || !self.nodes.contains_key(&node) {
                        self.stats.dropped_dead += 1;
                    } else {
                        self.stats.delivered += 1;
                        self.stats.bytes_delivered += envelope.payload.len() as u64;
                        let mut ctx = Context::new(at, node, &mut actions);
                        self.nodes
                            .get_mut(&node)
                            .expect("checked above")
                            .on_message(&mut ctx, envelope);
                    }
                }
                EventKind::Timer { token } => {
                    if !self.crashed.contains(&node) && self.nodes.contains_key(&node) {
                        self.stats.timers_fired += 1;
                        let mut ctx = Context::new(at, node, &mut actions);
                        self.nodes
                            .get_mut(&node)
                            .expect("checked above")
                            .on_timer(&mut ctx, token);
                    }
                }
                EventKind::Membership(change) => match change {
                    MembershipChange::Join => {
                        if let Some(behavior) = self.membership.take_join(node, event.key.a) {
                            self.nodes.insert(node, behavior);
                            self.crashed.remove(&node);
                            self.stats.joined += 1;
                        }
                    }
                    MembershipChange::Leave => {
                        self.nodes.remove(&node);
                        self.crashed.remove(&node);
                        self.stats.left += 1;
                    }
                    MembershipChange::Crash => {
                        self.crashed.insert(node);
                        self.stats.crashed += 1;
                    }
                    MembershipChange::Recover => {
                        self.crashed.remove(&node);
                        self.stats.recovered += 1;
                    }
                },
            }
            for action in actions.drain(..) {
                match action {
                    Action::Send(envelope) => {
                        if let Some(event) = self.prepare_send(at, envelope) {
                            let dst_shard = shard_of(event.key.node, self.num_shards);
                            if dst_shard == self.index {
                                self.queue.push(Reverse(event));
                            } else {
                                outgoing[dst_shard].push(event);
                            }
                        }
                    }
                    Action::Timer { node, delay, token } => {
                        self.schedule_timer(at + delay, node, token);
                    }
                }
            }
        }
    }
}

/// The sharded parallel engine. See the module documentation for the
/// synchronization scheme and determinism argument.
pub struct ShardedEngine {
    shards: Vec<Shard>,
    clock: SimTime,
    trace: TraceSink,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("clock", &self.clock)
            .field(
                "nodes",
                &self.shards.iter().map(|s| s.nodes.len()).sum::<usize>(),
            )
            .finish()
    }
}

impl ShardedEngine {
    /// Creates an engine with `shards` worker shards, seeded with `seed`.
    ///
    /// With `shards == 1` the engine degenerates to a single worker and is
    /// still bit-identical to the sequential simulator.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero. Use [`ShardedEngine::try_new`] for a
    /// typed error instead.
    pub fn new(seed: u64, shards: usize) -> Self {
        Self::try_new(seed, shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an engine with `shards` worker shards, seeded with `seed`,
    /// returning [`EngineConfigError::ZeroShards`] instead of panicking on
    /// an empty worker pool.
    ///
    /// # Errors
    ///
    /// Fails when `shards` is zero.
    pub fn try_new(seed: u64, shards: usize) -> Result<Self, EngineConfigError> {
        if shards == 0 {
            return Err(EngineConfigError::ZeroShards);
        }
        Ok(Self {
            shards: (0..shards).map(|i| Shard::new(i, shards, seed)).collect(),
            clock: SimTime::ZERO,
            trace: TraceSink::disabled(),
        })
    }

    /// Installs a trace sink. Behaviours emit into (clones of) the same
    /// sink; the engine's contribution is to fold buffered events into
    /// the merged timeline at each window barrier, once every shard has
    /// finished the window — so the merged prefix is always complete and
    /// export needs no end-of-run sort. When the sink has a windowed span
    /// rollup enabled (`TraceSink::enable_span_rollup`), each barrier
    /// fold also merges that window's span durations into per-window
    /// quantile sketches; sketch merges are associative, so the rollup is
    /// bit-identical to the sequential engine's one-shot fold. Purely
    /// observational: installing a sink never changes the execution.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Registers per-shard self-profiling instruments in `registry`:
    /// `engine.shard<i>.deliver` / `.timer` / `.membership` event-class
    /// throughput counters, an `engine.shard<i>.mailbox_depth` gauge
    /// (cross-shard events merged per window), and an
    /// `engine.shard<i>.barrier_stall_ns` wall-clock histogram of time
    /// spent waiting at window barriers — the shard-imbalance signal.
    /// Wall time flows only into metrics, never into the deterministic
    /// trace.
    pub fn enable_profiling(&mut self, registry: &Registry) {
        for shard in &mut self.shards {
            shard.profile = Some(ShardProfile::new(registry, shard.index));
        }
    }

    /// Checks that the current latency configuration admits a positive
    /// conservative lookahead, i.e. that the engine can actually run.
    ///
    /// # Errors
    ///
    /// Returns [`EngineConfigError::ZeroLatencyFloor`] naming the first
    /// configured model whose floor is zero.
    pub fn validate(&self) -> Result<(), EngineConfigError> {
        let shard = &self.shards[0];
        if shard.default_latency.floor() == SimTime::ZERO {
            return Err(EngineConfigError::ZeroLatencyFloor {
                model: shard.default_latency,
            });
        }
        for model in shard.link_latency.values() {
            if model.floor() == SimTime::ZERO {
                return Err(EngineConfigError::ZeroLatencyFloor { model: *model });
            }
        }
        Ok(())
    }

    /// Runs until no events remain, like [`Engine::run`], but returns the
    /// configuration error instead of panicking when the latency
    /// configuration admits no safe window.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedEngine::validate`] failures.
    pub fn try_run(&mut self) -> Result<u64, EngineConfigError> {
        self.validate()?;
        Ok(self.run_windows(None))
    }

    /// Runs until the clock reaches `deadline`, like [`Engine::run_until`],
    /// but with a typed configuration error.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedEngine::validate`] failures.
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<(), EngineConfigError> {
        self.validate()?;
        self.run_windows(Some(deadline));
        self.clock = self.clock.max(deadline);
        Ok(())
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.len()).sum()
    }

    /// The conservative lookahead: the smallest latency floor of any
    /// configured link model. A cross-shard message can never arrive
    /// earlier than its send time plus this bound, which is what makes a
    /// window of this width safe to process in parallel.
    ///
    /// A zero lookahead (some link has no latency floor, e.g.
    /// `Constant(SimTime::ZERO)`) means a message can arrive *at the time
    /// it is sent*: no window width is safe, the execution cannot be
    /// partitioned, and [`Engine::run`] panics rather than silently
    /// diverge from the sequential simulator. Every built-in model family
    /// used by the experiments has a positive floor.
    pub fn lookahead(&self) -> SimTime {
        let shard = &self.shards[0];
        let mut lookahead = shard.default_latency.floor();
        for model in shard.link_latency.values() {
            lookahead = lookahead.min(model.floor());
        }
        lookahead
    }

    fn shard_mut(&mut self, node: NodeId) -> &mut Shard {
        let index = shard_of(node, self.shards.len());
        &mut self.shards[index]
    }

    fn run_windows(&mut self, deadline: Option<SimTime>) -> u64 {
        let lookahead = self.lookahead();
        debug_assert!(
            lookahead > SimTime::ZERO,
            "callers must validate() before running windows"
        );
        let num_shards = self.shards.len();
        let processed_before: u64 = self.shards.iter().map(|s| s.processed).sum();

        let barrier = Barrier::new(num_shards);
        let next_times: Vec<AtomicU64> =
            (0..num_shards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let window_end = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let mailboxes: Vec<Vec<Mutex<Vec<ScheduledEvent>>>> = (0..num_shards)
            .map(|_| (0..num_shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect();

        {
            let barrier = &barrier;
            let next_times = &next_times;
            let window_end = &window_end;
            let done = &done;
            let mailboxes = &mailboxes;
            let trace = &self.trace;
            std::thread::scope(|scope| {
                for shard in self.shards.iter_mut() {
                    scope.spawn(move || {
                        let index = shard.index;
                        let profile = shard.profile.clone();
                        let mut outgoing: Vec<Vec<ScheduledEvent>> =
                            (0..num_shards).map(|_| Vec::new()).collect();
                        loop {
                            let next = shard.next_event_time().map_or(u64::MAX, |t| t.as_nanos());
                            next_times[index].store(next, Ordering::SeqCst);
                            wait(barrier, profile.as_ref());
                            if index == 0 {
                                let start = next_times
                                    .iter()
                                    .map(|t| t.load(Ordering::SeqCst))
                                    .min()
                                    .expect("at least one shard");
                                let past_deadline = deadline
                                    .is_some_and(|d| start != u64::MAX && start > d.as_nanos());
                                if start == u64::MAX || past_deadline {
                                    done.store(true, Ordering::SeqCst);
                                } else {
                                    let mut end =
                                        start.saturating_add(lookahead.as_nanos()).max(start + 1);
                                    if let Some(d) = deadline {
                                        // Events at exactly the deadline must
                                        // still run (run_until is inclusive).
                                        end = end.min(d.as_nanos() + 1);
                                    }
                                    window_end.store(end, Ordering::SeqCst);
                                }
                            }
                            wait(barrier, profile.as_ref());
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                            let end = SimTime::from_nanos(window_end.load(Ordering::SeqCst));
                            shard.process_window(end, &mut outgoing);
                            for (dst, events) in outgoing.iter_mut().enumerate() {
                                if !events.is_empty() {
                                    mailboxes[index][dst]
                                        .lock()
                                        .expect("mailbox poisoned")
                                        .append(events);
                                }
                            }
                            wait(barrier, profile.as_ref());
                            if index == 0 {
                                // Every shard finished the window at the
                                // barrier above, so all trace events with
                                // `at < end` are buffered; later windows
                                // only emit events at `end` or beyond
                                // (lookahead bound), so this merged prefix
                                // is final. The other shards drain their
                                // mailboxes concurrently, which emits
                                // nothing.
                                trace.merge_up_to(end);
                            }
                            let mut merged_in = 0usize;
                            for row in mailboxes.iter() {
                                let mut inbox = row[index].lock().expect("mailbox poisoned");
                                merged_in += inbox.len();
                                for event in inbox.drain(..) {
                                    shard.queue.push(Reverse(event));
                                }
                            }
                            if let Some(profile) = &profile {
                                profile.mailbox_depth.set(merged_in as i64);
                            }
                            // The next round's first barrier orders these
                            // drains before anyone reads next_times again.
                        }
                    });
                }
            });
        }

        self.clock = self
            .shards
            .iter()
            .map(|s| s.clock)
            .max()
            .unwrap_or(self.clock)
            .max(self.clock);
        self.shards.iter().map(|s| s.processed).sum::<u64>() - processed_before
    }
}

impl Engine for ShardedEngine {
    fn add_node(&mut self, id: NodeId, behavior: Box<dyn NodeBehavior + Send>) {
        self.shard_mut(id).nodes.insert(id, behavior);
    }

    fn set_default_latency(&mut self, model: LatencyModel) {
        for shard in &mut self.shards {
            shard.default_latency = model;
        }
    }

    fn set_link_latency(&mut self, src: NodeId, dst: NodeId, model: LatencyModel) {
        for shard in &mut self.shards {
            shard.link_latency.insert((src, dst), model);
        }
    }

    fn set_loss_probability(&mut self, p: f64) {
        for shard in &mut self.shards {
            shard.loss.set_base(p);
        }
    }

    fn crash(&mut self, node: NodeId) {
        self.shard_mut(node).crashed.insert(node);
    }

    fn recover(&mut self, node: NodeId) {
        self.shard_mut(node).crashed.remove(&node);
    }

    fn schedule_join(&mut self, at: SimTime, node: NodeId, behavior: Box<dyn NodeBehavior + Send>) {
        // Joined nodes hash to shards exactly like seed nodes; the whole
        // membership event is local to the owning shard and rides that
        // shard's windows in total event order.
        let shard = self.shard_mut(node);
        let key = shard.membership.next_key(at, node, MembershipChange::Join);
        shard.membership.stash_join(node, key.a, behavior);
        shard.queue.push(Reverse(ScheduledEvent {
            key,
            kind: EventKind::Membership(MembershipChange::Join),
        }));
    }

    fn schedule_leave(&mut self, at: SimTime, node: NodeId) {
        self.shard_mut(node)
            .schedule_membership(at, node, MembershipChange::Leave);
    }

    fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.shard_mut(node)
            .schedule_membership(at, node, MembershipChange::Crash);
    }

    fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.shard_mut(node)
            .schedule_membership(at, node, MembershipChange::Recover);
    }

    fn schedule_loss_probability(&mut self, at: SimTime, p: f64) {
        for shard in &mut self.shards {
            shard.loss.schedule(at, p);
        }
    }

    fn schedule_link_loss(&mut self, at: SimTime, src_set: &[NodeId], dst_set: &[NodeId], p: f64) {
        // Replicated like the global loss schedule: link-group loss is a
        // pure function of send time, and sends are prepared on the
        // sender's shard against the shared schedule.
        for shard in &mut self.shards {
            shard.link_loss.schedule(at, src_set, dst_set, p);
        }
    }

    fn post(&mut self, at: SimTime, src: NodeId, dst: NodeId, tag: u32, payload: Vec<u8>) {
        let envelope = Envelope {
            src,
            dst,
            tag,
            payload,
        };
        // Link state lives with the sender's shard; the event itself goes
        // to the destination's shard.
        if let Some(event) = self.shard_mut(src).prepare_send(at, envelope) {
            let dst_shard = shard_of(dst, self.shards.len());
            self.shards[dst_shard].queue.push(Reverse(event));
        }
    }

    fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        self.shard_mut(node).schedule_timer(at, node, token);
    }

    fn now(&self) -> SimTime {
        self.clock
    }

    fn run(&mut self) -> u64 {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    fn run_until(&mut self, deadline: SimTime) {
        self.try_run_until(deadline)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn stats(&self) -> SimulationStats {
        let mut total = SimulationStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_net::sim::Simulation;
    use std::sync::Arc;

    type SharedTrace = Arc<Mutex<std::collections::BTreeMap<NodeId, Vec<(u64, u32)>>>>;

    /// Records `(time, tag)` per receiving node through a shared map.
    #[derive(Clone)]
    struct Recorder {
        log: SharedTrace,
    }

    impl Recorder {
        fn new() -> Self {
            Self {
                log: Arc::new(Mutex::new(std::collections::BTreeMap::new())),
            }
        }
        fn take(&self) -> std::collections::BTreeMap<NodeId, Vec<(u64, u32)>> {
            std::mem::take(&mut self.log.lock().unwrap())
        }
    }

    impl NodeBehavior for Recorder {
        fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
            self.log
                .lock()
                .unwrap()
                .entry(ctx.self_id())
                .or_default()
                .push((ctx.now().as_nanos(), envelope.tag));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.log
                .lock()
                .unwrap()
                .entry(ctx.self_id())
                .or_default()
                .push((ctx.now().as_nanos(), token as u32));
        }
    }

    /// Forwards each message to a pseudo-random next hop, decrementing a
    /// TTL in the tag's upper bits — generates chatty cross-shard traffic.
    struct Forwarder {
        population: u64,
        reporter: NodeId,
        recorder: Recorder,
    }

    impl NodeBehavior for Forwarder {
        fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
            self.recorder.on_message(ctx, envelope.clone());
            let ttl = envelope.tag >> 16;
            if ttl == 0 {
                ctx.send(self.reporter, envelope.tag & 0xFFFF, envelope.payload);
                return;
            }
            let me = ctx.self_id().0;
            let next = NodeId(
                (me.wrapping_mul(6364136223846793005)
                    .wrapping_add(envelope.tag as u64))
                    % self.population,
            );
            ctx.send(
                next,
                ((ttl - 1) << 16) | (envelope.tag & 0xFFFF),
                envelope.payload,
            );
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
            self.recorder.on_timer(ctx, token);
        }
    }

    fn mesh_trace(
        engine: &mut dyn Engine,
        population: u64,
    ) -> std::collections::BTreeMap<NodeId, Vec<(u64, u32)>> {
        let recorder = Recorder::new();
        let reporter = NodeId(population);
        for id in 0..population {
            engine.add_node(
                NodeId(id),
                Box::new(Forwarder {
                    population,
                    reporter,
                    recorder: recorder.clone(),
                }),
            );
        }
        engine.add_node(reporter, Box::new(recorder.clone()));
        engine.crash(NodeId(3));
        for i in 0..40u32 {
            let src = NodeId(1000 + i as u64);
            let dst = NodeId(i as u64 % population);
            engine.post(
                SimTime::from_millis(i as u64 * 3),
                src,
                dst,
                (5 << 16) | i,
                vec![0u8; 16],
            );
        }
        for i in 0..10u64 {
            engine.schedule_timer(
                SimTime::from_millis(100 + i),
                NodeId(i % population),
                7_000 + i,
            );
        }
        engine.run();
        recorder.take()
    }

    #[test]
    fn sharded_execution_is_bit_identical_to_sequential() {
        let mut sequential = Simulation::new(42);
        let expected = mesh_trace(&mut sequential, 25);
        assert!(!expected.is_empty());
        for shards in [1, 2, 4, 8] {
            let mut engine = ShardedEngine::new(42, shards);
            let observed = mesh_trace(&mut engine, 25);
            assert_eq!(observed, expected, "trace diverged with {shards} shards");
            assert_eq!(Engine::stats(&engine), Engine::stats(&sequential));
        }
    }

    #[test]
    fn sharded_loss_matches_sequential() {
        let run = |engine: &mut dyn Engine| {
            engine.set_loss_probability(0.25);
            let recorder = Recorder::new();
            for id in 0..10 {
                engine.add_node(NodeId(id), Box::new(recorder.clone()));
            }
            for i in 0..500u32 {
                engine.post(
                    SimTime::from_millis(i as u64),
                    NodeId(100 + (i % 7) as u64),
                    NodeId((i % 10) as u64),
                    i,
                    vec![],
                );
            }
            engine.run();
            (recorder.take(), engine.stats())
        };
        let mut sequential = Simulation::new(9);
        let expected = run(&mut sequential);
        assert!(expected.1.lost > 50);
        let mut sharded = ShardedEngine::new(9, 4);
        assert_eq!(run(&mut sharded), expected);
    }

    #[test]
    fn run_until_is_inclusive_and_resumable() {
        let recorder = Recorder::new();
        let mut engine = ShardedEngine::new(5, 3);
        engine.set_default_latency(LatencyModel::Constant(SimTime::from_millis(10)));
        engine.add_node(NodeId(1), Box::new(recorder.clone()));
        engine.post(SimTime::ZERO, NodeId(0), NodeId(1), 1, vec![]);
        engine.post(SimTime::from_secs(10), NodeId(0), NodeId(1), 2, vec![]);
        engine.run_until(SimTime::from_secs(1));
        assert_eq!(engine.now(), SimTime::from_secs(1));
        assert_eq!(recorder.log.lock().unwrap()[&NodeId(1)].len(), 1);
        engine.run();
        assert_eq!(recorder.take()[&NodeId(1)].len(), 2);
    }

    #[test]
    fn lookahead_tracks_the_slowest_floor() {
        let mut engine = ShardedEngine::new(1, 2);
        engine.set_default_latency(LatencyModel::Constant(SimTime::from_millis(40)));
        assert_eq!(engine.lookahead(), SimTime::from_millis(40));
        engine.set_link_latency(
            NodeId(0),
            NodeId(1),
            LatencyModel::Uniform {
                low: SimTime::from_millis(2),
                high: SimTime::from_millis(9),
            },
        );
        assert_eq!(engine.lookahead(), SimTime::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(1, 0);
    }

    #[test]
    fn try_new_reports_zero_shards_as_typed_error() {
        assert_eq!(
            ShardedEngine::try_new(1, 0).err(),
            Some(EngineConfigError::ZeroShards)
        );
        assert!(ShardedEngine::try_new(1, 2).is_ok());
    }

    #[test]
    fn validate_and_try_run_report_zero_floor_as_typed_error() {
        let mut engine = ShardedEngine::new(1, 2);
        assert!(engine.validate().is_ok());
        engine.set_link_latency(NodeId(0), NodeId(1), LatencyModel::Constant(SimTime::ZERO));
        let expected = EngineConfigError::ZeroLatencyFloor {
            model: LatencyModel::Constant(SimTime::ZERO),
        };
        assert_eq!(engine.validate(), Err(expected));
        assert_eq!(engine.try_run().err(), Some(expected));
        assert_eq!(
            engine.try_run_until(SimTime::from_secs(1)).err(),
            Some(expected)
        );
        assert!(expected.to_string().contains("positive floor"));
    }

    #[test]
    fn scheduled_membership_matches_sequential_with_mixed_traffic() {
        let run = |engine: &mut dyn Engine| {
            let recorder = Recorder::new();
            for id in 0..12 {
                engine.add_node(NodeId(id), Box::new(recorder.clone()));
            }
            // Node 3 crashes and recovers; node 5 leaves; node 20 joins.
            engine.schedule_crash(SimTime::from_millis(120), NodeId(3));
            engine.schedule_recover(SimTime::from_millis(320), NodeId(3));
            engine.schedule_leave(SimTime::from_millis(200), NodeId(5));
            engine.schedule_join(
                SimTime::from_millis(250),
                NodeId(20),
                Box::new(recorder.clone()),
            );
            for i in 0..400u32 {
                engine.post(
                    SimTime::from_millis(i as u64),
                    NodeId(100 + (i % 3) as u64),
                    NodeId((i % 21) as u64),
                    i,
                    vec![],
                );
            }
            engine.run();
            (recorder.take(), engine.stats())
        };
        let mut sequential = Simulation::new(33);
        let expected = run(&mut sequential);
        assert_eq!(expected.1.crashed, 1);
        assert_eq!(expected.1.recovered, 1);
        assert_eq!(expected.1.left, 1);
        assert_eq!(expected.1.joined, 1);
        assert!(
            expected.0.contains_key(&NodeId(20)),
            "joined node got traffic"
        );
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedEngine::new(33, shards);
            assert_eq!(run(&mut sharded), expected, "diverged with {shards} shards");
        }
    }

    #[test]
    fn partition_crossing_shard_boundaries_matches_sequential() {
        // A 70/30 split whose boundary cuts across every shard (dense ids
        // hash all over the shard space): scheduled link-group loss must
        // reproduce the sequential run bit for bit on 1/2/4/8 shards.
        let run = |engine: &mut dyn Engine| {
            let recorder = Recorder::new();
            let population = 20u64;
            for id in 0..population {
                engine.add_node(NodeId(id), Box::new(recorder.clone()));
            }
            let minority: Vec<NodeId> = (0..6).map(NodeId).collect();
            let majority: Vec<NodeId> = (6..population).map(NodeId).collect();
            let split = SimTime::from_millis(300);
            let merge = SimTime::from_millis(900);
            engine.schedule_link_loss(split, &minority, &majority, 1.0);
            engine.schedule_link_loss(split, &majority, &minority, 1.0);
            engine.schedule_link_loss(merge, &minority, &majority, 0.0);
            engine.schedule_link_loss(merge, &majority, &minority, 0.0);
            for i in 0..600u32 {
                engine.post(
                    SimTime::from_millis(i as u64 * 2),
                    NodeId((i % 20) as u64),
                    NodeId(((i * 7 + 3) % 20) as u64),
                    i,
                    vec![0u8; 4],
                );
            }
            engine.run();
            (recorder.take(), engine.stats())
        };
        let mut sequential = Simulation::new(71);
        let expected = run(&mut sequential);
        assert!(expected.1.lost > 0, "the split must swallow traffic");
        assert!(expected.1.delivered > 0);
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedEngine::new(71, shards);
            assert_eq!(
                run(&mut sharded),
                expected,
                "partitioned run diverged with {shards} shards"
            );
        }
    }

    #[test]
    fn profiling_and_tracing_do_not_perturb_execution() {
        use crate::metrics::Registry;
        use cyclosa_telemetry::TraceSink;

        let mut plain = ShardedEngine::new(42, 4);
        let expected = mesh_trace(&mut plain, 25);

        let registry = Registry::new();
        let sink = TraceSink::enabled();
        let mut observed_engine = ShardedEngine::new(42, 4);
        observed_engine.enable_profiling(&registry);
        observed_engine.set_trace_sink(sink.clone());
        let observed = mesh_trace(&mut observed_engine, 25);

        assert_eq!(observed, expected, "instrumentation changed the run");
        assert_eq!(Engine::stats(&observed_engine), Engine::stats(&plain));

        let snapshot = registry.snapshot();
        let total_delivers: u64 = snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.ends_with(".deliver"))
            .map(|(_, value)| value)
            .sum();
        assert_eq!(
            total_delivers,
            Engine::stats(&plain).delivered + Engine::stats(&plain).dropped_dead
        );
        assert!(
            snapshot
                .histograms
                .iter()
                .any(|(name, h)| name.ends_with(".barrier_stall_ns") && h.count > 0),
            "barrier stalls recorded"
        );
        // Nothing in this workload emits trace events, but the sink
        // stayed installed and mergeable throughout.
        assert!(sink.events().is_empty());
    }

    /// Sharded runs fold the windowed span rollup barrier by barrier;
    /// the sequential engine folds everything at export. Both must yield
    /// bit-identical sketches, for any shard count.
    #[test]
    fn barrier_merged_span_rollup_matches_sequential() {
        use cyclosa_telemetry::{TraceEvent, TraceSink};

        /// Emits a span per delivered message, then forwards like the
        /// mesh workload so traffic crosses shards.
        struct SpanEmitter {
            population: u64,
            sink: TraceSink,
        }
        impl NodeBehavior for SpanEmitter {
            fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
                self.sink.emit(
                    TraceEvent::new(ctx.now(), ctx.self_id().0, "hop")
                        .span(SimTime::from_micros(envelope.tag as u64 % 900 + 100)),
                );
                let ttl = envelope.tag >> 16;
                if ttl == 0 {
                    return;
                }
                let me = ctx.self_id().0;
                let next = NodeId(
                    (me.wrapping_mul(6364136223846793005)
                        .wrapping_add(envelope.tag as u64))
                        % self.population,
                );
                ctx.send(
                    next,
                    ((ttl - 1) << 16) | (envelope.tag & 0xFFFF),
                    envelope.payload,
                );
            }
        }

        let window = SimTime::from_millis(20);
        let run = |engine: &mut dyn Engine, sink: &TraceSink| {
            sink.enable_span_rollup(window);
            let population = 16u64;
            for id in 0..population {
                engine.add_node(
                    NodeId(id),
                    Box::new(SpanEmitter {
                        population,
                        sink: sink.clone(),
                    }),
                );
            }
            for i in 0..60u32 {
                engine.post(
                    SimTime::from_millis(i as u64 * 2),
                    NodeId(1000),
                    NodeId(i as u64 % population),
                    (6 << 16) | i,
                    vec![0u8; 8],
                );
            }
            engine.run();
            (sink.events(), sink.span_rollup())
        };

        let sequential_sink = TraceSink::enabled();
        let mut sequential = Simulation::new(9);
        let expected = run(&mut sequential, &sequential_sink);
        assert!(!expected.1.is_empty(), "workload produced no spans");
        assert!(expected.1.len() > 1, "spans must cover several windows");
        for shards in [1, 2, 4, 8] {
            let sink = TraceSink::enabled();
            let mut engine = ShardedEngine::new(9, shards);
            engine.set_trace_sink(sink.clone());
            let observed = run(&mut engine, &sink);
            assert_eq!(
                observed.0, expected.0,
                "timeline diverged with {shards} shards"
            );
            assert_eq!(
                observed.1, expected.1,
                "span rollup diverged with {shards} shards"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive floor")]
    fn zero_latency_links_are_rejected_rather_than_misordered() {
        // A zero-latency link admits same-instant cross-shard deliveries,
        // which would silently break the bit-identity contract — the
        // engine must refuse instead.
        let mut engine = ShardedEngine::new(1, 2);
        engine.set_default_latency(LatencyModel::Constant(SimTime::ZERO));
        engine.add_node(NodeId(0), Box::new(Recorder::new()));
        engine.post(SimTime::ZERO, NodeId(1), NodeId(0), 1, vec![]);
        engine.run();
    }
}
