//! Lightweight, thread-safe metrics: counters, gauges and log-linear
//! latency histograms with percentile export.
//!
//! Every handle is a cheap [`Arc`]-backed clone, so the same counter can be
//! incremented from node behaviours running on different shards of the
//! parallel engine without contention beyond an atomic add. Histograms use
//! log-linear bucketing (32 linear sub-buckets per power of two, ≤ 3.2 %
//! relative error), the classic HDR layout, so recording is a single atomic
//! increment and p50/p95/p99 export is exact to bucket resolution.
//!
//! Metrics are observability, not simulation state: recording never draws
//! randomness and never feeds back into scheduling, so instrumented runs
//! remain bit-identical to uninstrumented ones.

use cyclosa_net::time::SimTime;
use cyclosa_telemetry::QuantileSketch;
use cyclosa_util::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of linear sub-buckets per power of two (and the precision bits).
const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Bucket count covering the full `u64` range at this precision.
const BUCKETS: usize = ((64 - SUB_BUCKET_BITS) as usize + 1) * SUB_BUCKETS as usize;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a free-standing counter (not attached to a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a free-standing gauge (not attached to a registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log-linear histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BUCKET_BITS;
    let slot = (value >> shift) & (SUB_BUCKETS - 1);
    ((shift as usize + 1) * SUB_BUCKETS as usize) + slot as usize
}

fn bucket_low(index: usize) -> u64 {
    let sub = SUB_BUCKETS as usize;
    if index < sub {
        return index as u64;
    }
    let shift = (index / sub - 1) as u32;
    let slot = (index % sub) as u64;
    (SUB_BUCKETS + slot) << shift
}

impl Histogram {
    /// Creates a free-standing histogram (not attached to a registry).
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Self {
            core: Arc::new(HistogramCore {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let core = &self.core;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a simulated duration in nanoseconds.
    pub fn record_time(&self, t: SimTime) {
        self.record(t.as_nanos());
    }

    /// Records a duration given in (non-negative, finite) seconds, stored
    /// at nanosecond resolution.
    pub fn record_secs_f64(&self, seconds: f64) {
        if seconds.is_finite() && seconds >= 0.0 {
            self.record((seconds * 1e9).round() as u64);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Converts the histogram's dense atomic buckets into a mergeable
    /// [`QuantileSketch`]. The sketch shares the exact bucket layout, so
    /// recording each bucket's low value `count` times lands in the same
    /// bucket index: quantiles of the sketch equal quantiles of the
    /// histogram exactly (the sketch's `sum`/`min`/`max` are to bucket
    /// resolution, not exact). This is how per-shard histograms roll up:
    /// sketch each, merge associatively, query once.
    pub fn sketch(&self) -> QuantileSketch {
        let mut sketch = QuantileSketch::new();
        for (i, bucket) in self.core.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            if count > 0 {
                sketch.record_n(bucket_low(i), count);
            }
        }
        sketch
    }

    /// The estimated value at quantile `q` (clamped to `[0, 1]`), to
    /// bucket resolution. Returns 0 on an empty histogram. Backed by the
    /// mergeable sketch; falls back to the true recorded max when the
    /// rank walk runs past the last bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count() == 0 {
            return 0;
        }
        self.sketch().quantile(q.clamp(0.0, 1.0))
    }

    /// A consistent point-in-time summary of the histogram. Percentiles
    /// are computed from one sketch conversion.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sketch = self.sketch();
        HistogramSnapshot {
            count,
            sum: self.core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.core.min.load(Ordering::Relaxed)
            },
            max: self.core.max.load(Ordering::Relaxed),
            p50: sketch.quantile(0.50),
            p95: sketch.quantile(0.95),
            p99: sketch.quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`] (all values in the recorded
/// unit, conventionally nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median, to bucket resolution.
    pub p50: u64,
    /// 95th percentile, to bucket resolution.
    pub p95: u64,
    /// 99th percentile, to bucket resolution.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".to_owned(), Json::U64(self.count)),
            ("sum".to_owned(), Json::U64(self.sum)),
            ("min".to_owned(), Json::U64(self.min)),
            ("max".to_owned(), Json::U64(self.max)),
            ("mean".to_owned(), Json::F64(self.mean())),
            ("p50".to_owned(), Json::U64(self.p50)),
            ("p95".to_owned(), Json::U64(self.p95)),
            ("p99".to_owned(), Json::U64(self.p99)),
        ])
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} p50={} p95={} p99={} min={} max={}",
            self.count,
            format_ns(self.p50),
            format_ns(self.p95),
            format_ns(self.p99),
            format_ns(self.min),
            format_ns(self.max),
        )
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics.
///
/// Cloning a registry clones a handle to the same underlying metrics, so a
/// registry can be handed to every subsystem of a deployment and read out
/// once at the end.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time snapshot of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        let object = |fields: Vec<(String, Json)>| Json::Obj(fields);
        Json::Obj(vec![
            (
                "counters".to_owned(),
                object(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::U64(*value)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                object(
                    self.gauges
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::I64(*value)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                object(
                    self.histograms
                        .iter()
                        .map(|(name, snapshot)| (name.clone(), snapshot.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name:<40} {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "{name:<40} {value}")?;
        }
        for (name, snapshot) in &self.histograms {
            writeln!(f, "{name:<40} {snapshot}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_covers_u64() {
        let mut last = None;
        for value in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "index {index} out of range for {value}");
            assert!(bucket_low(index) <= value);
            if let Some((prev_value, prev_index)) = last {
                assert!(index >= prev_index, "{value} < {prev_value:?} bucket order");
            }
            last = Some((value, index));
        }
        // Relative error bound: the bucket low is within 1/32 of the value.
        for value in [100u64, 12_345, 999_999_999, 7_777_777_777] {
            let low = bucket_low(bucket_index(value));
            assert!((value - low) as f64 / value as f64 <= 1.0 / 32.0 + 1e-12);
        }
    }

    #[test]
    fn histogram_percentiles_match_uniform_data() {
        let histogram = Histogram::new();
        for value in 1..=10_000u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 10_000);
        assert_eq!(snapshot.min, 1);
        assert_eq!(snapshot.max, 10_000);
        let relative = |observed: u64, expected: f64| (observed as f64 - expected).abs() / expected;
        assert!(
            relative(snapshot.p50, 5_000.0) < 0.05,
            "p50 = {}",
            snapshot.p50
        );
        assert!(
            relative(snapshot.p95, 9_500.0) < 0.05,
            "p95 = {}",
            snapshot.p95
        );
        assert!(
            relative(snapshot.p99, 9_900.0) < 0.05,
            "p99 = {}",
            snapshot.p99
        );
        assert!((snapshot.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let histogram = Histogram::new();
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 0);
        assert_eq!(snapshot.p50, 0);
        assert_eq!(snapshot.min, 0);
    }

    #[test]
    fn counters_and_gauges_are_shared_through_the_registry() {
        let registry = Registry::new();
        let a = registry.counter("relay.forwarded");
        let b = registry.counter("relay.forwarded");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("relay.forwarded").get(), 3);
        let gauge = registry.gauge("queue.depth");
        gauge.set(5);
        gauge.add(-2);
        assert_eq!(registry.gauge("queue.depth").get(), 3);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let histogram = Histogram::new();
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let histogram = histogram.clone();
                let counter = counter.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        histogram.record(t * 10_000 + i);
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(histogram.count(), 40_000);
        assert_eq!(counter.get(), 40_000);
    }

    #[test]
    fn snapshot_is_sorted_and_displays() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").inc();
        registry.histogram("latency").record_secs_f64(0.5);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters[0].0, "alpha");
        assert_eq!(snapshot.counters[1].0, "zeta");
        assert_eq!(snapshot.histograms[0].1.count, 1);
        let text = snapshot.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("latency"));
    }

    #[test]
    fn snapshot_exports_as_json() {
        let registry = Registry::new();
        registry.counter("queries.clamped").add(2);
        registry.gauge("depth").set(-1);
        registry.histogram("latency_ns").record(1_000);
        let json = registry.snapshot().to_json().pretty();
        assert!(json.contains("\"queries.clamped\": 2"));
        assert!(json.contains("\"depth\": -1"));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"mean\":"));
    }

    /// Seeded property test: per-shard histograms sketched and merged in
    /// any grouping are bit-identical to the sketch of one histogram that
    /// saw every sample — and their quantiles match the histogram's own.
    #[test]
    fn sketch_merge_is_associative_and_shard_identical() {
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let samples: Vec<u64> = (0..4_000).map(|_| next() % 5_000_000_000).collect();
        let global = Histogram::new();
        for &s in &samples {
            global.record(s);
        }
        for shards in [1usize, 2, 4, 8] {
            // Round-robin the sample stream over per-shard histograms, the
            // way per-shard metrics see an interleaved workload.
            let per_shard: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
            for (i, &s) in samples.iter().enumerate() {
                per_shard[i % shards].record(s);
            }
            // Left fold and reverse fold of the per-shard sketches.
            let mut forward = QuantileSketch::new();
            for h in &per_shard {
                forward.merge(&h.sketch());
            }
            let mut backward = QuantileSketch::new();
            for h in per_shard.iter().rev() {
                backward.merge(&h.sketch());
            }
            assert_eq!(
                forward, backward,
                "{shards} shards: merge order changed the sketch"
            );
            assert_eq!(
                forward,
                global.sketch(),
                "{shards} shards: rollup diverged from global"
            );
            assert_eq!(
                forward.to_json().pretty(),
                global.sketch().to_json().pretty(),
                "{shards} shards: serialized bytes diverged"
            );
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(forward.quantile(q), global.quantile(q));
            }
        }
    }

    #[test]
    fn record_secs_rounds_to_nanoseconds() {
        let histogram = Histogram::new();
        histogram.record_secs_f64(1.5);
        histogram.record_time(SimTime::from_millis(500));
        assert_eq!(histogram.count(), 2);
        let snapshot = histogram.snapshot();
        assert!(snapshot.max >= 1_400_000_000, "max {}", snapshot.max);
    }
}
