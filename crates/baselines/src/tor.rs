//! TOR-style onion routing (paper §II-A1, Fig. 1).
//!
//! The query is wrapped in three layers of encryption, one per relay; each
//! relay peels its layer and forwards the rest, and the exit node submits
//! the plaintext query to the search engine on behalf of the user. The
//! engine therefore sees the exact query text but not the user's identity —
//! unlinkability without indistinguishability.

use cyclosa_crypto::aead::{AeadError, ChaCha20Poly1305};
use cyclosa_crypto::hkdf;
use cyclosa_mechanism::{
    Mechanism, MechanismProperties, ObservedRequest, ProtectionOutcome, Query, ResultsDelivery,
    SourceIdentity,
};
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};

/// Number of relays in a standard circuit.
pub const CIRCUIT_LENGTH: usize = 3;

/// A TOR-like circuit: an ordered list of per-hop symmetric keys
/// (established in the real protocol through telescoping Diffie–Hellman;
/// the key-exchange machinery lives in `cyclosa-crypto` and is exercised by
/// the CYCLOSA core crate, so the circuit model here focuses on the onion
/// layering itself).
#[derive(Debug, Clone)]
pub struct OnionCircuit {
    hop_keys: Vec<[u8; 32]>,
}

impl OnionCircuit {
    /// Builds a circuit of `hops` relays with keys derived from fresh
    /// randomness.
    pub fn build<R: Rng + ?Sized>(hops: usize, rng: &mut R) -> Self {
        assert!(hops >= 1, "a circuit needs at least one hop");
        let hop_keys = (0..hops)
            .map(|i| {
                let seed: [u8; 32] = rng.gen_bytes();
                hkdf::derive_key(b"tor-hop-key", &seed, &[i as u8])
            })
            .collect();
        Self { hop_keys }
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hop_keys.len()
    }

    /// Returns `true` for an empty circuit (never constructed by `build`).
    pub fn is_empty(&self) -> bool {
        self.hop_keys.is_empty()
    }

    /// Wraps a payload in one encryption layer per hop (innermost layer is
    /// the exit node's).
    pub fn wrap(&self, payload: &[u8]) -> Vec<u8> {
        let mut onion = payload.to_vec();
        for (i, key) in self.hop_keys.iter().enumerate().rev() {
            let aead = ChaCha20Poly1305::new(key);
            onion = aead.seal(&hop_nonce(i), &onion, b"onion-layer");
        }
        onion
    }

    /// Peels the layer of hop `hop` (0 = entry relay). Returns the inner
    /// onion (or the plaintext payload at the exit node).
    ///
    /// # Errors
    ///
    /// Returns an error if the layer does not authenticate (tampering or
    /// wrong relay).
    pub fn peel(&self, hop: usize, onion: &[u8]) -> Result<Vec<u8>, AeadError> {
        let aead = ChaCha20Poly1305::new(&self.hop_keys[hop]);
        aead.open(&hop_nonce(hop), onion, b"onion-layer")
    }

    /// Convenience: peels all layers in order, as the relays would.
    pub fn peel_all(&self, onion: &[u8]) -> Result<Vec<u8>, AeadError> {
        let mut current = onion.to_vec();
        for hop in 0..self.hop_keys.len() {
            current = self.peel(hop, &current)?;
        }
        Ok(current)
    }
}

fn hop_nonce(hop: usize) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[0] = hop as u8;
    nonce
}

/// The TOR baseline mechanism.
#[derive(Debug, Default, Clone, Copy)]
pub struct Tor;

impl Tor {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Mechanism for Tor {
    fn name(&self) -> &'static str {
        "TOR"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            unlinkability: true,
            indistinguishability: false,
            accuracy: true,
            scalability: true,
        }
    }

    fn protect(&mut self, query: &Query, rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
        // Exercise the full onion path: wrap at the client, peel at each
        // relay, and hand the plaintext to the engine from the exit node.
        let circuit = OnionCircuit::build(CIRCUIT_LENGTH, rng);
        let onion = circuit.wrap(query.text.as_bytes());
        let plaintext = circuit
            .peel_all(&onion)
            .expect("honest relays peel correctly");
        let text = String::from_utf8(plaintext).expect("query text is UTF-8");
        ProtectionOutcome {
            observed: vec![ObservedRequest {
                source: SourceIdentity::Anonymous,
                text,
                carries_real_query: true,
            }],
            delivery: ResultsDelivery::ExactQuery,
            // client → entry → middle → exit, plus the response path.
            relay_messages: (CIRCUIT_LENGTH as u32) * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{QueryId, UserId};

    #[test]
    fn onion_wrap_and_peel_roundtrip() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let circuit = OnionCircuit::build(3, &mut rng);
        assert_eq!(circuit.len(), 3);
        let onion = circuit.wrap(b"what is the tallest mountain in switzerland");
        // Each layer strictly shrinks towards the payload.
        let after_entry = circuit.peel(0, &onion).unwrap();
        assert!(after_entry.len() < onion.len());
        let after_middle = circuit.peel(1, &after_entry).unwrap();
        let payload = circuit.peel(2, &after_middle).unwrap();
        assert_eq!(payload, b"what is the tallest mountain in switzerland");
        assert_eq!(circuit.peel_all(&onion).unwrap(), payload);
    }

    #[test]
    fn relays_cannot_peel_out_of_order() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let circuit = OnionCircuit::build(3, &mut rng);
        let onion = circuit.wrap(b"secret");
        // The middle relay cannot remove the entry relay's layer.
        assert!(circuit.peel(1, &onion).is_err());
        assert!(circuit.peel(2, &onion).is_err());
    }

    #[test]
    fn tampered_onion_is_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let circuit = OnionCircuit::build(2, &mut rng);
        let mut onion = circuit.wrap(b"secret");
        onion[0] ^= 1;
        assert!(circuit.peel(0, &onion).is_err());
    }

    #[test]
    fn tor_hides_identity_but_not_content() {
        let mut tor = Tor::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let q = Query::new(QueryId(1), UserId(3), "hiv test anonymous clinic");
        let outcome = tor.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 1);
        assert_eq!(outcome.exposed_requests(), 0);
        assert_eq!(outcome.observed[0].text, q.text);
        assert_eq!(outcome.delivery, ResultsDelivery::ExactQuery);
        assert!(outcome.relay_messages >= 6);
        assert!(tor.properties().unlinkability);
        assert!(!tor.properties().indistinguishability);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_circuit_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let _ = OnionCircuit::build(0, &mut rng);
    }
}
