//! TrackMeNot (paper §II-A2, Fig. 2a).
//!
//! A browser extension that periodically sends fake queries to the engine
//! under the user's own identity, hoping to drown the real interests in
//! noise. The fake queries are built from RSS feeds — i.e. from trending,
//! generic vocabulary — which is exactly why the paper's adversary separates
//! them from the user's real queries so easily (45 % re-identification).

use cyclosa_mechanism::{
    Mechanism, MechanismProperties, ObservedRequest, ProtectionOutcome, Query, ResultsDelivery,
    SourceIdentity,
};
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};

/// The TrackMeNot baseline.
#[derive(Debug, Clone)]
pub struct TrackMeNot {
    /// Fake queries sent per real query (the extension actually sends them
    /// on a timer; averaging them per real query keeps the adversary model
    /// identical).
    fakes_per_query: usize,
    /// The RSS-feed-like pool fake queries are drawn from.
    feed: Vec<String>,
}

impl TrackMeNot {
    /// Creates the baseline with `fakes_per_query` fakes drawn from `feed`.
    ///
    /// # Panics
    ///
    /// Panics if the feed is empty.
    pub fn new(fakes_per_query: usize, feed: Vec<String>) -> Self {
        assert!(!feed.is_empty(), "TrackMeNot needs a non-empty RSS feed");
        Self {
            fakes_per_query,
            feed,
        }
    }

    /// Creates the baseline with the default rate of 3 fakes per query.
    pub fn with_feed(feed: Vec<String>) -> Self {
        Self::new(3, feed)
    }

    /// The fake-query pool.
    pub fn feed(&self) -> &[String] {
        &self.feed
    }
}

impl Mechanism for TrackMeNot {
    fn name(&self) -> &'static str {
        "TRACKMENOT"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            unlinkability: false,
            indistinguishability: true,
            accuracy: true,
            scalability: true,
        }
    }

    fn protect(&mut self, query: &Query, rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
        let mut observed = Vec::with_capacity(self.fakes_per_query + 1);
        observed.push(ObservedRequest {
            source: SourceIdentity::Exposed(query.user),
            text: query.text.clone(),
            carries_real_query: true,
        });
        for _ in 0..self.fakes_per_query {
            let fake = rng.choose(&self.feed).expect("feed is non-empty").clone();
            observed.push(ObservedRequest {
                source: SourceIdentity::Exposed(query.user),
                text: fake,
                carries_real_query: false,
            });
        }
        ProtectionOutcome {
            observed,
            // The real query is sent verbatim and answered directly, so the
            // user's results are exact.
            delivery: ResultsDelivery::ExactQuery,
            relay_messages: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{QueryId, UserId};

    fn feed() -> Vec<String> {
        vec![
            "celebrity gossip premiere".to_owned(),
            "football transfer news".to_owned(),
            "netflix series trailer".to_owned(),
        ]
    }

    #[test]
    fn sends_real_query_plus_fakes_under_own_identity() {
        let mut tmn = TrackMeNot::with_feed(feed());
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let q = Query::new(QueryId(1), UserId(4), "bankruptcy filing procedure");
        let outcome = tmn.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 4);
        assert_eq!(outcome.exposed_requests(), 4);
        assert_eq!(
            outcome
                .observed
                .iter()
                .filter(|r| r.carries_real_query)
                .count(),
            1
        );
        assert_eq!(outcome.delivery, ResultsDelivery::ExactQuery);
        // Fakes come from the feed.
        for fake in outcome.observed.iter().filter(|r| !r.carries_real_query) {
            assert!(tmn.feed().contains(&fake.text));
        }
    }

    #[test]
    fn zero_fakes_degenerates_to_direct_search() {
        let mut tmn = TrackMeNot::new(0, feed());
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let q = Query::new(QueryId(1), UserId(4), "a query");
        assert_eq!(tmn.protect(&q, &mut rng).engine_requests(), 1);
    }

    #[test]
    fn properties_match_table_one() {
        let tmn = TrackMeNot::with_feed(feed());
        let p = tmn.properties();
        assert!(!p.unlinkability);
        assert!(p.indistinguishability);
        assert!(p.accuracy);
        assert!(p.scalability);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_feed_rejected() {
        let _ = TrackMeNot::with_feed(vec![]);
    }
}
