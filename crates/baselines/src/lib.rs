//! The state-of-the-art private Web-search mechanisms CYCLOSA is compared
//! against (paper §II-A, §VII-A).
//!
//! Every baseline implements [`cyclosa_mechanism::Mechanism`], so the
//! Fig. 5 (re-identification), Fig. 6 (accuracy) and Fig. 8 (system)
//! experiments can drive them interchangeably with CYCLOSA itself:
//!
//! * [`direct`] — unprotected search (the "Direct" curve of Fig. 8a).
//! * [`tor`] — onion routing through three relays: unlinkability without
//!   indistinguishability, with the full layered-encryption circuit
//!   implemented over `cyclosa-crypto`.
//! * [`trackmenot`] — the TrackMeNot browser extension: periodic fake
//!   queries generated from RSS-like trending feeds, identity exposed.
//! * [`goopir`] — GooPIR: the real query is OR-aggregated with `k`
//!   dictionary-drawn fake queries, identity exposed, client-side filtering.
//! * [`peas`] — PEAS: a non-colluding proxy/issuer pair; the issuer builds
//!   fake queries from a co-occurrence matrix of past queries and
//!   OR-aggregates them; identity hidden by the proxy.
//! * [`xsearch`] — X-SEARCH: an SGX-protected proxy that obfuscates with
//!   previously seen real queries and filters answers before returning
//!   them; identity hidden by the proxy.
//! * [`latency`] — closed-form end-to-end latency models for the baselines,
//!   calibrated to the medians of Fig. 8a.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod direct;
pub mod goopir;
pub mod latency;
pub mod peas;
pub mod tor;
pub mod trackmenot;
pub mod xsearch;

pub use direct::DirectSearch;
pub use goopir::GooPir;
pub use peas::Peas;
pub use tor::Tor;
pub use trackmenot::TrackMeNot;
pub use xsearch::XSearch;
