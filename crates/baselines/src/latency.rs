//! Closed-form end-to-end latency models for the baselines (Fig. 8a).
//!
//! The latency of one protected query is the sum of the link latencies along
//! its path plus the engine's processing time. These helpers sample those
//! sums from the calibrated models of `cyclosa-net`; the CYCLOSA path itself
//! is produced by the core crate's deployment model so that it includes the
//! enclave transition costs.

use cyclosa_net::latency::LatencyModel;
use cyclosa_net::time::SimTime;
use cyclosa_util::rng::Rng;

/// The latency models of the evaluation testbed.
#[derive(Debug, Clone, Copy)]
pub struct LatencyProfile {
    /// Client ↔ relay and relay ↔ engine links (residential peers).
    pub wan: LatencyModel,
    /// Client ↔ proxy and proxy ↔ engine links for the centralized
    /// X-SEARCH proxy, which runs in a well-connected data centre and is
    /// therefore a bit faster per hop than a residential CYCLOSA relay
    /// (the paper measures 0.577 s vs 0.876 s medians).
    pub proxy_wan: LatencyModel,
    /// One TOR overlay hop.
    pub tor_hop: LatencyModel,
    /// Engine processing time per request.
    pub engine: LatencyModel,
}

impl Default for LatencyProfile {
    fn default() -> Self {
        Self {
            wan: LatencyModel::wan(),
            proxy_wan: LatencyModel::LogNormal {
                median_ms: 95.0,
                sigma: 0.3,
            },
            tor_hop: LatencyModel::tor_hop(),
            engine: LatencyModel::search_engine_processing(),
        }
    }
}

impl LatencyProfile {
    /// Direct search: client → engine → client.
    pub fn direct<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        self.wan.sample(rng) + self.engine.sample(rng) + self.wan.sample(rng)
    }

    /// TOR: three overlay hops each way plus the engine round trip from the
    /// exit node.
    pub fn tor<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        let mut total = SimTime::ZERO;
        for _ in 0..3 {
            total += self.tor_hop.sample(rng);
        }
        total += self.wan.sample(rng) + self.engine.sample(rng) + self.wan.sample(rng);
        for _ in 0..3 {
            total += self.tor_hop.sample(rng);
        }
        total
    }

    /// X-SEARCH: client → proxy → engine → proxy → client, plus the proxy's
    /// in-enclave processing time.
    pub fn xsearch<R: Rng + ?Sized>(&self, rng: &mut R, proxy_processing: SimTime) -> SimTime {
        self.proxy_wan.sample(rng)
            + proxy_processing
            + self.proxy_wan.sample(rng)
            + self.engine.sample(rng)
            + self.proxy_wan.sample(rng)
            + self.proxy_wan.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;
    use cyclosa_util::stats::Summary;

    fn medians(samples: impl Iterator<Item = f64>) -> f64 {
        Summary::from_samples(&samples.collect::<Vec<_>>()).median
    }

    #[test]
    fn direct_is_sub_second_at_the_median() {
        let profile = LatencyProfile::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let median = medians((0..2000).map(|_| profile.direct(&mut rng).as_secs_f64()));
        assert!(median > 0.2 && median < 1.0, "direct median {median}");
    }

    #[test]
    fn tor_is_orders_of_magnitude_slower() {
        let profile = LatencyProfile::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let tor = medians((0..500).map(|_| profile.tor(&mut rng).as_secs_f64()));
        let direct = medians((0..500).map(|_| profile.direct(&mut rng).as_secs_f64()));
        assert!(tor > 20.0, "tor median {tor}");
        assert!(tor / direct > 10.0, "tor should be at least 10x slower");
    }

    #[test]
    fn xsearch_sits_between_direct_and_a_second() {
        let profile = LatencyProfile::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let xs = medians((0..2000).map(|_| {
            profile
                .xsearch(&mut rng, SimTime::from_micros(50))
                .as_secs_f64()
        }));
        let direct = medians((0..2000).map(|_| profile.direct(&mut rng).as_secs_f64()));
        assert!(xs > direct, "xsearch {xs} should exceed direct {direct}");
        assert!(xs < 1.5, "xsearch median {xs}");
    }
}
