//! X-SEARCH (paper §II-A2, Fig. 2d).
//!
//! X-SEARCH routes queries through a single SGX-protected proxy. Inside its
//! enclave, the proxy keeps a table of previously seen (real) queries, picks
//! `k` of them as fakes, OR-aggregates them with the incoming query and
//! forwards the aggregate to the engine under the proxy's identity. The
//! proxy then filters the merged answers before returning them to the user.
//!
//! Compared to PEAS the fakes are more plausible (they are real past
//! queries), but all user queries of the deployment still funnel through
//! one proxy identity — the scalability and rate-limiting weakness that
//! motivates CYCLOSA's decentralization.

use cyclosa_mechanism::{
    Mechanism, MechanismProperties, ObservedRequest, ProtectionOutcome, Query, ResultsDelivery,
    SourceIdentity,
};
use cyclosa_sgx::enclave::{Enclave, Platform};
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};

/// The state the X-SEARCH proxy keeps inside its enclave.
#[derive(Debug, Default)]
struct ProxyState {
    past_queries: Vec<String>,
}

/// The X-SEARCH baseline.
#[derive(Debug)]
pub struct XSearch {
    k: usize,
    max_table: usize,
    enclave: Enclave<ProxyState>,
}

impl XSearch {
    /// Creates the proxy with `k` fake queries per request, hosted on a
    /// simulated SGX platform.
    pub fn new(k: usize, platform: &Platform) -> Self {
        let mut enclave = platform.create_enclave(b"xsearch-proxy/1.0", ProxyState::default());
        enclave.initialize().expect("fresh enclave initializes");
        Self {
            k,
            max_table: 10_000,
            enclave,
        }
    }

    /// Creates the proxy on a default platform (convenience for tests and
    /// benchmarks).
    pub fn with_default_platform(k: usize) -> Self {
        Self::new(k, &Platform::new(0xE5EA))
    }

    /// Seeds the in-enclave table of past queries.
    pub fn seed_with_queries<'a>(&mut self, queries: impl IntoIterator<Item = &'a str>) {
        let queries: Vec<String> = queries.into_iter().map(|q| q.to_owned()).collect();
        let max_table = self.max_table;
        self.enclave
            .ecall(queries.iter().map(|q| q.len()).sum(), move |state| {
                for q in queries {
                    state.past_queries.push(q);
                    if state.past_queries.len() > max_table {
                        state.past_queries.remove(0);
                    }
                }
            })
            .expect("enclave is initialized");
        self.refresh_epc_accounting();
    }

    /// The configured number of fake queries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of past queries currently stored in the enclave.
    pub fn table_len(&mut self) -> usize {
        self.enclave
            .ecall(0, |state| state.past_queries.len())
            .expect("enclave is initialized")
            .0
    }

    /// Simulated nanoseconds spent inside the enclave so far.
    pub fn enclave_time_ns(&self) -> u64 {
        self.enclave.stats().simulated_ns
    }

    fn refresh_epc_accounting(&mut self) {
        let bytes = self
            .enclave
            .ecall(0, |state| {
                state
                    .past_queries
                    .iter()
                    .map(|q| q.len() + 24)
                    .sum::<usize>()
            })
            .expect("enclave is initialized")
            .0;
        self.enclave.set_resident_bytes(bytes);
    }
}

impl Mechanism for XSearch {
    fn name(&self) -> &'static str {
        "X-SEARCH"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            unlinkability: true,
            indistinguishability: true,
            accuracy: false,
            scalability: false,
        }
    }

    fn protect(&mut self, query: &Query, rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
        let k = self.k;
        let text = query.text.clone();
        let max_table = self.max_table;
        // All obfuscation happens inside the proxy enclave.
        let (disjuncts, _cost) = self
            .enclave
            .ecall(text.len() + 256, |state| {
                let mut disjuncts = vec![text.clone()];
                if !state.past_queries.is_empty() {
                    for _ in 0..k {
                        let pick = rng.gen_index(state.past_queries.len());
                        disjuncts.push(state.past_queries[pick].clone());
                    }
                }
                state.past_queries.push(text.clone());
                if state.past_queries.len() > max_table {
                    state.past_queries.remove(0);
                }
                disjuncts
            })
            .expect("enclave is initialized");
        self.refresh_epc_accounting();
        let mut disjuncts = disjuncts;
        rng.shuffle(&mut disjuncts);
        let aggregated = disjuncts.join(" OR ");
        ProtectionOutcome {
            observed: vec![ObservedRequest {
                source: SourceIdentity::Anonymous,
                text: aggregated.clone(),
                carries_real_query: true,
            }],
            delivery: ResultsDelivery::FilteredFromObfuscated {
                obfuscated_query: aggregated,
            },
            // client → proxy and back.
            relay_messages: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{QueryId, UserId};

    fn seeded_xsearch(k: usize) -> XSearch {
        let mut xs = XSearch::with_default_platform(k);
        xs.seed_with_queries([
            "cheap flights geneva",
            "diabetes insulin dosage",
            "football league fixtures",
            "mortgage refinance rates",
            "netflix series trailer",
        ]);
        xs
    }

    #[test]
    fn obfuscates_with_past_queries_and_hides_identity() {
        let mut xs = seeded_xsearch(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let q = Query::new(QueryId(1), UserId(5), "church service times");
        let outcome = xs.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 1);
        assert_eq!(outcome.exposed_requests(), 0);
        let disjuncts: Vec<&str> = outcome.observed[0].text.split(" OR ").collect();
        assert_eq!(disjuncts.len(), 4);
        assert!(disjuncts.contains(&"church service times"));
        // Fakes are drawn from the seeded table.
        let table = [
            "cheap flights geneva",
            "diabetes insulin dosage",
            "football league fixtures",
            "mortgage refinance rates",
            "netflix series trailer",
        ];
        for d in disjuncts.iter().filter(|d| **d != "church service times") {
            assert!(table.contains(d), "fake {d} not from the table");
        }
    }

    #[test]
    fn processed_queries_enter_the_table() {
        let mut xs = seeded_xsearch(2);
        let before = xs.table_len();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let q = Query::new(QueryId(1), UserId(5), "new unique query");
        xs.protect(&q, &mut rng);
        assert_eq!(xs.table_len(), before + 1);
        assert!(xs.enclave_time_ns() > 0);
    }

    #[test]
    fn unseeded_proxy_sends_plain_query_first() {
        let mut xs = XSearch::with_default_platform(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let q = Query::new(QueryId(1), UserId(5), "first query ever");
        let outcome = xs.protect(&q, &mut rng);
        assert_eq!(outcome.observed[0].text, "first query ever");
        assert_eq!(xs.k(), 3);
    }

    #[test]
    fn properties_match_table_one() {
        let p = XSearch::with_default_platform(3).properties();
        assert!(p.unlinkability && p.indistinguishability && !p.accuracy && !p.scalability);
    }
}
