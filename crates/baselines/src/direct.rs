//! Unprotected ("direct") Web search: the no-privacy baseline.

use cyclosa_mechanism::{
    Mechanism, MechanismProperties, ObservedRequest, ProtectionOutcome, Query, ResultsDelivery,
    SourceIdentity,
};
use cyclosa_util::rng::Xoshiro256StarStar;

/// Direct search: the query goes straight to the engine under the user's
/// own identity.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectSearch;

impl DirectSearch {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Mechanism for DirectSearch {
    fn name(&self) -> &'static str {
        "DIRECT"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            unlinkability: false,
            indistinguishability: false,
            accuracy: true,
            scalability: true,
        }
    }

    fn protect(&mut self, query: &Query, _rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
        ProtectionOutcome {
            observed: vec![ObservedRequest {
                source: SourceIdentity::Exposed(query.user),
                text: query.text.clone(),
                carries_real_query: true,
            }],
            delivery: ResultsDelivery::ExactQuery,
            relay_messages: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{QueryId, UserId};

    #[test]
    fn direct_search_exposes_everything() {
        let mut direct = DirectSearch::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let q = Query::new(QueryId(1), UserId(9), "late night pharmacy geneva");
        let outcome = direct.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 1);
        assert_eq!(outcome.exposed_requests(), 1);
        assert_eq!(outcome.observed[0].text, q.text);
        assert!(outcome.observed[0].carries_real_query);
        assert_eq!(outcome.delivery, ResultsDelivery::ExactQuery);
        let props = direct.properties();
        assert!(!props.unlinkability && !props.indistinguishability);
        assert!(props.accuracy && props.scalability);
    }
}
