//! GooPIR (paper §II-A2, Fig. 2b).
//!
//! GooPIR obfuscates each query by OR-aggregating it with `k` fake queries
//! drawn from a dictionary, and sends the aggregate under the user's own
//! identity. The client then filters the merged result list, keeping the
//! entries that contain terms of the original query — which both loses
//! genuine results and lets foreign ones through (Fig. 6).

use cyclosa_mechanism::{
    Mechanism, MechanismProperties, ObservedRequest, ProtectionOutcome, Query, ResultsDelivery,
    SourceIdentity,
};
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};

/// The GooPIR baseline.
#[derive(Debug, Clone)]
pub struct GooPir {
    k: usize,
    dictionary: Vec<String>,
}

impl GooPir {
    /// Creates the baseline with `k` fake queries per real query, drawn
    /// from `dictionary` (a flat list of terms).
    ///
    /// # Panics
    ///
    /// Panics if the dictionary has fewer than two terms.
    pub fn new(k: usize, dictionary: Vec<String>) -> Self {
        assert!(dictionary.len() >= 2, "GooPIR needs a dictionary of terms");
        Self { k, dictionary }
    }

    /// The configured number of fake queries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Builds one fake query with roughly the same number of terms as the
    /// real one, drawn uniformly from the dictionary (this is what makes
    /// GooPIR's fakes linguistically implausible and easy to dismiss).
    fn fake_query(&self, term_count: usize, rng: &mut Xoshiro256StarStar) -> String {
        let count = term_count.clamp(1, 4);
        let mut terms = Vec::with_capacity(count);
        for _ in 0..count {
            terms.push(
                rng.choose(&self.dictionary)
                    .expect("non-empty dictionary")
                    .clone(),
            );
        }
        terms.join(" ")
    }
}

impl Mechanism for GooPir {
    fn name(&self) -> &'static str {
        "GOOPIR"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            unlinkability: false,
            indistinguishability: true,
            accuracy: false,
            scalability: true,
        }
    }

    fn protect(&mut self, query: &Query, rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
        let term_count = query.text.split_whitespace().count();
        let mut disjuncts = vec![query.text.clone()];
        for _ in 0..self.k {
            disjuncts.push(self.fake_query(term_count, rng));
        }
        // The real query's position inside the OR aggregate is randomized.
        rng.shuffle(&mut disjuncts);
        let aggregated = disjuncts.join(" OR ");
        ProtectionOutcome {
            observed: vec![ObservedRequest {
                source: SourceIdentity::Exposed(query.user),
                text: aggregated.clone(),
                carries_real_query: true,
            }],
            delivery: ResultsDelivery::FilteredFromObfuscated {
                obfuscated_query: aggregated,
            },
            relay_messages: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{QueryId, UserId};

    fn dictionary() -> Vec<String> {
        [
            "mortgage", "football", "trailer", "recipe", "laptop", "museum", "sneakers",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn aggregates_real_query_with_k_fakes() {
        let mut goopir = GooPir::new(3, dictionary());
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let q = Query::new(QueryId(1), UserId(2), "asylum application status");
        let outcome = goopir.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 1);
        assert_eq!(outcome.exposed_requests(), 1);
        let text = &outcome.observed[0].text;
        let disjuncts: Vec<&str> = text.split(" OR ").collect();
        assert_eq!(disjuncts.len(), 4);
        assert!(disjuncts.contains(&"asylum application status"));
        match &outcome.delivery {
            ResultsDelivery::FilteredFromObfuscated { obfuscated_query } => {
                assert_eq!(obfuscated_query, text);
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn fake_queries_use_dictionary_terms_only() {
        let mut goopir = GooPir::new(5, dictionary());
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let q = Query::new(QueryId(1), UserId(2), "church service times");
        let outcome = goopir.protect(&q, &mut rng);
        let dict = dictionary();
        for disjunct in outcome.observed[0].text.split(" OR ") {
            if disjunct == q.text {
                continue;
            }
            for term in disjunct.split_whitespace() {
                assert!(
                    dict.contains(&term.to_string()),
                    "term {term} not in dictionary"
                );
            }
        }
    }

    #[test]
    fn k_zero_sends_the_plain_query() {
        let mut goopir = GooPir::new(0, dictionary());
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let q = Query::new(QueryId(1), UserId(2), "plain query");
        let outcome = goopir.protect(&q, &mut rng);
        assert_eq!(outcome.observed[0].text, "plain query");
        assert_eq!(goopir.k(), 0);
    }

    #[test]
    fn properties_match_table_one() {
        let p = GooPir::new(3, dictionary()).properties();
        assert!(!p.unlinkability && p.indistinguishability && !p.accuracy && p.scalability);
    }

    #[test]
    #[should_panic(expected = "dictionary")]
    fn tiny_dictionary_rejected() {
        let _ = GooPir::new(3, vec!["only".to_owned()]);
    }
}
