//! PEAS (paper §II-A2, Fig. 2c).
//!
//! PEAS splits trust between two non-colluding servers: a *proxy* that
//! knows the requester's identity but not the query (it only relays an
//! encrypted blob), and an *issuer* that decrypts the query, generates
//! `k` fake queries from a co-occurrence matrix built over past queries,
//! OR-aggregates them with the real query and forwards the aggregate to the
//! engine under its own identity. Answers flow back through the same pair,
//! with filtering at the client.
//!
//! Because the issuer is a central service, all PEAS traffic reaches the
//! engine from a single network identity — which is what gets it rate
//! limited in the Fig. 8d experiment.

use cyclosa_mechanism::{
    Mechanism, MechanismProperties, ObservedRequest, ProtectionOutcome, Query, ResultsDelivery,
    SourceIdentity,
};
use cyclosa_nlp::text::tokenize;
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeMap;

/// A co-occurrence matrix over query terms, built incrementally from the
/// queries the issuer has seen.
#[derive(Debug, Clone, Default)]
pub struct CooccurrenceMatrix {
    /// term → (co-occurring term → count).
    counts: BTreeMap<String, BTreeMap<String, u32>>,
}

impl CooccurrenceMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms seen so far.
    pub fn term_count(&self) -> usize {
        self.counts.len()
    }

    /// Records the co-occurrences of one query's terms.
    pub fn observe(&mut self, query: &str) {
        let terms = tokenize(query);
        for a in &terms {
            let entry = self.counts.entry(a.clone()).or_default();
            for b in &terms {
                if a != b {
                    *entry.entry(b.clone()).or_insert(0) += 1;
                }
            }
            // Ensure singleton terms are represented too.
            entry.entry(a.clone()).or_insert(0);
        }
    }

    /// Generates a fake query of `length` terms by a weighted walk over the
    /// co-occurrence graph. Returns `None` when the matrix is empty.
    pub fn generate<R: Rng + ?Sized>(&self, length: usize, rng: &mut R) -> Option<String> {
        if self.counts.is_empty() || length == 0 {
            return None;
        }
        let mut all_terms: Vec<&String> = self.counts.keys().collect();
        all_terms.sort(); // deterministic iteration order
        let mut current = (*rng.choose(&all_terms)?).clone();
        let mut terms = vec![current.clone()];
        for _ in 1..length {
            let next = self
                .counts
                .get(&current)
                .filter(|neighbours| !neighbours.is_empty())
                .and_then(|neighbours| {
                    let mut items: Vec<(&String, &u32)> = neighbours.iter().collect();
                    items.sort_by(|a, b| a.0.cmp(b.0));
                    let weights: Vec<f64> = items.iter().map(|(_, &c)| c.max(1) as f64).collect();
                    rng.sample_weighted(&weights).map(|i| items[i].0.clone())
                })
                .unwrap_or_else(|| (*rng.choose(&all_terms).expect("non-empty")).clone());
            if !terms.contains(&next) {
                terms.push(next.clone());
            }
            current = next;
        }
        Some(terms.join(" "))
    }
}

/// The PEAS baseline (proxy + issuer pair).
#[derive(Debug, Clone, Default)]
pub struct Peas {
    k: usize,
    matrix: CooccurrenceMatrix,
}

impl Peas {
    /// Creates the baseline with `k` fake queries per real query.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            matrix: CooccurrenceMatrix::new(),
        }
    }

    /// Seeds the issuer's co-occurrence matrix with queries of other users
    /// (the paper's issuer builds it "from other users' past queries").
    pub fn seed_with_queries<'a>(&mut self, queries: impl IntoIterator<Item = &'a str>) {
        for q in queries {
            self.matrix.observe(q);
        }
    }

    /// The configured number of fake queries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Read access to the issuer's matrix (for tests and diagnostics).
    pub fn matrix(&self) -> &CooccurrenceMatrix {
        &self.matrix
    }
}

impl Mechanism for Peas {
    fn name(&self) -> &'static str {
        "PEAS"
    }

    fn properties(&self) -> MechanismProperties {
        MechanismProperties {
            unlinkability: true,
            indistinguishability: true,
            accuracy: false,
            scalability: false,
        }
    }

    fn protect(&mut self, query: &Query, rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
        let term_count = tokenize(&query.text).len().max(1);
        let mut disjuncts = vec![query.text.clone()];
        for _ in 0..self.k {
            if let Some(fake) = self.matrix.generate(term_count, rng) {
                disjuncts.push(fake);
            }
        }
        // The issuer records the real query for future fake generation.
        self.matrix.observe(&query.text);
        rng.shuffle(&mut disjuncts);
        let aggregated = disjuncts.join(" OR ");
        ProtectionOutcome {
            observed: vec![ObservedRequest {
                // The issuer contacts the engine: the user's identity is
                // hidden behind the proxy/issuer pair.
                source: SourceIdentity::Anonymous,
                text: aggregated.clone(),
                carries_real_query: true,
            }],
            delivery: ResultsDelivery::FilteredFromObfuscated {
                obfuscated_query: aggregated,
            },
            // client → proxy → issuer and back.
            relay_messages: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_mechanism::{QueryId, UserId};

    fn seeded_peas(k: usize) -> Peas {
        let mut peas = Peas::new(k);
        peas.seed_with_queries([
            "cheap flights geneva paris",
            "hotel booking barcelona",
            "diabetes insulin dosage",
            "football league fixtures",
            "mortgage refinance rates",
        ]);
        peas
    }

    #[test]
    fn cooccurrence_matrix_learns_pairs() {
        let mut matrix = CooccurrenceMatrix::new();
        matrix.observe("cheap flights geneva");
        matrix.observe("cheap flights paris");
        assert!(matrix.term_count() >= 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let fake = matrix.generate(2, &mut rng).unwrap();
        assert!(!fake.is_empty());
        for term in fake.split_whitespace() {
            assert!(["cheap", "flights", "geneva", "paris"].contains(&term));
        }
    }

    #[test]
    fn empty_matrix_generates_nothing() {
        let matrix = CooccurrenceMatrix::new();
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        assert_eq!(matrix.generate(3, &mut rng), None);
    }

    #[test]
    fn peas_hides_identity_and_aggregates_fakes() {
        let mut peas = seeded_peas(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let q = Query::new(QueryId(1), UserId(7), "hiv test clinic");
        let outcome = peas.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 1);
        assert_eq!(outcome.exposed_requests(), 0);
        let disjuncts: Vec<&str> = outcome.observed[0].text.split(" OR ").collect();
        assert_eq!(disjuncts.len(), 4);
        assert!(disjuncts.contains(&"hiv test clinic"));
        assert!(outcome.relay_messages >= 4);
    }

    #[test]
    fn issuer_learns_processed_queries() {
        let mut peas = seeded_peas(1);
        let before = peas.matrix().term_count();
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let q = Query::new(QueryId(1), UserId(7), "quantum computing basics");
        peas.protect(&q, &mut rng);
        assert!(peas.matrix().term_count() > before);
    }

    #[test]
    fn unseeded_peas_still_forwards_the_real_query() {
        let mut peas = Peas::new(3);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let q = Query::new(QueryId(1), UserId(7), "first ever query");
        let outcome = peas.protect(&q, &mut rng);
        // No fakes can be generated yet, but the real query still goes out.
        assert_eq!(outcome.observed[0].text, "first ever query");
        assert_eq!(peas.k(), 3);
    }

    #[test]
    fn properties_match_table_one() {
        let p = Peas::new(3).properties();
        assert!(p.unlinkability && p.indistinguishability && !p.accuracy && !p.scalability);
    }
}
