//! A synchronous round driver for the peer-sampling protocol with overlay
//! quality metrics and failure injection.

use crate::node::{PeerSamplingConfig, PeerSamplingNode};
use crate::view::PeerId;
use cyclosa_util::rng::Xoshiro256StarStar;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Quality metrics of the gossip overlay at one point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayMetrics {
    /// Number of alive nodes.
    pub nodes: usize,
    /// Whether the directed union of views is weakly connected.
    pub connected: bool,
    /// Average in-degree (how many views a node appears in).
    pub mean_in_degree: f64,
    /// Maximum in-degree across nodes.
    pub max_in_degree: usize,
    /// Fraction of view slots pointing at dead nodes.
    pub dead_references: f64,
}

/// Computes overlay quality metrics from `(node, view peers)` pairs of the
/// *alive* population. References to peers absent from `views` count as
/// dead. Shared by the synchronous [`GossipSimulator`] and the
/// event-driven engine overlay.
pub fn overlay_metrics_from_views(views: &[(PeerId, Vec<PeerId>)]) -> OverlayMetrics {
    let alive_set: BTreeSet<PeerId> = views.iter().map(|(id, _)| *id).collect();
    let mut in_degree: BTreeMap<PeerId, usize> = views.iter().map(|(id, _)| (*id, 0)).collect();
    let mut dead_refs = 0usize;
    let mut total_refs = 0usize;
    let mut adjacency: BTreeMap<PeerId, Vec<PeerId>> = BTreeMap::new();
    for (id, peers) in views {
        for &peer in peers {
            total_refs += 1;
            if alive_set.contains(&peer) {
                *in_degree.entry(peer).or_insert(0) += 1;
                adjacency.entry(*id).or_default().push(peer);
                // Treat the overlay as undirected for connectivity.
                adjacency.entry(peer).or_default().push(*id);
            } else {
                dead_refs += 1;
            }
        }
    }
    let connected = if views.is_empty() {
        true
    } else {
        let mut visited = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(views[0].0);
        visited.insert(views[0].0);
        while let Some(p) = queue.pop_front() {
            for &next in adjacency.get(&p).map(|v| v.as_slice()).unwrap_or(&[]) {
                if visited.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        visited.len() == views.len()
    };
    let mean_in_degree = if views.is_empty() {
        0.0
    } else {
        in_degree.values().sum::<usize>() as f64 / views.len() as f64
    };
    OverlayMetrics {
        nodes: views.len(),
        connected,
        mean_in_degree,
        max_in_degree: in_degree.values().copied().max().unwrap_or(0),
        dead_references: if total_refs == 0 {
            0.0
        } else {
            dead_refs as f64 / total_refs as f64
        },
    }
}

/// Drives a population of [`PeerSamplingNode`]s through synchronous gossip
/// rounds (each round, every alive node initiates one push–pull exchange).
#[derive(Debug)]
pub struct GossipSimulator {
    nodes: BTreeMap<PeerId, PeerSamplingNode>,
    dead: BTreeSet<PeerId>,
    rng: Xoshiro256StarStar,
    rounds_run: usize,
}

impl GossipSimulator {
    /// Creates `count` nodes bootstrapped in a ring (each node initially
    /// knows only its successor), which is the hardest realistic starting
    /// topology for the protocol to randomize.
    pub fn ring(count: usize, config: PeerSamplingConfig, seed: u64) -> Self {
        assert!(count >= 2, "a gossip overlay needs at least two nodes");
        let mut nodes = BTreeMap::new();
        for i in 0..count {
            let id = PeerId(i as u64);
            let mut node = PeerSamplingNode::new(id, config);
            node.bootstrap([PeerId(((i + 1) % count) as u64)]);
            nodes.insert(id, node);
        }
        Self {
            nodes,
            dead: BTreeSet::new(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            rounds_run: 0,
        }
    }

    /// Creates `count` nodes that all know a single bootstrap node (a
    /// star), modelling CYCLOSA's public-directory bootstrap.
    pub fn star(count: usize, config: PeerSamplingConfig, seed: u64) -> Self {
        assert!(count >= 2, "a gossip overlay needs at least two nodes");
        let mut nodes = BTreeMap::new();
        for i in 0..count {
            let id = PeerId(i as u64);
            let mut node = PeerSamplingNode::new(id, config);
            if i != 0 {
                node.bootstrap([PeerId(0)]);
            } else {
                node.bootstrap([PeerId(1)]);
            }
            nodes.insert(id, node);
        }
        Self {
            nodes,
            dead: BTreeSet::new(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
            rounds_run: 0,
        }
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.dead.len()
    }

    /// Returns `true` when no node is alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Marks a node as crashed: it stops gossiping and answering.
    pub fn kill(&mut self, peer: PeerId) {
        self.dead.insert(peer);
    }

    /// Access to a node (alive or dead).
    pub fn node(&self, peer: PeerId) -> Option<&PeerSamplingNode> {
        self.nodes.get(&peer)
    }

    /// All alive node identifiers, in ascending id order (`BTreeMap` keys
    /// iterate sorted, so no explicit sort is needed).
    pub fn alive_peers(&self) -> Vec<PeerId> {
        self.nodes
            .keys()
            .filter(|p| !self.dead.contains(p))
            .copied()
            .collect()
    }

    /// Runs one synchronous gossip round.
    pub fn run_round(&mut self) {
        self.rounds_run += 1;
        let alive = self.alive_peers();
        for id in alive {
            // Age first, as in the reference protocol.
            if let Some(node) = self.nodes.get_mut(&id) {
                node.increase_ages();
            }
            let Some(partner) = self
                .nodes
                .get(&id)
                .and_then(|n| n.select_partner(&mut self.rng))
            else {
                continue;
            };
            if self.dead.contains(&partner) {
                // Unresponsive peer: blacklist it, exactly as CYCLOSA clients
                // blacklist proxies that do not answer in time.
                if let Some(node) = self.nodes.get_mut(&id) {
                    node.blacklist(partner);
                }
                continue;
            }
            // Active side prepares its buffer.
            let initiator_buffer = self
                .nodes
                .get(&id)
                .expect("alive node")
                .prepare_buffer(&mut self.rng);
            // Passive side answers with its own buffer and merges.
            let partner_buffer = {
                let partner_node = self.nodes.get(&partner).expect("partner exists");
                partner_node.prepare_buffer(&mut self.rng)
            };
            if let Some(partner_node) = self.nodes.get_mut(&partner) {
                partner_node.merge(&initiator_buffer, &partner_buffer, &mut self.rng);
            }
            if let Some(node) = self.nodes.get_mut(&id) {
                node.merge(&partner_buffer, &initiator_buffer, &mut self.rng);
            }
        }
    }

    /// Runs `rounds` synchronous rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Computes the current overlay quality metrics over alive nodes.
    pub fn metrics(&self) -> OverlayMetrics {
        let views: Vec<(PeerId, Vec<PeerId>)> = self
            .alive_peers()
            .into_iter()
            .map(|id| (id, self.nodes[&id].view().peers()))
            .collect();
        overlay_metrics_from_views(&views)
    }

    /// Borrow of the internal RNG, to draw relay choices consistent with the
    /// simulation stream.
    pub fn rng_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PeerSamplingConfig {
        PeerSamplingConfig::default()
    }

    #[test]
    fn ring_bootstrap_converges_to_connected_random_overlay() {
        let mut sim = GossipSimulator::ring(100, config(), 42);
        sim.run_rounds(30);
        let metrics = sim.metrics();
        assert!(metrics.connected, "overlay must stay connected");
        assert_eq!(metrics.nodes, 100);
        // Views should be essentially full after 30 rounds.
        let mean_view: f64 = sim
            .alive_peers()
            .iter()
            .map(|p| sim.node(*p).unwrap().view().len() as f64)
            .sum::<f64>()
            / 100.0;
        assert!(mean_view > 15.0, "mean view size was {mean_view}");
        // In-degree should be reasonably balanced (no hot spot dominating).
        assert!(
            metrics.max_in_degree < 60,
            "max in-degree {}",
            metrics.max_in_degree
        );
    }

    #[test]
    fn star_bootstrap_spreads_degree() {
        let mut sim = GossipSimulator::star(80, config(), 7);
        sim.run_rounds(40);
        let metrics = sim.metrics();
        assert!(metrics.connected);
        // The bootstrap node must no longer be referenced by everybody.
        let bootstrap_in_degree = sim
            .alive_peers()
            .iter()
            .filter(|p| sim.node(**p).unwrap().view().contains(PeerId(0)))
            .count();
        assert!(
            bootstrap_in_degree < 79,
            "star hub still referenced by all nodes"
        );
    }

    #[test]
    fn dead_nodes_are_forgotten() {
        let mut sim = GossipSimulator::ring(60, config(), 3);
        sim.run_rounds(20);
        for i in 0..10 {
            sim.kill(PeerId(i));
        }
        sim.run_rounds(30);
        let metrics = sim.metrics();
        assert_eq!(metrics.nodes, 50);
        assert!(metrics.connected);
        assert!(
            metrics.dead_references < 0.10,
            "dead references still at {:.2}",
            metrics.dead_references
        );
    }

    #[test]
    fn random_peer_draws_spread_load() {
        let mut sim = GossipSimulator::ring(50, config(), 11);
        sim.run_rounds(30);
        // Draw many relay sets from one node and check they cover a large
        // fraction of the population over time (the load-balancing property
        // CYCLOSA relies on).
        let mut seen = BTreeSet::new();
        for _ in 0..200 {
            sim.run_round();
            let node = sim.node(PeerId(0)).unwrap().clone();
            let peers = node.random_peers(sim.rng_mut(), 4);
            seen.extend(peers);
        }
        assert!(seen.len() > 35, "only {} distinct relays seen", seen.len());
    }

    #[test]
    fn metrics_on_tiny_overlay() {
        let sim = GossipSimulator::ring(2, config(), 1);
        let metrics = sim.metrics();
        assert_eq!(metrics.nodes, 2);
        assert!(metrics.connected);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_node_overlay_is_rejected() {
        let _ = GossipSimulator::ring(1, config(), 1);
    }
}
