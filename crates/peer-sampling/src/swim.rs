//! SWIM-style failure detection: the pure state machine.
//!
//! This module holds the *protocol state* of a SWIM failure detector —
//! per-peer `alive → suspect → dead` records with incarnation numbers,
//! the rumor (piggyback) queue, and the randomized round-robin probe
//! cycle — with **no notion of timers or messages**. The driver (the
//! engine-backed overlay in [`crate::membership`], or the chaos client's
//! relay prober) owns the clock: it decides when to probe, when a direct
//! probe has timed out, and when a suspicion has expired, and feeds the
//! outcomes back in here. Keeping the state machine pure makes it
//! reusable across drivers and trivially deterministic: every mutation
//! happens in the driver's event order, so two runs that deliver the
//! same events produce byte-identical membership timelines.
//!
//! The rules are the SWIM paper's:
//!
//! * every record carries an **incarnation number**; only the peer itself
//!   can increment its own incarnation (by refuting a suspicion);
//! * a rumor overrides the local record iff it carries a *higher*
//!   incarnation, or the *same* incarnation with a stronger state
//!   (`dead > suspect > alive`);
//! * a rumor that suspects or kills *us* at an incarnation at least our
//!   own is answered by bumping our incarnation and spreading an `alive`
//!   refutation, which — carrying the higher incarnation — overrides the
//!   suspicion everywhere it reaches.
//!
//! The override rule is also what lets a re-merged partition heal
//! without any directory assistance: a peer declared dead at incarnation
//! `i` refutes with `alive@i+1`, which beats `dead@i` on every observer.

use crate::view::PeerId;
use cyclosa_net::time::SimTime;
use cyclosa_util::rng::Rng;
use std::collections::{BTreeMap, VecDeque};

/// The liveness state a detector holds about one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// The peer answered its last probe (or nobody has disputed it).
    Alive,
    /// A probe (direct and indirect) went unanswered; the peer has a
    /// suspicion timeout to refute before it is declared dead.
    Suspect,
    /// The suspicion expired unrefuted. Dead records are kept (not
    /// forgotten) so a later refutation — e.g. after a partition merge —
    /// can still override them.
    Dead,
}

impl MemberState {
    /// Precedence at equal incarnation: `dead > suspect > alive`.
    fn rank(self) -> u8 {
        match self {
            MemberState::Alive => 0,
            MemberState::Suspect => 1,
            MemberState::Dead => 2,
        }
    }

    /// Wire byte of the state (see the membership overlay's codec).
    pub fn to_wire(self) -> u8 {
        self.rank()
    }

    /// Parses a wire byte back into a state.
    pub fn from_wire(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(MemberState::Alive),
            1 => Some(MemberState::Suspect),
            2 => Some(MemberState::Dead),
            _ => None,
        }
    }
}

/// One disseminated membership claim: `peer` is in `state` at
/// `incarnation`. Rumors piggyback on every protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwimRumor {
    /// The peer the claim is about.
    pub peer: PeerId,
    /// The claimed state.
    pub state: MemberState,
    /// The incarnation the claim applies to.
    pub incarnation: u64,
}

/// The kind of one observer-local membership transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEventKind {
    /// A peer was (re-)confirmed alive without having been doubted.
    Alive,
    /// A peer came under suspicion.
    Suspect,
    /// A suspected or dead peer was proven alive again (its refutation,
    /// or firsthand evidence at a higher incarnation).
    Refute,
    /// A suspicion expired: the peer is declared dead.
    Dead,
}

/// One entry of an observer's membership timeline: what this node
/// concluded about `peer` at simulated time `at`. Per-observer timelines
/// are the observer-relative reachability record the global
/// dead-reference histogram cannot express — two observers legitimately
/// disagree about a peer during a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// When the transition happened (the observer's event time).
    pub at: SimTime,
    /// The peer the transition is about.
    pub peer: PeerId,
    /// What changed.
    pub kind: MembershipEventKind,
    /// The incarnation the record holds after the transition.
    pub incarnation: u64,
}

#[derive(Debug, Clone, Copy)]
struct MemberRecord {
    state: MemberState,
    incarnation: u64,
    /// When the record entered its current state (drives suspicion
    /// expiry).
    since: SimTime,
}

/// A SWIM failure detector: one node's view of who is alive, suspected
/// or dead, plus the rumor queue that disseminates its conclusions.
///
/// Pure state — the driver owns probing cadence and timeouts. See the
/// module docs for the division of labour.
#[derive(Debug)]
pub struct FailureDetector {
    self_id: PeerId,
    incarnation: u64,
    members: BTreeMap<PeerId, MemberRecord>,
    timeline: Vec<MembershipEvent>,
    /// Rumors still owed transmissions, oldest first.
    rumors: VecDeque<(SwimRumor, u32)>,
    /// How many messages each fresh rumor piggybacks on before it is
    /// retired.
    rumor_transmissions: u32,
    /// The current randomized round-robin probe cycle (SWIM §4.3: visit
    /// every member once per cycle, in an order reshuffled per cycle, so
    /// detection time is bounded instead of merely expected).
    probe_cycle: Vec<PeerId>,
    probe_cursor: usize,
}

impl FailureDetector {
    /// A detector for `self_id` that initially believes every peer in
    /// `peers` to be alive at incarnation 0.
    pub fn new(
        self_id: PeerId,
        peers: impl IntoIterator<Item = PeerId>,
        rumor_transmissions: u32,
    ) -> Self {
        let members = peers
            .into_iter()
            .filter(|p| *p != self_id)
            .map(|p| {
                (
                    p,
                    MemberRecord {
                        state: MemberState::Alive,
                        incarnation: 0,
                        since: SimTime::ZERO,
                    },
                )
            })
            .collect();
        Self {
            self_id,
            incarnation: 0,
            members,
            timeline: Vec::new(),
            rumors: VecDeque::new(),
            rumor_transmissions,
            probe_cycle: Vec::new(),
            probe_cursor: 0,
        }
    }

    /// This node's own id.
    pub fn self_id(&self) -> PeerId {
        self.self_id
    }

    /// This node's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The state and incarnation held about `peer`, with the time the
    /// record entered its state.
    pub fn state_of(&self, peer: PeerId) -> Option<(MemberState, u64, SimTime)> {
        self.members
            .get(&peer)
            .map(|r| (r.state, r.incarnation, r.since))
    }

    /// Ensures a record exists for `peer` (a message from an unknown
    /// peer is firsthand evidence it exists and is alive). Never
    /// downgrades an existing record.
    pub fn observe(&mut self, peer: PeerId) {
        if peer == self.self_id {
            return;
        }
        self.members.entry(peer).or_insert(MemberRecord {
            state: MemberState::Alive,
            incarnation: 0,
            since: SimTime::ZERO,
        });
    }

    /// Members currently not believed dead (probe candidates).
    pub fn live_members(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .filter(|(_, r)| r.state != MemberState::Dead)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Members currently under suspicion (not yet declared dead).
    pub fn suspected_members(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .filter(|(_, r)| r.state == MemberState::Suspect)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Members currently believed dead.
    pub fn dead_members(&self) -> Vec<PeerId> {
        self.members
            .iter()
            .filter(|(_, r)| r.state == MemberState::Dead)
            .map(|(p, _)| *p)
            .collect()
    }

    /// The next peer to probe: randomized round-robin over the non-dead
    /// membership. Each cycle visits every live member exactly once in a
    /// per-cycle shuffled order, so a crashed peer is probed (and its
    /// silence noticed) within one cycle length — the probe budget the
    /// property tests pin.
    pub fn next_probe_target(&mut self, rng: &mut impl Rng) -> Option<PeerId> {
        loop {
            if self.probe_cursor >= self.probe_cycle.len() {
                // BTreeMap iteration is id-sorted, so the pre-shuffle
                // order — and hence the shuffled cycle — is a pure
                // function of (membership, RNG stream).
                self.probe_cycle = self.live_members();
                rng.shuffle(&mut self.probe_cycle);
                self.probe_cursor = 0;
                if self.probe_cycle.is_empty() {
                    return None;
                }
            }
            let candidate = self.probe_cycle[self.probe_cursor];
            self.probe_cursor += 1;
            // The cycle snapshot may have staled: skip members that died
            // since the reshuffle.
            if self
                .members
                .get(&candidate)
                .is_some_and(|r| r.state != MemberState::Dead)
            {
                return Some(candidate);
            }
        }
    }

    /// Marks `peer` suspected (an unanswered probe): `alive@i` becomes
    /// `suspect@i` and the suspicion is spread as a rumor. Returns
    /// `false` when the record was already suspect or dead (or unknown).
    pub fn suspect(&mut self, peer: PeerId, now: SimTime) -> bool {
        let Some(record) = self.members.get_mut(&peer) else {
            return false;
        };
        if record.state != MemberState::Alive {
            return false;
        }
        record.state = MemberState::Suspect;
        record.since = now;
        let incarnation = record.incarnation;
        self.timeline.push(MembershipEvent {
            at: now,
            peer,
            kind: MembershipEventKind::Suspect,
            incarnation,
        });
        self.enqueue_rumor(SwimRumor {
            peer,
            state: MemberState::Suspect,
            incarnation,
        });
        true
    }

    /// Declares a suspected `peer` dead (its suspicion timeout expired
    /// unrefuted). Returns `false` when the record is not currently
    /// suspect, or its suspicion started after `suspected_since` (a
    /// refutation re-set the clock, so the expiry that fired belongs to
    /// an older suspicion).
    pub fn declare_dead(&mut self, peer: PeerId, suspected_since: SimTime, now: SimTime) -> bool {
        let Some(record) = self.members.get_mut(&peer) else {
            return false;
        };
        if record.state != MemberState::Suspect || record.since > suspected_since {
            return false;
        }
        record.state = MemberState::Dead;
        record.since = now;
        let incarnation = record.incarnation;
        self.timeline.push(MembershipEvent {
            at: now,
            peer,
            kind: MembershipEventKind::Dead,
            incarnation,
        });
        self.enqueue_rumor(SwimRumor {
            peer,
            state: MemberState::Dead,
            incarnation,
        });
        true
    }

    /// Applies one membership claim (a received rumor, or firsthand
    /// evidence like an ack). Returns the refutation rumor when the
    /// claim suspected or killed *this* node: the detector bumps its own
    /// incarnation and spreads `alive@new` — the caller should also
    /// carry the refutation in its next acks.
    pub fn apply(&mut self, rumor: SwimRumor, now: SimTime) -> Option<SwimRumor> {
        if rumor.peer == self.self_id {
            // Only we may increment our incarnation; a rumor doubting a
            // *past* incarnation is already refuted by the current one.
            if rumor.state != MemberState::Alive && rumor.incarnation >= self.incarnation {
                self.incarnation = rumor.incarnation + 1;
                let refutation = SwimRumor {
                    peer: self.self_id,
                    state: MemberState::Alive,
                    incarnation: self.incarnation,
                };
                self.timeline.push(MembershipEvent {
                    at: now,
                    peer: self.self_id,
                    kind: MembershipEventKind::Refute,
                    incarnation: self.incarnation,
                });
                self.enqueue_rumor(refutation);
                return Some(refutation);
            }
            return None;
        }
        let record = self.members.entry(rumor.peer).or_insert(MemberRecord {
            state: MemberState::Alive,
            incarnation: 0,
            since: SimTime::ZERO,
        });
        let overrides = rumor.incarnation > record.incarnation
            || (rumor.incarnation == record.incarnation
                && rumor.state.rank() > record.state.rank());
        if !overrides {
            return None;
        }
        let previous = record.state;
        record.state = rumor.state;
        record.incarnation = rumor.incarnation;
        record.since = now;
        let kind = match (previous, rumor.state) {
            // A doubted peer proven alive again — the refutation arriving.
            (MemberState::Suspect | MemberState::Dead, MemberState::Alive) => {
                MembershipEventKind::Refute
            }
            (_, MemberState::Alive) => MembershipEventKind::Alive,
            (_, MemberState::Suspect) => MembershipEventKind::Suspect,
            (_, MemberState::Dead) => MembershipEventKind::Dead,
        };
        self.timeline.push(MembershipEvent {
            at: now,
            peer: rumor.peer,
            kind,
            incarnation: rumor.incarnation,
        });
        self.enqueue_rumor(rumor);
        None
    }

    /// Records firsthand liveness evidence: an ack from `peer` claiming
    /// incarnation `incarnation`. Equivalent to applying an `alive`
    /// rumor — an ack carrying a bumped incarnation refutes any standing
    /// suspicion or death record.
    pub fn ack(&mut self, peer: PeerId, incarnation: u64, now: SimTime) {
        let _ = self.apply(
            SwimRumor {
                peer,
                state: MemberState::Alive,
                incarnation,
            },
            now,
        );
    }

    /// Takes up to `limit` rumors to piggyback on an outgoing message.
    /// Each rumor rides `rumor_transmissions` messages before it is
    /// retired (SWIM's bounded dissemination).
    pub fn take_rumors(&mut self, limit: usize) -> Vec<SwimRumor> {
        let mut out = Vec::new();
        for _ in 0..limit.min(self.rumors.len()) {
            let Some((rumor, remaining)) = self.rumors.pop_front() else {
                break;
            };
            out.push(rumor);
            if remaining > 1 {
                self.rumors.push_back((rumor, remaining - 1));
            }
        }
        out
    }

    /// This observer's full membership timeline, in event order.
    pub fn timeline(&self) -> &[MembershipEvent] {
        &self.timeline
    }

    fn enqueue_rumor(&mut self, rumor: SwimRumor) {
        if self.rumor_transmissions == 0 {
            return;
        }
        // A fresh claim about a peer supersedes any queued older claim —
        // spreading both would waste piggyback slots on stale news.
        self.rumors.retain(|(r, _)| r.peer != rumor.peer);
        self.rumors.push_back((rumor, self.rumor_transmissions));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    fn detector() -> FailureDetector {
        FailureDetector::new(PeerId(0), (1..5).map(PeerId), 3)
    }

    #[test]
    fn suspicion_then_expiry_declares_dead() {
        let mut d = detector();
        assert!(d.suspect(PeerId(1), SimTime::from_secs(5)));
        assert!(!d.suspect(PeerId(1), SimTime::from_secs(6)), "idempotent");
        assert_eq!(
            d.state_of(PeerId(1)).unwrap().0,
            MemberState::Suspect,
            "suspicion recorded"
        );
        assert!(d.declare_dead(PeerId(1), SimTime::from_secs(5), SimTime::from_secs(8)));
        assert_eq!(d.state_of(PeerId(1)).unwrap().0, MemberState::Dead);
        assert_eq!(d.dead_members(), vec![PeerId(1)]);
        let kinds: Vec<MembershipEventKind> = d.timeline().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![MembershipEventKind::Suspect, MembershipEventKind::Dead]
        );
    }

    #[test]
    fn stale_expiry_after_refutation_is_ignored() {
        let mut d = detector();
        d.suspect(PeerId(1), SimTime::from_secs(5));
        // The peer refutes at a bumped incarnation...
        d.ack(PeerId(1), 1, SimTime::from_secs(6));
        assert_eq!(d.state_of(PeerId(1)).unwrap().0, MemberState::Alive);
        // ...so the expiry timer armed at the suspicion must not kill it.
        assert!(!d.declare_dead(PeerId(1), SimTime::from_secs(5), SimTime::from_secs(8)));
        // A *new* suspicion starts a new clock.
        d.suspect(PeerId(1), SimTime::from_secs(9));
        assert!(!d.declare_dead(PeerId(1), SimTime::from_secs(5), SimTime::from_secs(10)));
        assert!(d.declare_dead(PeerId(1), SimTime::from_secs(9), SimTime::from_secs(12)));
    }

    #[test]
    fn same_incarnation_ack_cannot_refute_but_bumped_one_can() {
        let mut d = detector();
        d.suspect(PeerId(2), SimTime::from_secs(1));
        d.ack(PeerId(2), 0, SimTime::from_secs(2));
        assert_eq!(
            d.state_of(PeerId(2)).unwrap().0,
            MemberState::Suspect,
            "alive@i does not beat suspect@i"
        );
        d.ack(PeerId(2), 1, SimTime::from_secs(3));
        assert_eq!(d.state_of(PeerId(2)).unwrap().0, MemberState::Alive);
        assert_eq!(
            d.timeline().last().unwrap().kind,
            MembershipEventKind::Refute
        );
    }

    #[test]
    fn refutation_overrides_death_after_a_merge() {
        let mut d = detector();
        d.suspect(PeerId(3), SimTime::from_secs(1));
        d.declare_dead(PeerId(3), SimTime::from_secs(1), SimTime::from_secs(4));
        // The quarantine probe reaches the peer after the merge; its ack
        // carries the bumped incarnation and beats dead@0.
        d.ack(PeerId(3), 1, SimTime::from_secs(50));
        assert_eq!(d.state_of(PeerId(3)).unwrap().0, MemberState::Alive);
        assert!(d.dead_members().is_empty());
    }

    #[test]
    fn self_suspicion_bumps_incarnation_and_refutes() {
        let mut d = detector();
        let refutation = d
            .apply(
                SwimRumor {
                    peer: PeerId(0),
                    state: MemberState::Suspect,
                    incarnation: 0,
                },
                SimTime::from_secs(2),
            )
            .expect("self-suspicion must be refuted");
        assert_eq!(refutation.incarnation, 1);
        assert_eq!(refutation.state, MemberState::Alive);
        assert_eq!(d.incarnation(), 1);
        // A rumor about an already-refuted (older) incarnation is stale.
        assert!(d
            .apply(
                SwimRumor {
                    peer: PeerId(0),
                    state: MemberState::Dead,
                    incarnation: 0,
                },
                SimTime::from_secs(3),
            )
            .is_none());
        assert_eq!(d.incarnation(), 1);
    }

    #[test]
    fn probe_cycle_visits_every_live_member_once() {
        let mut d = detector();
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut first_cycle: Vec<PeerId> = (0..4)
            .map(|_| d.next_probe_target(&mut rng).unwrap())
            .collect();
        first_cycle.sort_unstable();
        assert_eq!(first_cycle, (1..5).map(PeerId).collect::<Vec<_>>());
        // Dead members drop out of subsequent cycles.
        d.suspect(PeerId(2), SimTime::from_secs(1));
        d.declare_dead(PeerId(2), SimTime::from_secs(1), SimTime::from_secs(2));
        let mut second: Vec<PeerId> = (0..3)
            .map(|_| d.next_probe_target(&mut rng).unwrap())
            .collect();
        second.sort_unstable();
        assert_eq!(second, vec![PeerId(1), PeerId(3), PeerId(4)]);
    }

    #[test]
    fn rumors_ride_a_bounded_number_of_messages() {
        let mut d = detector();
        d.suspect(PeerId(1), SimTime::from_secs(1));
        for _ in 0..3 {
            let batch = d.take_rumors(8);
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].peer, PeerId(1));
        }
        assert!(d.take_rumors(8).is_empty(), "retired after 3 transmissions");
        // A newer claim about the same peer supersedes the queued one.
        d.suspect(PeerId(4), SimTime::from_secs(2));
        d.declare_dead(PeerId(4), SimTime::from_secs(2), SimTime::from_secs(5));
        let batch = d.take_rumors(8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].state, MemberState::Dead);
    }

    #[test]
    fn wire_state_round_trips() {
        for state in [MemberState::Alive, MemberState::Suspect, MemberState::Dead] {
            assert_eq!(MemberState::from_wire(state.to_wire()), Some(state));
        }
        assert_eq!(MemberState::from_wire(9), None);
    }
}
