//! Sybil injection against the naive shuffle-based sampler.
//!
//! The attacker mints `f · N` identities and plays them against the
//! population: sybils answer every exchange with a buffer of exclusively
//! *fresh* sybil descriptors (age 0, so the healer policy prefers them)
//! and additionally push-flood honest nodes every round. Because the
//! Jelasity-style shuffle merges whatever it receives — its only defenses
//! are age-based healing and random truncation, both of which the
//! attacker satisfies trivially by minting fresh descriptors — honest
//! views drift towards the attacker until relay selection is effectively
//! attacker-chosen. [`SybilSimulator`] measures exactly that drift; the
//! evaluated defense is the Brahms sampler in [`crate::brahms`], driven
//! by the same [`SybilAttackConfig`] for comparable curves.

use crate::node::{ExchangeBuffer, PeerSamplingConfig, PeerSamplingNode};
use crate::view::{Descriptor, PeerId};
use cyclosa_util::rng::{Rng, Xoshiro256StarStar};
use std::collections::BTreeMap;

/// Identifier floor of attacker-minted identities: any peer id at or
/// above this is a sybil. Honest populations stay far below it.
pub const SYBIL_BASE: u64 = 1 << 32;

/// Whether `peer` is an attacker-minted identity.
pub fn is_sybil(peer: PeerId) -> bool {
    peer.0 >= SYBIL_BASE
}

/// The mean fraction of attacker entries across honest views — the
/// poisoning metric both the naive and the Brahms experiment report.
pub fn sybil_view_fraction(views: &[(PeerId, Vec<PeerId>)]) -> f64 {
    let mut total = 0usize;
    let mut hostile = 0usize;
    for (_, view) in views {
        total += view.len();
        hostile += view.iter().filter(|p| is_sybil(**p)).count();
    }
    if total == 0 {
        0.0
    } else {
        hostile as f64 / total as f64
    }
}

/// One Sybil attack scenario, shared by the naive and the Brahms
/// experiment so their poisoning curves are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SybilAttackConfig {
    /// Honest population size `N`.
    pub honest: usize,
    /// Attacker identity budget as a fraction of `N` (`round(f · N)`
    /// sybils are minted).
    pub fraction: f64,
    /// Push-flood rate: honest nodes each sybil pushes its descriptor to
    /// per round.
    pub pushes_per_sybil: usize,
    /// Scenario seed.
    pub seed: u64,
}

impl Default for SybilAttackConfig {
    fn default() -> Self {
        Self {
            honest: 100,
            fraction: 0.2,
            pushes_per_sybil: 2,
            seed: 2018,
        }
    }
}

impl SybilAttackConfig {
    /// The minted sybil identities, id-sorted.
    pub fn sybils(&self) -> Vec<PeerId> {
        assert!(
            (0.0..=1.0).contains(&self.fraction),
            "sybil fraction must be in [0, 1]"
        );
        let count = (self.honest as f64 * self.fraction).round() as usize;
        (0..count as u64).map(|i| PeerId(SYBIL_BASE + i)).collect()
    }
}

/// The naive shuffle population under Sybil attack: honest
/// [`PeerSamplingNode`]s gossiping normally, sybils answering every
/// exchange with poisoned buffers and push-flooding each round.
#[derive(Debug)]
pub struct SybilSimulator {
    nodes: BTreeMap<PeerId, PeerSamplingNode>,
    sybils: Vec<PeerId>,
    attack: SybilAttackConfig,
    protocol: PeerSamplingConfig,
    rng: Xoshiro256StarStar,
}

impl SybilSimulator {
    /// Creates the honest population bootstrapped in a ring, plus the
    /// attacker's identity set. One sybil is seeded into every honest
    /// bootstrap view — the attacker only needs a toehold (a directory
    /// entry, one gossip exchange) and the poisoning does the rest.
    pub fn ring(attack: SybilAttackConfig, protocol: PeerSamplingConfig) -> Self {
        assert!(
            attack.honest >= 2,
            "a gossip overlay needs at least two nodes"
        );
        let sybils = attack.sybils();
        let mut rng = Xoshiro256StarStar::seed_from_u64(attack.seed ^ 0x5B11);
        let mut nodes = BTreeMap::new();
        for i in 0..attack.honest {
            let id = PeerId(i as u64);
            let mut node = PeerSamplingNode::new(id, protocol);
            node.bootstrap([PeerId(((i + 1) % attack.honest) as u64)]);
            if !sybils.is_empty() {
                node.bootstrap([sybils[rng.gen_index(sybils.len())]]);
            }
            nodes.insert(id, node);
        }
        Self {
            nodes,
            sybils,
            attack,
            protocol,
            rng,
        }
    }

    /// A poisoned exchange buffer: exclusively fresh sybil descriptors, so
    /// the healer policy (drop oldest) never prefers honest entries over
    /// them.
    fn poisoned_buffer(&mut self) -> ExchangeBuffer {
        let count = self.protocol.exchange_size.min(self.sybils.len());
        let picks = self.rng.sample_indices(self.sybils.len(), count);
        ExchangeBuffer {
            descriptors: picks
                .into_iter()
                .map(|i| Descriptor::fresh(self.sybils[i]))
                .collect(),
        }
    }

    /// Runs one synchronous round: the attacker flood-pushes, then every
    /// honest node runs its normal shuffle exchange — against a poisoned
    /// responder whenever its partner draw lands on a sybil.
    pub fn run_round(&mut self) {
        // Push flood: each sybil ships a poisoned buffer to
        // `pushes_per_sybil` random honest nodes (push-only merge: the
        // receiver sent nothing, so the swapper removes nothing).
        let empty = ExchangeBuffer {
            descriptors: Vec::new(),
        };
        for _ in 0..self.sybils.len() {
            for _ in 0..self.attack.pushes_per_sybil {
                let target = PeerId(self.rng.gen_index(self.attack.honest) as u64);
                let buffer = self.poisoned_buffer();
                if let Some(node) = self.nodes.get_mut(&target) {
                    node.merge(&buffer, &empty, &mut self.rng);
                }
            }
        }
        // Honest shuffle round.
        let honest: Vec<PeerId> = self.nodes.keys().copied().collect();
        for id in honest {
            if let Some(node) = self.nodes.get_mut(&id) {
                node.increase_ages();
            }
            let Some(partner) = self
                .nodes
                .get(&id)
                .and_then(|n| n.select_partner(&mut self.rng))
            else {
                continue;
            };
            let initiator_buffer = self
                .nodes
                .get(&id)
                .expect("honest node")
                .prepare_buffer(&mut self.rng);
            if is_sybil(partner) {
                // The sybil answers with a poisoned buffer and never
                // appears dead, so it is never blacklisted.
                let reply = self.poisoned_buffer();
                if let Some(node) = self.nodes.get_mut(&id) {
                    node.merge(&reply, &initiator_buffer, &mut self.rng);
                }
                continue;
            }
            let partner_buffer = self
                .nodes
                .get(&partner)
                .expect("partner exists")
                .prepare_buffer(&mut self.rng);
            if let Some(partner_node) = self.nodes.get_mut(&partner) {
                partner_node.merge(&initiator_buffer, &partner_buffer, &mut self.rng);
            }
            if let Some(node) = self.nodes.get_mut(&id) {
                node.merge(&partner_buffer, &initiator_buffer, &mut self.rng);
            }
        }
    }

    /// Runs `rounds` synchronous rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// The `(node, view peers)` pairs of the honest population.
    pub fn views(&self) -> Vec<(PeerId, Vec<PeerId>)> {
        self.nodes
            .iter()
            .map(|(id, node)| (*id, node.view().peers()))
            .collect()
    }

    /// The mean fraction of sybil entries across honest views.
    pub fn attacker_fraction(&self) -> f64 {
        sybil_view_fraction(&self.views())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sybil_identities_are_recognizable_and_proportional() {
        let attack = SybilAttackConfig {
            honest: 50,
            fraction: 0.2,
            ..SybilAttackConfig::default()
        };
        let sybils = attack.sybils();
        assert_eq!(sybils.len(), 10);
        assert!(sybils.iter().all(|s| is_sybil(*s)));
        assert!(!is_sybil(PeerId(49)));
    }

    #[test]
    fn naive_shuffle_views_drift_towards_the_attacker() {
        let attack = SybilAttackConfig::default(); // f = 0.2
        let mut sim = SybilSimulator::ring(attack, PeerSamplingConfig::default());
        // Bootstrap views hold one honest successor plus the one-sybil
        // toehold; the shuffle is what amplifies the toehold from there.
        let bootstrap = sim.attacker_fraction();
        assert!(bootstrap <= 0.5, "bootstrap holds only the toehold");
        sim.run_rounds(50);
        let fraction = sim.attacker_fraction();
        assert!(
            fraction > bootstrap && fraction > 0.5,
            "a 20% identity budget must capture most naive view slots, got {fraction}"
        );
    }

    #[test]
    fn poisoning_is_deterministic_per_seed() {
        let attack = SybilAttackConfig::default();
        let run = |seed| {
            let mut sim = SybilSimulator::ring(
                SybilAttackConfig { seed, ..attack },
                PeerSamplingConfig::default(),
            );
            sim.run_rounds(30);
            sim.views()
        };
        assert_eq!(run(7), run(7), "same seed, same poisoned views");
        assert_ne!(run(7), run(8), "the seed must matter");
    }

    #[test]
    fn zero_budget_attacker_changes_nothing() {
        let attack = SybilAttackConfig {
            fraction: 0.0,
            ..SybilAttackConfig::default()
        };
        let mut sim = SybilSimulator::ring(attack, PeerSamplingConfig::default());
        sim.run_rounds(30);
        assert_eq!(sim.attacker_fraction(), 0.0);
        let metrics = crate::simulator::overlay_metrics_from_views(&sim.views());
        assert!(metrics.connected, "the honest overlay must still converge");
    }
}
