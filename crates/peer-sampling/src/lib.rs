//! Gossip-based random peer sampling for CYCLOSA's peer discovery.
//!
//! Paper §V-E: "the selection and maintenance of random views is using the
//! random-peer-sampling protocol \[Jelasity et al., 2007\] which ensures
//! connectivity between nodes by building and maintaining a continuously
//! changing random topology."
//!
//! This crate implements that protocol family:
//!
//! * [`View`] — a bounded partial view of node descriptors with ages;
//! * [`PeerSamplingNode`] — one protocol participant with the standard
//!   policies (peer selection, view propagation, healer/swapper merging);
//! * [`GossipSimulator`] — a synchronous round driver over many nodes with
//!   failure injection and overlay-quality metrics (connectivity, in-degree
//!   balance), used by the deployment simulation and by benchmarks.
//! * [`EngineGossipOverlay`] — the same protocol running over simulated
//!   network messages on any `cyclosa_net::engine::Engine`, including the
//!   sharded parallel engine of `cyclosa-runtime` for population-scale
//!   experiments. The overlay carries the full fault story: scheduled
//!   kills, revivals and rejoins, live staleness/dead-reference
//!   histograms, eager re-assessment of stale views, and network
//!   partitions with directory-assisted merge healing
//!   ([`EngineGossipOverlay::schedule_partition`]).
//! * [`SwimGossipOverlay`] — protocol-native membership on the same
//!   engines: SWIM failure detection ([`FailureDetector`]: probe /
//!   indirect probe / suspect / incarnation-numbered refutation) over
//!   HyParView active/passive views ([`PartialViews`]), with quarantined
//!   descriptors re-probed so partition merges heal with **zero**
//!   directory-assisted bridges, and per-observer membership timelines
//!   exported as `mship.*` telemetry spans.
//! * [`SybilSimulator`] — the active adversary: an attacker minting
//!   `f · N` identities that push-flood and answer exchanges with
//!   poisoned buffers, measuring how far naive shuffle views drift
//!   towards the attacker.
//! * [`BrahmsSimulator`] / [`EngineBrahmsOverlay`] — the evaluated
//!   defense: Brahms byzantine-resilient sampling (push quotas voiding
//!   flooded rounds, min-wise independent samplers anchoring views to
//!   the full observation history), replaying the *same* attack
//!   scenario for directly comparable poisoning curves.
//!
//! CYCLOSA uses the resulting random views for two purposes: selecting the
//! `k + 1` relays of each query (load balancing falls out of view
//! randomness) and bootstrapping attestation-gated channels to fresh peers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brahms;
pub mod hyparview;
pub mod membership;
pub mod node;
pub mod overlay;
pub mod simulator;
pub mod swim;
pub mod sybil;
pub mod view;

pub use brahms::{BrahmsConfig, BrahmsNode, BrahmsSimulator, EngineBrahmsOverlay, MinWiseSampler};
pub use hyparview::{HyParViewConfig, PartialViews};
pub use membership::{MembershipConfig, SwimGossipOverlay, MEMBERSHIP_EVENT_NAMES};
pub use node::{ExchangeBuffer, PeerSamplingConfig, PeerSamplingNode, SelectionPolicy};
pub use overlay::{EngineGossipConfig, EngineGossipOverlay};
pub use simulator::{overlay_metrics_from_views, GossipSimulator, OverlayMetrics};
pub use swim::{FailureDetector, MemberState, MembershipEvent, MembershipEventKind, SwimRumor};
pub use sybil::{is_sybil, sybil_view_fraction, SybilAttackConfig, SybilSimulator, SYBIL_BASE};
pub use view::{Descriptor, PeerId, View};
