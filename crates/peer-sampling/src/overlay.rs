//! The peer-sampling protocol running on a discrete-event [`Engine`] —
//! the event-driven port of [`crate::simulator::GossipSimulator`].
//!
//! Where the synchronous simulator exchanges buffers by direct method
//! calls, this overlay runs the same protocol over simulated network
//! messages: each node arms a periodic round timer, pushes its buffer to
//! the selected partner, and merges the pulled reply. Unanswered exchanges
//! (crashed partners) are blacklisted at the next round, mirroring how
//! CYCLOSA clients drop unresponsive proxies.
//!
//! Every node draws from its own seed-derived RNG stream, so an execution
//! is a pure function of `(seed, population, config)` — identical on the
//! sequential simulator and on the sharded parallel engine, for any shard
//! count.

use crate::node::{ExchangeBuffer, PeerSamplingConfig, PeerSamplingNode};
use crate::simulator::{overlay_metrics_from_views, OverlayMetrics};
use crate::view::{Descriptor, PeerId};
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_util::rng::{SplitMix64, Xoshiro256StarStar};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Message tag: push half of a gossip exchange.
const TAG_PUSH: u32 = 0x9001;
/// Message tag: pull reply of a gossip exchange.
const TAG_REPLY: u32 = 0x9002;

/// Configuration of the event-driven gossip overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineGossipConfig {
    /// Parameters of the underlying peer-sampling protocol.
    pub protocol: PeerSamplingConfig,
    /// Number of gossip rounds each node initiates.
    pub rounds: usize,
    /// Interval between a node's rounds (must comfortably exceed one
    /// network round trip so replies arrive before the next round).
    pub round_period: SimTime,
}

impl Default for EngineGossipConfig {
    fn default() -> Self {
        Self {
            protocol: PeerSamplingConfig::default(),
            rounds: 30,
            round_period: SimTime::from_secs(1),
        }
    }
}

fn encode(buffer: &ExchangeBuffer) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(buffer.descriptors.len() * 12);
    for descriptor in &buffer.descriptors {
        bytes.extend_from_slice(&descriptor.peer.0.to_le_bytes());
        bytes.extend_from_slice(&descriptor.age.to_le_bytes());
    }
    bytes
}

fn decode(bytes: &[u8]) -> Option<ExchangeBuffer> {
    if !bytes.len().is_multiple_of(12) {
        return None;
    }
    let descriptors = bytes
        .chunks_exact(12)
        .map(|chunk| Descriptor {
            peer: PeerId(u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"))),
            age: u32::from_le_bytes(chunk[8..].try_into().expect("4 bytes")),
        })
        .collect();
    Some(ExchangeBuffer { descriptors })
}

fn node_rng(seed: u64, id: u64) -> Xoshiro256StarStar {
    let mut sm = SplitMix64::new(seed);
    let base = cyclosa_util::rng::Rng::next_u64(&mut sm);
    Xoshiro256StarStar::seed_from_u64(base ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One gossip participant driven by engine events.
struct GossipBehavior {
    node: Arc<Mutex<PeerSamplingNode>>,
    rng: Xoshiro256StarStar,
    rounds_left: usize,
    round_period: SimTime,
    /// The partner and sent buffer of the exchange in flight, if any.
    awaiting: Option<(PeerId, ExchangeBuffer)>,
}

impl NodeBehavior for GossipBehavior {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        let Some(received) = decode(&envelope.payload) else {
            return;
        };
        let mut node = self.node.lock().expect("gossip node poisoned");
        match envelope.tag {
            TAG_PUSH => {
                // Passive side: answer with our own buffer, then merge.
                let reply = node.prepare_buffer(&mut self.rng);
                ctx.send(envelope.src, TAG_REPLY, encode(&reply));
                node.merge(&received, &reply, &mut self.rng);
            }
            TAG_REPLY
                // Active side: merge against the buffer we sent, but only
                // for the exchange actually in flight (a reply straggling
                // past the next round's blacklisting is dropped).
                if self
                    .awaiting
                    .as_ref()
                    .is_some_and(|(partner, _)| partner.0 == envelope.src.0)
                => {
                    let (_, sent) = self.awaiting.take().expect("checked above");
                    node.merge(&received, &sent, &mut self.rng);
                }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        let mut node = self.node.lock().expect("gossip node poisoned");
        if let Some((partner, _)) = self.awaiting.take() {
            // The previous round's partner never answered: blacklist it,
            // exactly as CYCLOSA clients blacklist unresponsive proxies.
            node.blacklist(partner);
        }
        node.increase_ages();
        if let Some(partner) = node.select_partner(&mut self.rng) {
            let buffer = node.prepare_buffer(&mut self.rng);
            ctx.send(NodeId(partner.0), TAG_PUSH, encode(&buffer));
            self.awaiting = Some((partner, buffer));
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        if self.rounds_left > 0 {
            ctx.set_timer(self.round_period, 0);
        }
    }
}

/// A gossip overlay deployed on an [`Engine`]; inspect views and quality
/// metrics after `engine.run()`.
#[derive(Debug)]
pub struct EngineGossipOverlay {
    handles: Vec<(PeerId, Arc<Mutex<PeerSamplingNode>>)>,
    dead: HashSet<PeerId>,
    config: EngineGossipConfig,
    seed: u64,
}

impl EngineGossipOverlay {
    /// Registers `count` nodes bootstrapped in a ring (node `i` initially
    /// knows only its successor) on `engine`, each initiating
    /// `config.rounds` gossip rounds. Call `engine.run()` afterwards to
    /// execute the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    pub fn ring<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: EngineGossipConfig,
        seed: u64,
    ) -> Self {
        assert!(count >= 2, "a gossip overlay needs at least two nodes");
        let mut handles = Vec::with_capacity(count);
        for i in 0..count {
            let id = PeerId(i as u64);
            let mut node = PeerSamplingNode::new(id, config.protocol);
            node.bootstrap([PeerId(((i + 1) % count) as u64)]);
            let handle = Arc::new(Mutex::new(node));
            handles.push((id, handle.clone()));
            engine.add_node(
                NodeId(id.0),
                Box::new(GossipBehavior {
                    node: handle,
                    rng: node_rng(seed, id.0),
                    rounds_left: config.rounds,
                    round_period: config.round_period,
                    awaiting: None,
                }),
            );
            engine.schedule_timer(config.round_period, NodeId(id.0), 0);
        }
        Self {
            handles,
            dead: HashSet::new(),
            config,
            seed,
        }
    }

    /// Crashes `peer` on the engine: it stops gossiping and answering, and
    /// is excluded from [`EngineGossipOverlay::metrics`]. Call between
    /// engine runs, not while one is in progress.
    pub fn kill<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId) {
        engine.crash(NodeId(peer.0));
        self.dead.insert(peer);
    }

    /// Schedules `peer` to crash at simulated time `at` — a deterministic
    /// mid-run failure (the rest of the overlay repairs itself through the
    /// blacklist-on-silence rule).
    pub fn schedule_kill<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId, at: SimTime) {
        engine.schedule_crash(at, NodeId(peer.0));
        self.dead.insert(peer);
    }

    /// Schedules `peer` to recover at simulated time `at`, state intact,
    /// and re-arms its round timer so gossip resumes: its stale view heals
    /// as fresh descriptors flow in, and the rest of the population
    /// re-learns it from the descriptors it pushes.
    pub fn revive<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId, at: SimTime) {
        engine.schedule_recover(at, NodeId(peer.0));
        // Timers of crashed nodes are dropped at fire time, so the round
        // chain broke at the crash — restart it one period after recovery
        // (membership sorts before timers in the same slot, so even an
        // `at`-aligned timer would find the node alive).
        engine.schedule_timer(at + self.config.round_period, NodeId(peer.0), 0);
        self.dead.remove(&peer);
    }

    /// Schedules `peer` to leave at `at` and rejoin at `rejoin_at` with a
    /// **fresh** protocol state, bootstrapped on its ring successor among
    /// the currently alive population (the directory-assisted re-entry of
    /// the paper's bootstrap, §V-D). The rejoined node runs
    /// `config.rounds` new gossip rounds; its first fires one round period
    /// after the rejoin.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not part of the overlay or no other peer is
    /// alive to bootstrap from.
    pub fn schedule_rejoin<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        peer: PeerId,
        at: SimTime,
        rejoin_at: SimTime,
    ) {
        let position = self
            .handles
            .iter()
            .position(|(id, _)| *id == peer)
            .expect("peer must be part of the overlay");
        let successor = (1..self.handles.len())
            .map(|offset| self.handles[(position + offset) % self.handles.len()].0)
            .find(|candidate| !self.dead.contains(candidate) && *candidate != peer)
            .expect("need an alive peer to bootstrap the rejoin from");
        engine.schedule_leave(at, NodeId(peer.0));
        let mut node = PeerSamplingNode::new(peer, self.config.protocol);
        node.bootstrap([successor]);
        let handle = Arc::new(Mutex::new(node));
        self.handles[position].1 = handle.clone();
        engine.schedule_join(
            rejoin_at,
            NodeId(peer.0),
            Box::new(GossipBehavior {
                node: handle,
                rng: node_rng(self.seed, peer.0),
                rounds_left: self.config.rounds,
                round_period: self.config.round_period,
                awaiting: None,
            }),
        );
        engine.schedule_timer(rejoin_at + self.config.round_period, NodeId(peer.0), 0);
        // Dead only for the `[at, rejoin_at)` window; the overlay is
        // inspected after the run, when the peer is back.
        self.dead.remove(&peer);
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.handles.len() - self.dead.len()
    }

    /// Returns `true` when no node is alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current `(node, view peers)` pairs of the alive population,
    /// sorted by node id.
    pub fn views(&self) -> Vec<(PeerId, Vec<PeerId>)> {
        self.handles
            .iter()
            .filter(|(id, _)| !self.dead.contains(id))
            .map(|(id, node)| {
                (
                    *id,
                    node.lock().expect("gossip node poisoned").view().peers(),
                )
            })
            .collect()
    }

    /// Overlay quality metrics over the alive population.
    pub fn metrics(&self) -> OverlayMetrics {
        overlay_metrics_from_views(&self.views())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_net::sim::Simulation;
    use cyclosa_runtime::ShardedEngine;

    fn converged_views(
        engine: &mut dyn Engine,
        count: usize,
        seed: u64,
    ) -> Vec<(PeerId, Vec<PeerId>)> {
        let overlay = EngineGossipOverlay::ring(engine, count, EngineGossipConfig::default(), seed);
        engine.run();
        let mut views = overlay.views();
        for (_, peers) in &mut views {
            peers.sort_unstable();
        }
        views
    }

    #[test]
    fn ring_bootstrap_converges_on_the_event_engine() {
        let mut simulation = Simulation::new(8);
        let overlay =
            EngineGossipOverlay::ring(&mut simulation, 100, EngineGossipConfig::default(), 8);
        simulation.run();
        let metrics = overlay.metrics();
        assert!(metrics.connected, "overlay must stay connected");
        assert_eq!(metrics.nodes, 100);
        let mean_view: f64 = overlay
            .views()
            .iter()
            .map(|(_, v)| v.len() as f64)
            .sum::<f64>()
            / 100.0;
        assert!(mean_view > 15.0, "mean view size was {mean_view}");
        assert!(
            metrics.max_in_degree < 60,
            "max in-degree {}",
            metrics.max_in_degree
        );
    }

    #[test]
    fn sharded_overlay_is_bit_identical_to_sequential() {
        let mut sequential = Simulation::new(21);
        let expected = converged_views(&mut sequential, 60, 21);
        for shards in [2, 4] {
            let mut engine = ShardedEngine::new(21, shards);
            let observed = converged_views(&mut engine, 60, 21);
            assert_eq!(observed, expected, "views diverged with {shards} shards");
        }
    }

    #[test]
    fn crashed_nodes_are_blacklisted_and_forgotten() {
        let mut simulation = Simulation::new(5);
        let config = EngineGossipConfig {
            rounds: 60,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 60, config, 5);
        simulation.run_until(SimTime::from_secs(20));
        for i in 0..10 {
            overlay.kill(&mut simulation, PeerId(i));
        }
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 50);
        assert!(metrics.connected);
        assert!(
            metrics.dead_references < 0.10,
            "dead references still at {:.2}",
            metrics.dead_references
        );
    }

    #[test]
    fn revived_nodes_resume_gossip_and_heal_their_views() {
        let mut simulation = Simulation::new(17);
        let config = EngineGossipConfig {
            rounds: 120,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 50, config, 17);
        // Ten nodes crash mid-run and recover 30 s later.
        for i in 0..10 {
            overlay.schedule_kill(&mut simulation, PeerId(i), SimTime::from_secs(20));
            overlay.revive(&mut simulation, PeerId(i), SimTime::from_secs(50));
        }
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 50, "revived nodes count as alive again");
        assert!(metrics.connected, "the healed overlay must reconnect");
        assert!(
            metrics.dead_references < 0.05,
            "dead references at {:.2} after healing",
            metrics.dead_references
        );
        // The revived nodes gossiped again: their views are full.
        for (id, peers) in overlay.views() {
            if id.0 < 10 {
                assert!(
                    peers.len() >= 10,
                    "revived node {id:?} still has a starved view ({})",
                    peers.len()
                );
            }
        }
    }

    #[test]
    fn rejoined_nodes_restart_from_a_live_successor() {
        let mut simulation = Simulation::new(23);
        let config = EngineGossipConfig {
            rounds: 120,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 40, config, 23);
        for i in 0..5 {
            overlay.schedule_rejoin(
                &mut simulation,
                PeerId(i),
                SimTime::from_secs(15),
                SimTime::from_secs(45),
            );
        }
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 40);
        assert!(metrics.connected);
        for (id, peers) in overlay.views() {
            if id.0 < 5 {
                assert!(
                    peers.len() >= 10,
                    "rejoined node {id:?} failed to repopulate its view ({})",
                    peers.len()
                );
            }
        }
    }

    #[test]
    fn churned_overlay_is_bit_identical_across_engines() {
        let run = |engine: &mut dyn Engine| {
            let config = EngineGossipConfig {
                rounds: 60,
                ..EngineGossipConfig::default()
            };
            let mut overlay = EngineGossipOverlay::ring(engine, 40, config, 31);
            for i in 0..4 {
                overlay.schedule_kill(engine, PeerId(i), SimTime::from_secs(10));
                overlay.revive(engine, PeerId(i), SimTime::from_secs(25));
            }
            overlay.schedule_rejoin(
                engine,
                PeerId(20),
                SimTime::from_secs(12),
                SimTime::from_secs(30),
            );
            engine.run();
            let mut views = overlay.views();
            for (_, peers) in &mut views {
                peers.sort_unstable();
            }
            views
        };
        let mut sequential = Simulation::new(31);
        let expected = run(&mut sequential);
        for shards in [2, 4, 8] {
            let mut engine = ShardedEngine::new(31, shards);
            assert_eq!(
                run(&mut engine),
                expected,
                "churned views diverged with {shards} shards"
            );
        }
    }

    #[test]
    fn wire_format_round_trips() {
        let buffer = ExchangeBuffer {
            descriptors: vec![
                Descriptor {
                    peer: PeerId(7),
                    age: 3,
                },
                Descriptor {
                    peer: PeerId(u64::MAX),
                    age: u32::MAX,
                },
            ],
        };
        assert_eq!(decode(&encode(&buffer)), Some(buffer));
        assert_eq!(decode(&[1, 2, 3]), None);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_overlay_is_rejected() {
        let mut simulation = Simulation::new(1);
        let _ = EngineGossipOverlay::ring(&mut simulation, 1, EngineGossipConfig::default(), 1);
    }
}
