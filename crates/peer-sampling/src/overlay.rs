//! The peer-sampling protocol running on a discrete-event [`Engine`] —
//! the event-driven port of [`crate::simulator::GossipSimulator`].
//!
//! Where the synchronous simulator exchanges buffers by direct method
//! calls, this overlay runs the same protocol over simulated network
//! messages: each node arms a periodic round timer, pushes its buffer to
//! the selected partner, and merges the pulled reply. Unanswered exchanges
//! (crashed partners) are blacklisted at the next round, mirroring how
//! CYCLOSA clients drop unresponsive proxies.
//!
//! Every node draws from its own seed-derived RNG stream, so an execution
//! is a pure function of `(seed, population, config)` — identical on the
//! sequential simulator and on the sharded parallel engine, for any shard
//! count.
//!
//! Partitions are first-class faults:
//! [`EngineGossipOverlay::schedule_partition`] severs the links between a
//! minority component and the rest for a window (nothing crashes), and at
//! the merge re-introduces a few bridge peers on each side so gossip can
//! re-join components that have blacklisted every reference to each other.
//!
//! The overlay is churn-observable *during* a run, not only at the end:
//! [`EngineGossipOverlay::ring_with_metrics`] threads a
//! [`cyclosa_runtime::metrics::Registry`] through every node, recording a
//! view-staleness histogram (mean descriptor age per round) and a
//! dead-reference-fraction histogram as the run unfolds. When
//! [`EngineGossipConfig::staleness_threshold`] is set, a node whose view
//! goes stale *re-assesses eagerly*: it halves its next round delay until
//! the view freshens, accelerating repair after mass failures. The
//! decision reads only the node's own deterministic view state (never the
//! metrics), so instrumented and eager runs stay bit-identical across
//! engines and shard counts.

use crate::node::{ExchangeBuffer, PeerSamplingConfig, PeerSamplingNode};
use crate::simulator::{overlay_metrics_from_views, OverlayMetrics};
use crate::view::{Descriptor, PeerId, View};
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_runtime::metrics::{Counter, Histogram, Registry};
use cyclosa_util::rng::{SplitMix64, Xoshiro256StarStar};
use std::sync::{Arc, Mutex, RwLock};

/// Message tag: push half of a gossip exchange.
const TAG_PUSH: u32 = 0x9001;
/// Message tag: pull reply of a gossip exchange.
const TAG_REPLY: u32 = 0x9002;

/// Timer-token base of merge-bridge reseeds: a timer with token
/// `BRIDGE_BASE + peer` tells the node to insert a fresh descriptor of
/// `peer` into its view (the directory-assisted re-introduction after a
/// partition merges), instead of running a gossip round.
const BRIDGE_BASE: u64 = 1 << 32;

/// Configuration of the event-driven gossip overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineGossipConfig {
    /// Parameters of the underlying peer-sampling protocol.
    pub protocol: PeerSamplingConfig,
    /// Number of gossip rounds each node initiates.
    pub rounds: usize,
    /// Interval between a node's rounds (must comfortably exceed one
    /// network round trip so replies arrive before the next round).
    pub round_period: SimTime,
    /// Mean view age (in rounds) beyond which a node considers its view
    /// stale and re-assesses eagerly: its next round fires after half the
    /// period, until the view freshens. `None` keeps the fixed cadence.
    pub staleness_threshold: Option<u32>,
}

impl Default for EngineGossipConfig {
    fn default() -> Self {
        Self {
            protocol: PeerSamplingConfig::default(),
            rounds: 30,
            round_period: SimTime::from_secs(1),
            staleness_threshold: None,
        }
    }
}

fn encode(buffer: &ExchangeBuffer) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(buffer.descriptors.len() * 12);
    for descriptor in &buffer.descriptors {
        bytes.extend_from_slice(&descriptor.peer.0.to_le_bytes());
        bytes.extend_from_slice(&descriptor.age.to_le_bytes());
    }
    bytes
}

fn decode(bytes: &[u8]) -> Option<ExchangeBuffer> {
    if !bytes.len().is_multiple_of(12) {
        return None;
    }
    let descriptors = bytes
        .chunks_exact(12)
        .map(|chunk| Descriptor {
            peer: PeerId(u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"))),
            age: u32::from_le_bytes(chunk[8..].try_into().expect("4 bytes")),
        })
        .collect();
    Some(ExchangeBuffer { descriptors })
}

fn node_rng(seed: u64, id: u64) -> Xoshiro256StarStar {
    let mut sm = SplitMix64::new(seed);
    let base = cyclosa_util::rng::Rng::next_u64(&mut sm);
    Xoshiro256StarStar::seed_from_u64(base ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The scenario driver's knowledge of who is dead *when*: a
/// piecewise-constant liveness timeline per peer, built from the kill /
/// revive / rejoin schedule. Behaviours evaluate it at their own simulated
/// round time, so the live dead-reference histogram reflects the state at
/// the moment of each sample rather than at scheduling time (a kill
/// scheduled for `t = 100 s` must not count as dead at `t = 5 s`).
/// Same-instant marks apply in call order (last write wins), mirroring
/// `LossSchedule`.
#[derive(Debug, Default)]
struct DeadTimeline {
    steps: std::collections::BTreeMap<PeerId, Vec<(SimTime, bool)>>,
}

impl DeadTimeline {
    fn mark(&mut self, at: SimTime, peer: PeerId, dead: bool) {
        let steps = self.steps.entry(peer).or_default();
        let index = steps.partition_point(|(t, _)| *t <= at);
        steps.insert(index, (at, dead));
    }

    /// Whether `peer` is dead at simulated time `at`.
    fn is_dead_at(&self, peer: PeerId, at: SimTime) -> bool {
        self.steps
            .get(&peer)
            .is_some_and(|steps| match steps.partition_point(|(t, _)| *t <= at) {
                0 => false,
                n => steps[n - 1].1,
            })
    }

    /// Whether `peer` ends the schedule dead (the end-of-run state the
    /// overlay's `views`/`metrics`/`len` accessors report against).
    fn is_dead_finally(&self, peer: PeerId) -> bool {
        self.steps
            .get(&peer)
            .and_then(|steps| steps.last())
            .is_some_and(|(_, dead)| *dead)
    }

    /// Number of peers that end the schedule dead.
    fn finally_dead(&self) -> usize {
        self.steps
            .values()
            .filter(|steps| steps.last().is_some_and(|(_, dead)| *dead))
            .count()
    }
}

/// The live-observability handles every gossip participant records into.
/// Cheap Arc-backed clones of the same registry-owned metrics; recording
/// never draws randomness and never feeds back into scheduling, so
/// instrumented runs stay bit-identical to uninstrumented ones.
#[derive(Debug, Clone)]
struct OverlayProbes {
    /// Mean descriptor age of a node's view, recorded every round.
    staleness_rounds: Histogram,
    /// Fraction (permille) of a node's view pointing at dead peers,
    /// recorded every round.
    dead_fraction_permille: Histogram,
    /// Rounds that fired on the shortened eager cadence.
    eager_rounds: Counter,
}

impl OverlayProbes {
    fn from_registry(registry: &Registry) -> Self {
        Self {
            staleness_rounds: registry.histogram("overlay.view_staleness_rounds"),
            dead_fraction_permille: registry.histogram("overlay.dead_view_references_permille"),
            eager_rounds: registry.counter("overlay.eager_rounds"),
        }
    }
}

/// Mean descriptor age of a view, rounded to whole rounds (`None` for an
/// empty view).
fn mean_view_age(view: &View) -> Option<u64> {
    let descriptors = view.descriptors();
    if descriptors.is_empty() {
        return None;
    }
    let total: u64 = descriptors.iter().map(|d| u64::from(d.age)).sum();
    Some(total / descriptors.len() as u64)
}

/// One gossip participant driven by engine events.
struct GossipBehavior {
    node: Arc<Mutex<PeerSamplingNode>>,
    rng: Xoshiro256StarStar,
    rounds_left: usize,
    round_period: SimTime,
    staleness_threshold: Option<u32>,
    /// Live-metrics handles — `None` for plain [`EngineGossipOverlay::ring`]
    /// deployments, which then skip the per-round recording (and the shared
    /// dead-timeline lock) entirely.
    probes: Option<OverlayProbes>,
    /// The scenario driver's kill/revive schedule, evaluated at round time
    /// — observability only, never consulted by protocol logic.
    dead: Arc<RwLock<DeadTimeline>>,
    /// The exchange in flight, if any: partner, sent buffer and the round
    /// time the push went out (blacklisting waits a full `round_period`
    /// from here, however short the eager cadence gets).
    awaiting: Option<(PeerId, ExchangeBuffer, SimTime)>,
}

impl GossipBehavior {
    /// Records the round's live metrics (when a registry is attached) and
    /// decides whether the view is stale enough for an eager next round.
    /// The staleness decision reads only the node's own view
    /// (deterministic engine state), never the metrics, so eager and
    /// instrumented runs remain bit-identical across engines.
    fn observe_round(&self, node: &PeerSamplingNode, now: SimTime) -> bool {
        if self.probes.is_none() && self.staleness_threshold.is_none() {
            return false;
        }
        let Some(mean_age) = mean_view_age(node.view()) else {
            return false;
        };
        if let Some(probes) = &self.probes {
            probes.staleness_rounds.record(mean_age);
            // Shared read lock only: the timeline is mutated exclusively by
            // the scenario driver between runs, so concurrent shards never
            // serialize on it mid-run.
            let dead = self.dead.read().expect("dead timeline poisoned");
            let view_len = node.view().len();
            let dead_refs = node
                .view()
                .descriptors()
                .iter()
                .filter(|d| dead.is_dead_at(d.peer, now))
                .count();
            probes
                .dead_fraction_permille
                .record((dead_refs * 1000 / view_len) as u64);
        }
        self.staleness_threshold
            .is_some_and(|threshold| mean_age > u64::from(threshold))
    }
}

impl NodeBehavior for GossipBehavior {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        let Some(received) = decode(&envelope.payload) else {
            return;
        };
        let mut node = self.node.lock().expect("gossip node poisoned");
        match envelope.tag {
            TAG_PUSH => {
                // Passive side: answer with our own buffer, then merge.
                let reply = node.prepare_buffer(&mut self.rng);
                ctx.send(envelope.src, TAG_REPLY, encode(&reply));
                node.merge(&received, &reply, &mut self.rng);
            }
            TAG_REPLY
                // Active side: merge against the buffer we sent, but only
                // for the exchange actually in flight (a reply straggling
                // past the next round's blacklisting is dropped).
                if self
                    .awaiting
                    .as_ref()
                    .is_some_and(|(partner, _, _)| partner.0 == envelope.src.0)
                => {
                    let (_, sent, _) = self.awaiting.take().expect("checked above");
                    node.merge(&received, &sent, &mut self.rng);
                }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let mut node = self.node.lock().expect("gossip node poisoned");
        if token >= BRIDGE_BASE {
            // A merge-bridge reseed: learn the cross-partition peer afresh
            // so the next rounds gossip the two healed sides back into one
            // overlay. Not a round — no ageing, no round spend.
            node.bootstrap([PeerId(token - BRIDGE_BASE)]);
            return;
        }
        if let Some((partner, sent, since)) = self.awaiting.take() {
            // The partner gets the full round period to answer — the
            // contract `round_period` is sized against — before it is
            // blacklisted, exactly as CYCLOSA clients blacklist
            // unresponsive proxies.
            let elapsed = ctx.now().saturating_sub(since);
            if elapsed >= self.round_period {
                node.blacklist(partner);
            } else {
                // An eager (half-period) wake caught the exchange still
                // within its round-trip budget. This is not a round: no
                // ageing, no rounds_left spend, no spurious blacklist —
                // just re-arm for the remainder of the partner's budget.
                self.awaiting = Some((partner, sent, since));
                ctx.set_timer(self.round_period - elapsed, 0);
                return;
            }
        }
        node.increase_ages();
        let stale = self.observe_round(&node, ctx.now());
        if let Some(partner) = node.select_partner(&mut self.rng) {
            let buffer = node.prepare_buffer(&mut self.rng);
            ctx.send(NodeId(partner.0), TAG_PUSH, encode(&buffer));
            self.awaiting = Some((partner, buffer, ctx.now()));
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        if self.rounds_left > 0 {
            // Eager re-assessment: a stale view gossips again after half a
            // period, accelerating repair after mass failures.
            let delay = if stale {
                if let Some(probes) = &self.probes {
                    probes.eager_rounds.inc();
                }
                SimTime::from_nanos(self.round_period.as_nanos() / 2)
            } else {
                self.round_period
            };
            ctx.set_timer(delay, 0);
        }
    }
}

/// A gossip overlay deployed on an [`Engine`]; inspect views and quality
/// metrics after `engine.run()`, or pass a [`Registry`] to
/// [`EngineGossipOverlay::ring_with_metrics`] for live per-round staleness
/// and dead-reference histograms.
#[derive(Debug)]
pub struct EngineGossipOverlay {
    handles: Vec<(PeerId, Arc<Mutex<PeerSamplingNode>>)>,
    dead: Arc<RwLock<DeadTimeline>>,
    probes: Option<OverlayProbes>,
    config: EngineGossipConfig,
    seed: u64,
}

impl EngineGossipOverlay {
    /// Registers `count` nodes bootstrapped in a ring (node `i` initially
    /// knows only its successor) on `engine`, each initiating
    /// `config.rounds` gossip rounds. Call `engine.run()` afterwards to
    /// execute the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    pub fn ring<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: EngineGossipConfig,
        seed: u64,
    ) -> Self {
        // No registry: nodes skip per-round recording (and the shared
        // dead-timeline lock) entirely.
        Self::deploy(engine, count, config, seed, None)
    }

    /// [`EngineGossipOverlay::ring`] with live observability: every node
    /// records its per-round view staleness and dead-reference fraction
    /// into `registry` (histograms `overlay.view_staleness_rounds` and
    /// `overlay.dead_view_references_permille`, counter
    /// `overlay.eager_rounds`) *while the run executes* — today's
    /// [`EngineGossipOverlay::metrics`] end-of-run summary stays available
    /// on top.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    pub fn ring_with_metrics<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: EngineGossipConfig,
        seed: u64,
        registry: &Registry,
    ) -> Self {
        Self::deploy(
            engine,
            count,
            config,
            seed,
            Some(OverlayProbes::from_registry(registry)),
        )
    }

    fn deploy<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: EngineGossipConfig,
        seed: u64,
        probes: Option<OverlayProbes>,
    ) -> Self {
        assert!(count >= 2, "a gossip overlay needs at least two nodes");
        let dead = Arc::new(RwLock::new(DeadTimeline::default()));
        let mut handles = Vec::with_capacity(count);
        for i in 0..count {
            let id = PeerId(i as u64);
            let mut node = PeerSamplingNode::new(id, config.protocol);
            node.bootstrap([PeerId(((i + 1) % count) as u64)]);
            let handle = Arc::new(Mutex::new(node));
            handles.push((id, handle.clone()));
            engine.add_node(
                NodeId(id.0),
                Box::new(GossipBehavior {
                    node: handle,
                    rng: node_rng(seed, id.0),
                    rounds_left: config.rounds,
                    round_period: config.round_period,
                    staleness_threshold: config.staleness_threshold,
                    probes: probes.clone(),
                    dead: dead.clone(),
                    awaiting: None,
                }),
            );
            engine.schedule_timer(config.round_period, NodeId(id.0), 0);
        }
        Self {
            handles,
            dead,
            probes,
            config,
            seed,
        }
    }

    /// Crashes `peer` on the engine: it stops gossiping and answering, and
    /// is excluded from [`EngineGossipOverlay::metrics`]. Call between
    /// engine runs, not while one is in progress.
    pub fn kill<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId) {
        let now = engine.now();
        engine.crash(NodeId(peer.0));
        self.dead
            .write()
            .expect("dead timeline poisoned")
            .mark(now, peer, true);
    }

    /// Schedules `peer` to crash at simulated time `at` — a deterministic
    /// mid-run failure (the rest of the overlay repairs itself through the
    /// blacklist-on-silence rule).
    pub fn schedule_kill<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId, at: SimTime) {
        engine.schedule_crash(at, NodeId(peer.0));
        self.dead
            .write()
            .expect("dead timeline poisoned")
            .mark(at, peer, true);
    }

    /// Schedules `peer` to recover at simulated time `at`, state intact,
    /// and re-arms its round timer so gossip resumes: its stale view heals
    /// as fresh descriptors flow in, and the rest of the population
    /// re-learns it from the descriptors it pushes.
    pub fn revive<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId, at: SimTime) {
        engine.schedule_recover(at, NodeId(peer.0));
        // Timers of crashed nodes are dropped at fire time, so the round
        // chain broke at the crash — restart it one period after recovery
        // (membership sorts before timers in the same slot, so even an
        // `at`-aligned timer would find the node alive).
        engine.schedule_timer(at + self.config.round_period, NodeId(peer.0), 0);
        self.dead
            .write()
            .expect("dead timeline poisoned")
            .mark(at, peer, false);
    }

    /// Schedules `peer` to leave at `at` and rejoin at `rejoin_at` with a
    /// **fresh** protocol state, bootstrapped on its ring successor among
    /// the population alive *at the rejoin instant* (the
    /// directory-assisted re-entry of the paper's bootstrap, §V-D). The
    /// rejoined node runs `config.rounds` new gossip rounds; its first
    /// fires one round period after the rejoin.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not part of the overlay or no other peer is
    /// alive at `rejoin_at` to bootstrap from.
    pub fn schedule_rejoin<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        peer: PeerId,
        at: SimTime,
        rejoin_at: SimTime,
    ) {
        let position = self
            .handles
            .iter()
            .position(|(id, _)| *id == peer)
            .expect("peer must be part of the overlay");
        // The successor must be alive when the rejoined node boots from it
        // — a peer merely scheduled to recover *later* would leave the
        // fresh view pointing at a dead node for its whole first rounds.
        let successor = {
            let dead = self.dead.read().expect("dead timeline poisoned");
            (1..self.handles.len())
                .map(|offset| self.handles[(position + offset) % self.handles.len()].0)
                .find(|candidate| !dead.is_dead_at(*candidate, rejoin_at) && *candidate != peer)
                .expect("need an alive peer to bootstrap the rejoin from")
        };
        engine.schedule_leave(at, NodeId(peer.0));
        let mut node = PeerSamplingNode::new(peer, self.config.protocol);
        node.bootstrap([successor]);
        let handle = Arc::new(Mutex::new(node));
        self.handles[position].1 = handle.clone();
        engine.schedule_join(
            rejoin_at,
            NodeId(peer.0),
            Box::new(GossipBehavior {
                node: handle,
                rng: node_rng(self.seed, peer.0),
                rounds_left: self.config.rounds,
                round_period: self.config.round_period,
                staleness_threshold: self.config.staleness_threshold,
                probes: self.probes.clone(),
                dead: self.dead.clone(),
                awaiting: None,
            }),
        );
        engine.schedule_timer(rejoin_at + self.config.round_period, NodeId(peer.0), 0);
        // Dead exactly for the `[at, rejoin_at)` window: the live
        // histograms see it dead in between, the end-of-run accessors see
        // it back.
        let mut dead = self.dead.write().expect("dead timeline poisoned");
        dead.mark(at, peer, true);
        dead.mark(rejoin_at, peer, false);
    }

    /// Schedules a network partition: every link between `minority` and
    /// the rest of the overlay is severed from `split_at` until `merge_at`
    /// (both directions), via the engine's link-group loss windows. No
    /// node crashes — each component keeps gossiping internally, cross
    /// references go stale and are blacklisted on silence, so views end
    /// the window side-local.
    ///
    /// **Merge healing:** gossip alone cannot re-join the components —
    /// once every cross reference has been blacklisted, neither side holds
    /// a descriptor of the other, and views only ever spread what views
    /// contain. So at `merge_at` the first `bridges` nodes of each side
    /// are re-introduced to a peer on the other side (a fresh descriptor
    /// inserted through a bridge timer — the directory-assisted re-entry
    /// of the paper's bootstrap, §V-D, applied to partition repair), and
    /// ordinary gossip spreads the re-discovered side from there. Pass
    /// `bridges: 0` to measure the unhealed case. Repair progress shows in
    /// the live staleness histogram of
    /// [`EngineGossipOverlay::ring_with_metrics`]: mean view age climbs
    /// while cross references starve and relaxes back after the merge.
    ///
    /// # Panics
    ///
    /// Panics if `merge_at <= split_at`, or `minority` is empty or covers
    /// the whole overlay.
    pub fn schedule_partition<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        minority: &[PeerId],
        split_at: SimTime,
        merge_at: SimTime,
        bridges: usize,
    ) {
        assert!(
            merge_at > split_at,
            "a partition must merge after it splits"
        );
        let minority_nodes: Vec<NodeId> = minority.iter().map(|p| NodeId(p.0)).collect();
        let majority: Vec<PeerId> = self
            .handles
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| !minority.contains(id))
            .collect();
        assert!(
            !minority.is_empty() && !majority.is_empty(),
            "a partition needs non-empty sides"
        );
        let majority_nodes: Vec<NodeId> = majority.iter().map(|p| NodeId(p.0)).collect();
        engine.schedule_link_loss(split_at, &minority_nodes, &majority_nodes, 1.0);
        engine.schedule_link_loss(split_at, &majority_nodes, &minority_nodes, 1.0);
        engine.schedule_link_loss(merge_at, &minority_nodes, &majority_nodes, 0.0);
        engine.schedule_link_loss(merge_at, &majority_nodes, &minority_nodes, 0.0);
        for i in 0..bridges {
            let minority_bridge = minority[i % minority.len()];
            let majority_bridge = majority[i % majority.len()];
            engine.schedule_timer(
                merge_at,
                NodeId(minority_bridge.0),
                BRIDGE_BASE + majority_bridge.0,
            );
            engine.schedule_timer(
                merge_at,
                NodeId(majority_bridge.0),
                BRIDGE_BASE + minority_bridge.0,
            );
        }
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.handles.len()
            - self
                .dead
                .read()
                .expect("dead timeline poisoned")
                .finally_dead()
    }

    /// Returns `true` when no node is alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current `(node, view peers)` pairs of the alive population,
    /// sorted by node id.
    pub fn views(&self) -> Vec<(PeerId, Vec<PeerId>)> {
        let dead = self.dead.read().expect("dead timeline poisoned");
        self.handles
            .iter()
            .filter(|(id, _)| !dead.is_dead_finally(*id))
            .map(|(id, node)| {
                (
                    *id,
                    node.lock().expect("gossip node poisoned").view().peers(),
                )
            })
            .collect()
    }

    /// Overlay quality metrics over the alive population.
    pub fn metrics(&self) -> OverlayMetrics {
        overlay_metrics_from_views(&self.views())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_net::sim::Simulation;
    use cyclosa_runtime::ShardedEngine;

    fn converged_views(
        engine: &mut dyn Engine,
        count: usize,
        seed: u64,
    ) -> Vec<(PeerId, Vec<PeerId>)> {
        let overlay = EngineGossipOverlay::ring(engine, count, EngineGossipConfig::default(), seed);
        engine.run();
        let mut views = overlay.views();
        for (_, peers) in &mut views {
            peers.sort_unstable();
        }
        views
    }

    #[test]
    fn ring_bootstrap_converges_on_the_event_engine() {
        let mut simulation = Simulation::new(8);
        let overlay =
            EngineGossipOverlay::ring(&mut simulation, 100, EngineGossipConfig::default(), 8);
        simulation.run();
        let metrics = overlay.metrics();
        assert!(metrics.connected, "overlay must stay connected");
        assert_eq!(metrics.nodes, 100);
        let mean_view: f64 = overlay
            .views()
            .iter()
            .map(|(_, v)| v.len() as f64)
            .sum::<f64>()
            / 100.0;
        assert!(mean_view > 15.0, "mean view size was {mean_view}");
        assert!(
            metrics.max_in_degree < 60,
            "max in-degree {}",
            metrics.max_in_degree
        );
    }

    #[test]
    fn sharded_overlay_is_bit_identical_to_sequential() {
        let mut sequential = Simulation::new(21);
        let expected = converged_views(&mut sequential, 60, 21);
        for shards in [2, 4] {
            let mut engine = ShardedEngine::new(21, shards);
            let observed = converged_views(&mut engine, 60, 21);
            assert_eq!(observed, expected, "views diverged with {shards} shards");
        }
    }

    #[test]
    fn crashed_nodes_are_blacklisted_and_forgotten() {
        let mut simulation = Simulation::new(5);
        let config = EngineGossipConfig {
            rounds: 60,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 60, config, 5);
        simulation.run_until(SimTime::from_secs(20));
        for i in 0..10 {
            overlay.kill(&mut simulation, PeerId(i));
        }
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 50);
        assert!(metrics.connected);
        assert!(
            metrics.dead_references < 0.10,
            "dead references still at {:.2}",
            metrics.dead_references
        );
    }

    #[test]
    fn revived_nodes_resume_gossip_and_heal_their_views() {
        let mut simulation = Simulation::new(17);
        let config = EngineGossipConfig {
            rounds: 120,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 50, config, 17);
        // Ten nodes crash mid-run and recover 30 s later.
        for i in 0..10 {
            overlay.schedule_kill(&mut simulation, PeerId(i), SimTime::from_secs(20));
            overlay.revive(&mut simulation, PeerId(i), SimTime::from_secs(50));
        }
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 50, "revived nodes count as alive again");
        assert!(metrics.connected, "the healed overlay must reconnect");
        assert!(
            metrics.dead_references < 0.05,
            "dead references at {:.2} after healing",
            metrics.dead_references
        );
        // The revived nodes gossiped again: their views are full.
        for (id, peers) in overlay.views() {
            if id.0 < 10 {
                assert!(
                    peers.len() >= 10,
                    "revived node {id:?} still has a starved view ({})",
                    peers.len()
                );
            }
        }
    }

    #[test]
    fn rejoined_nodes_restart_from_a_live_successor() {
        let mut simulation = Simulation::new(23);
        let config = EngineGossipConfig {
            rounds: 120,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 40, config, 23);
        for i in 0..5 {
            overlay.schedule_rejoin(
                &mut simulation,
                PeerId(i),
                SimTime::from_secs(15),
                SimTime::from_secs(45),
            );
        }
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 40);
        assert!(metrics.connected);
        for (id, peers) in overlay.views() {
            if id.0 < 5 {
                assert!(
                    peers.len() >= 10,
                    "rejoined node {id:?} failed to repopulate its view ({})",
                    peers.len()
                );
            }
        }
    }

    #[test]
    fn churned_overlay_is_bit_identical_across_engines() {
        let run = |engine: &mut dyn Engine| {
            let config = EngineGossipConfig {
                rounds: 60,
                ..EngineGossipConfig::default()
            };
            let mut overlay = EngineGossipOverlay::ring(engine, 40, config, 31);
            for i in 0..4 {
                overlay.schedule_kill(engine, PeerId(i), SimTime::from_secs(10));
                overlay.revive(engine, PeerId(i), SimTime::from_secs(25));
            }
            overlay.schedule_rejoin(
                engine,
                PeerId(20),
                SimTime::from_secs(12),
                SimTime::from_secs(30),
            );
            engine.run();
            let mut views = overlay.views();
            for (_, peers) in &mut views {
                peers.sort_unstable();
            }
            views
        };
        let mut sequential = Simulation::new(31);
        let expected = run(&mut sequential);
        for shards in [2, 4, 8] {
            let mut engine = ShardedEngine::new(31, shards);
            assert_eq!(
                run(&mut engine),
                expected,
                "churned views diverged with {shards} shards"
            );
        }
    }

    #[test]
    fn live_metrics_record_staleness_and_dead_references_during_the_run() {
        let mut simulation = Simulation::new(41);
        let registry = Registry::new();
        let config = EngineGossipConfig {
            rounds: 60,
            ..EngineGossipConfig::default()
        };
        let mut overlay =
            EngineGossipOverlay::ring_with_metrics(&mut simulation, 50, config, 41, &registry);
        simulation.run_until(SimTime::from_secs(15));
        for i in 0..15 {
            overlay.schedule_kill(&mut simulation, PeerId(i), SimTime::from_secs(16));
        }
        simulation.run();
        let snapshot = registry.snapshot();
        let staleness = &snapshot
            .histograms
            .iter()
            .find(|(name, _)| name == "overlay.view_staleness_rounds")
            .expect("staleness histogram registered")
            .1;
        assert!(staleness.count > 0, "staleness must be sampled per round");
        let dead_fraction = &snapshot
            .histograms
            .iter()
            .find(|(name, _)| name == "overlay.dead_view_references_permille")
            .expect("dead-reference histogram registered")
            .1;
        assert!(dead_fraction.count > 0);
        assert!(
            dead_fraction.max > 0,
            "after a mass kill some views must reference dead peers"
        );
        // Without a staleness threshold the cadence never shortens.
        let eager = snapshot
            .counters
            .iter()
            .find(|(name, _)| name == "overlay.eager_rounds")
            .expect("eager counter registered")
            .1;
        assert_eq!(eager, 0);
    }

    #[test]
    fn stale_views_trigger_eager_rounds_that_accelerate_repair() {
        let run = |threshold: Option<u32>| {
            let mut simulation = Simulation::new(43);
            let registry = Registry::new();
            let config = EngineGossipConfig {
                rounds: 40,
                staleness_threshold: threshold,
                ..EngineGossipConfig::default()
            };
            let mut overlay =
                EngineGossipOverlay::ring_with_metrics(&mut simulation, 50, config, 43, &registry);
            // A third of the population dies at once: survivors' views go
            // stale until gossip washes the dead references out.
            for i in 0..16 {
                overlay.schedule_kill(&mut simulation, PeerId(i), SimTime::from_secs(10));
            }
            simulation.run();
            let eager = registry.counter("overlay.eager_rounds").get();
            (simulation.now(), eager, overlay.metrics())
        };
        let (fixed_end, fixed_eager, fixed_metrics) = run(None);
        let (eager_end, eager_rounds, eager_metrics) = run(Some(2));
        assert_eq!(fixed_eager, 0);
        assert!(
            eager_rounds > 0,
            "a mass kill must push mean view age past the threshold"
        );
        assert!(
            eager_end < fixed_end,
            "eager rounds compress the run ({eager_end} vs {fixed_end})"
        );
        assert!(fixed_metrics.connected && eager_metrics.connected);
        assert!(
            eager_metrics.dead_references <= fixed_metrics.dead_references + 1e-9,
            "eager re-assessment must not heal slower ({:.3} vs {:.3})",
            eager_metrics.dead_references,
            fixed_metrics.dead_references
        );
    }

    #[test]
    fn eager_overlay_is_bit_identical_across_engines() {
        let run = |engine: &mut dyn Engine| {
            let config = EngineGossipConfig {
                rounds: 40,
                staleness_threshold: Some(2),
                ..EngineGossipConfig::default()
            };
            let mut overlay = EngineGossipOverlay::ring(engine, 40, config, 47);
            for i in 0..10 {
                overlay.schedule_kill(engine, PeerId(i), SimTime::from_secs(8));
            }
            engine.run();
            let mut views = overlay.views();
            for (_, peers) in &mut views {
                peers.sort_unstable();
            }
            views
        };
        let mut sequential = Simulation::new(47);
        let expected = run(&mut sequential);
        for shards in [2, 4, 8] {
            let mut engine = ShardedEngine::new(47, shards);
            assert_eq!(
                run(&mut engine),
                expected,
                "eager views diverged with {shards} shards"
            );
        }
    }

    /// Views holding at least one reference across the `boundary` (ids
    /// below it on one side, at or above on the other).
    fn cross_side_views(views: &[(PeerId, Vec<PeerId>)], boundary: u64) -> usize {
        views
            .iter()
            .filter(|(id, peers)| {
                let minority = id.0 < boundary;
                peers.iter().any(|p| (p.0 < boundary) != minority)
            })
            .count()
    }

    #[test]
    fn partitioned_overlay_re_merges_only_with_bridge_healing() {
        let run = |bridges: usize| {
            let mut simulation = Simulation::new(67);
            let config = EngineGossipConfig {
                rounds: 90,
                ..EngineGossipConfig::default()
            };
            let mut overlay = EngineGossipOverlay::ring(&mut simulation, 40, config, 67);
            let minority: Vec<PeerId> = (0..12).map(PeerId).collect();
            overlay.schedule_partition(
                &mut simulation,
                &minority,
                SimTime::from_secs(10),
                SimTime::from_secs(45),
                bridges,
            );
            simulation.run();
            (overlay.metrics(), overlay.views())
        };
        let (unhealed_metrics, unhealed_views) = run(0);
        let (healed_metrics, healed_views) = run(3);
        // Without bridges the sides have blacklisted each other away:
        // gossip alone cannot re-join them after the merge.
        assert!(
            !unhealed_metrics.connected,
            "an unbridged merge must stay split at the overlay level"
        );
        assert_eq!(cross_side_views(&unhealed_views, 12), 0);
        // Three bridge pairs re-introduce the sides; gossip does the rest.
        assert!(healed_metrics.connected, "bridged merge must reconnect");
        assert!(
            cross_side_views(&healed_views, 12) > 20,
            "healing must spread cross-side references well beyond the bridges ({} views)",
            cross_side_views(&healed_views, 12)
        );
        assert!(healed_metrics.dead_references < 0.05);
    }

    #[test]
    fn partition_shows_up_in_the_live_staleness_histogram() {
        let run = |partitioned: bool| {
            let mut simulation = Simulation::new(73);
            let registry = Registry::new();
            let config = EngineGossipConfig {
                rounds: 60,
                ..EngineGossipConfig::default()
            };
            let mut overlay =
                EngineGossipOverlay::ring_with_metrics(&mut simulation, 40, config, 73, &registry);
            if partitioned {
                let minority: Vec<PeerId> = (0..12).map(PeerId).collect();
                overlay.schedule_partition(
                    &mut simulation,
                    &minority,
                    SimTime::from_secs(10),
                    SimTime::from_secs(40),
                    3,
                );
            }
            simulation.run();
            let snapshot = registry.snapshot();
            let staleness = snapshot
                .histograms
                .iter()
                .find(|(name, _)| name == "overlay.view_staleness_rounds")
                .expect("staleness histogram registered")
                .1;
            (staleness, overlay.metrics())
        };
        let (calm, calm_metrics) = run(false);
        let (split, split_metrics) = run(true);
        assert!(calm_metrics.connected && split_metrics.connected);
        assert!(
            split.max > calm.max,
            "starved cross references must push view staleness up ({} vs {})",
            split.max,
            calm.max
        );
    }

    #[test]
    fn partitioned_overlay_is_bit_identical_across_engines() {
        let run = |engine: &mut dyn Engine| {
            let config = EngineGossipConfig {
                rounds: 50,
                ..EngineGossipConfig::default()
            };
            let mut overlay = EngineGossipOverlay::ring(engine, 30, config, 79);
            let minority: Vec<PeerId> = (0..9).map(PeerId).collect();
            overlay.schedule_partition(
                engine,
                &minority,
                SimTime::from_secs(8),
                SimTime::from_secs(30),
                2,
            );
            engine.run();
            let mut views = overlay.views();
            for (_, peers) in &mut views {
                peers.sort_unstable();
            }
            views
        };
        let mut sequential = Simulation::new(79);
        let expected = run(&mut sequential);
        for shards in [2, 4, 8] {
            let mut engine = ShardedEngine::new(79, shards);
            assert_eq!(
                run(&mut engine),
                expected,
                "partitioned views diverged with {shards} shards"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty sides")]
    fn partition_covering_everyone_is_rejected() {
        let mut simulation = Simulation::new(1);
        let mut overlay =
            EngineGossipOverlay::ring(&mut simulation, 4, EngineGossipConfig::default(), 1);
        let everyone: Vec<PeerId> = (0..4).map(PeerId).collect();
        overlay.schedule_partition(
            &mut simulation,
            &everyone,
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            1,
        );
    }

    #[test]
    fn rejoin_bootstraps_from_a_peer_alive_at_the_rejoin_instant() {
        // Node 1 (node 0's ring successor) is down exactly across node 0's
        // rejoin window; the bootstrap must skip it for node 2 even though
        // node 1 recovers later (it is not "finally dead").
        let mut simulation = Simulation::new(61);
        let config = EngineGossipConfig {
            rounds: 60,
            ..EngineGossipConfig::default()
        };
        let mut overlay = EngineGossipOverlay::ring(&mut simulation, 20, config, 61);
        overlay.schedule_kill(&mut simulation, PeerId(1), SimTime::from_secs(5));
        overlay.revive(&mut simulation, PeerId(1), SimTime::from_secs(40));
        overlay.schedule_rejoin(
            &mut simulation,
            PeerId(0),
            SimTime::from_secs(8),
            SimTime::from_secs(15),
        );
        // Before the run, the freshly bootstrapped view must point at the
        // first successor alive at t = 15 s — node 2, not the down node 1.
        let (_, node0) = &overlay.handles[0];
        let boot_view = node0.lock().expect("node poisoned").view().peers();
        assert_eq!(boot_view, vec![PeerId(2)]);
        simulation.run();
        let metrics = overlay.metrics();
        assert_eq!(metrics.nodes, 20);
        assert!(metrics.connected);
    }

    #[test]
    fn dead_timeline_is_evaluated_at_event_time_not_scheduling_time() {
        let mut timeline = DeadTimeline::default();
        // Scheduled long before the run reaches it: alive until `at`.
        timeline.mark(SimTime::from_secs(100), PeerId(1), true);
        assert!(!timeline.is_dead_at(PeerId(1), SimTime::from_secs(5)));
        assert!(timeline.is_dead_at(PeerId(1), SimTime::from_secs(100)));
        assert!(timeline.is_dead_finally(PeerId(1)));
        // A rejoin window [20 s, 50 s): dead inside, alive either side.
        timeline.mark(SimTime::from_secs(20), PeerId(2), true);
        timeline.mark(SimTime::from_secs(50), PeerId(2), false);
        assert!(!timeline.is_dead_at(PeerId(2), SimTime::from_secs(19)));
        assert!(timeline.is_dead_at(PeerId(2), SimTime::from_secs(35)));
        assert!(!timeline.is_dead_at(PeerId(2), SimTime::from_secs(50)));
        assert!(!timeline.is_dead_finally(PeerId(2)));
        assert_eq!(timeline.finally_dead(), 1);
        // Same-instant marks apply in call order (last write wins).
        timeline.mark(SimTime::from_secs(10), PeerId(3), true);
        timeline.mark(SimTime::from_secs(10), PeerId(3), false);
        assert!(!timeline.is_dead_at(PeerId(3), SimTime::from_secs(10)));
    }

    #[test]
    fn dead_reference_histogram_ignores_kills_that_have_not_fired_yet() {
        // The whole population gossips for 10 s; a mass kill is scheduled
        // for long after the last round. No sample may count the
        // still-alive peers as dead references.
        let mut simulation = Simulation::new(53);
        let registry = Registry::new();
        let config = EngineGossipConfig {
            rounds: 10,
            ..EngineGossipConfig::default()
        };
        let mut overlay =
            EngineGossipOverlay::ring_with_metrics(&mut simulation, 30, config, 53, &registry);
        for i in 0..10 {
            overlay.schedule_kill(&mut simulation, PeerId(i), SimTime::from_secs(3600));
        }
        simulation.run_until(SimTime::from_secs(15));
        let snapshot = registry.snapshot();
        let dead_fraction = &snapshot
            .histograms
            .iter()
            .find(|(name, _)| name == "overlay.dead_view_references_permille")
            .expect("dead-reference histogram registered")
            .1;
        assert!(dead_fraction.count > 0, "rounds must have been sampled");
        assert_eq!(
            dead_fraction.max, 0,
            "a kill scheduled for t=3600s may not count as dead at t<15s"
        );
    }

    #[test]
    fn wire_format_round_trips() {
        let buffer = ExchangeBuffer {
            descriptors: vec![
                Descriptor {
                    peer: PeerId(7),
                    age: 3,
                },
                Descriptor {
                    peer: PeerId(u64::MAX),
                    age: u32::MAX,
                },
            ],
        };
        assert_eq!(decode(&encode(&buffer)), Some(buffer));
        assert_eq!(decode(&[1, 2, 3]), None);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_overlay_is_rejected() {
        let mut simulation = Simulation::new(1);
        let _ = EngineGossipOverlay::ring(&mut simulation, 1, EngineGossipConfig::default(), 1);
    }
}
