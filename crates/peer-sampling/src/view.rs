//! Partial views: bounded sets of aged node descriptors.

/// Identifier of a peer in the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u64);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

/// A node descriptor: a peer identifier plus the age of the descriptor
/// (number of gossip rounds since it was created by its owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The peer this descriptor points to.
    pub peer: PeerId,
    /// Gossip age; fresher descriptors (lower age) are preferred.
    pub age: u32,
}

impl Descriptor {
    /// Creates a fresh (age 0) descriptor for `peer`.
    pub fn fresh(peer: PeerId) -> Self {
        Self { peer, age: 0 }
    }
}

/// A bounded partial view of the overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    capacity: usize,
    descriptors: Vec<Descriptor>,
}

impl View {
    /// Creates an empty view with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        Self {
            capacity,
            descriptors: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of descriptors the view can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of descriptors.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Returns `true` when the view holds no descriptor.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// The descriptors currently in the view.
    pub fn descriptors(&self) -> &[Descriptor] {
        &self.descriptors
    }

    /// The peers currently in the view.
    pub fn peers(&self) -> Vec<PeerId> {
        self.descriptors.iter().map(|d| d.peer).collect()
    }

    /// Returns `true` if the view contains a descriptor for `peer`.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.descriptors.iter().any(|d| d.peer == peer)
    }

    /// Inserts a descriptor, keeping only the freshest descriptor per peer
    /// and never exceeding capacity (the oldest descriptor is evicted).
    pub fn insert(&mut self, descriptor: Descriptor) {
        if let Some(existing) = self
            .descriptors
            .iter_mut()
            .find(|d| d.peer == descriptor.peer)
        {
            if descriptor.age < existing.age {
                existing.age = descriptor.age;
            }
            return;
        }
        if self.descriptors.len() < self.capacity {
            self.descriptors.push(descriptor);
            return;
        }
        // Evict the oldest descriptor if the newcomer is fresher.
        if let Some((idx, oldest)) = self
            .descriptors
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.age)
        {
            if descriptor.age < oldest.age {
                self.descriptors[idx] = descriptor;
            }
        }
    }

    /// Inserts a descriptor keeping only the freshest entry per peer but
    /// *without* enforcing the capacity bound. Used by the gossip merge,
    /// which appends the whole received buffer before applying the healer /
    /// swapper policies and truncating back to capacity.
    pub fn insert_unbounded(&mut self, descriptor: Descriptor) {
        if let Some(existing) = self
            .descriptors
            .iter_mut()
            .find(|d| d.peer == descriptor.peer)
        {
            if descriptor.age < existing.age {
                existing.age = descriptor.age;
            }
            return;
        }
        self.descriptors.push(descriptor);
    }

    /// Removes the descriptor of `peer`, returning `true` if it was present.
    pub fn remove(&mut self, peer: PeerId) -> bool {
        let before = self.descriptors.len();
        self.descriptors.retain(|d| d.peer != peer);
        before != self.descriptors.len()
    }

    /// Removes the `count` oldest descriptors (the *healer* policy step).
    pub fn remove_oldest(&mut self, count: usize) {
        for _ in 0..count.min(self.descriptors.len()) {
            if let Some((idx, _)) = self
                .descriptors
                .iter()
                .enumerate()
                .max_by_key(|(_, d)| d.age)
            {
                self.descriptors.swap_remove(idx);
            }
        }
    }

    /// Removes the first `count` descriptors (the *swapper* policy step —
    /// these are the items that were just sent to the exchange partner).
    pub fn remove_first(&mut self, count: usize) {
        let count = count.min(self.descriptors.len());
        self.descriptors.drain(..count);
    }

    /// Removes random descriptors until the view fits its capacity.
    pub fn truncate_random<R: cyclosa_util::rng::Rng + ?Sized>(&mut self, rng: &mut R) {
        while self.descriptors.len() > self.capacity {
            let idx = rng.gen_index(self.descriptors.len());
            self.descriptors.swap_remove(idx);
        }
    }

    /// Increments the age of every descriptor.
    pub fn increase_ages(&mut self) {
        for d in &mut self.descriptors {
            d.age = d.age.saturating_add(1);
        }
    }

    /// The oldest descriptor, if any.
    pub fn oldest(&self) -> Option<Descriptor> {
        self.descriptors.iter().copied().max_by_key(|d| d.age)
    }

    /// A uniformly random descriptor, if any.
    pub fn random<R: cyclosa_util::rng::Rng + ?Sized>(&self, rng: &mut R) -> Option<Descriptor> {
        rng.choose(&self.descriptors).copied()
    }

    /// A random sample (without replacement) of up to `count` descriptors.
    pub fn sample<R: cyclosa_util::rng::Rng + ?Sized>(
        &self,
        rng: &mut R,
        count: usize,
    ) -> Vec<Descriptor> {
        rng.sample_indices(self.descriptors.len(), count)
            .into_iter()
            .map(|i| self.descriptors[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    #[test]
    fn insert_respects_capacity_and_freshness() {
        let mut view = View::new(3);
        for i in 0..3 {
            view.insert(Descriptor {
                peer: PeerId(i),
                age: i as u32,
            });
        }
        assert_eq!(view.len(), 3);
        // A fresher descriptor evicts the oldest one.
        view.insert(Descriptor {
            peer: PeerId(99),
            age: 0,
        });
        assert_eq!(view.len(), 3);
        assert!(view.contains(PeerId(99)));
        assert!(!view.contains(PeerId(2)));
        // An older descriptor does not evict anything.
        view.insert(Descriptor {
            peer: PeerId(100),
            age: 50,
        });
        assert!(!view.contains(PeerId(100)));
    }

    #[test]
    fn duplicate_peer_keeps_freshest_age() {
        let mut view = View::new(4);
        view.insert(Descriptor {
            peer: PeerId(1),
            age: 5,
        });
        view.insert(Descriptor {
            peer: PeerId(1),
            age: 2,
        });
        assert_eq!(view.len(), 1);
        assert_eq!(view.descriptors()[0].age, 2);
        view.insert(Descriptor {
            peer: PeerId(1),
            age: 9,
        });
        assert_eq!(view.descriptors()[0].age, 2);
    }

    #[test]
    fn remove_oldest_and_first() {
        let mut view = View::new(5);
        for i in 0..5 {
            view.insert(Descriptor {
                peer: PeerId(i),
                age: i as u32,
            });
        }
        view.remove_oldest(2);
        assert_eq!(view.len(), 3);
        assert!(!view.contains(PeerId(4)));
        assert!(!view.contains(PeerId(3)));
        view.remove_first(1);
        assert_eq!(view.len(), 2);
        assert!(!view.contains(PeerId(0)));
    }

    #[test]
    fn ages_increase_and_oldest_is_found() {
        let mut view = View::new(3);
        view.insert(Descriptor {
            peer: PeerId(1),
            age: 0,
        });
        view.insert(Descriptor {
            peer: PeerId(2),
            age: 4,
        });
        view.increase_ages();
        assert_eq!(view.oldest().unwrap().peer, PeerId(2));
        assert_eq!(view.oldest().unwrap().age, 5);
    }

    #[test]
    fn sampling_and_random_selection() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut view = View::new(10);
        for i in 0..10 {
            view.insert(Descriptor::fresh(PeerId(i)));
        }
        let sample = view.sample(&mut rng, 4);
        assert_eq!(sample.len(), 4);
        let peers: std::collections::BTreeSet<_> = sample.iter().map(|d| d.peer).collect();
        assert_eq!(peers.len(), 4);
        assert!(view.random(&mut rng).is_some());
        assert!(View::new(2).random(&mut rng).is_none());
    }

    #[test]
    fn truncate_random_enforces_capacity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let mut view = View::new(3);
        // Bypass insert's capacity logic by building an oversized view the
        // way the merge step does.
        for i in 0..3 {
            view.insert(Descriptor::fresh(PeerId(i)));
        }
        view.descriptors.push(Descriptor::fresh(PeerId(10)));
        view.descriptors.push(Descriptor::fresh(PeerId(11)));
        view.truncate_random(&mut rng);
        assert_eq!(view.len(), 3);
    }

    #[test]
    fn remove_returns_presence() {
        let mut view = View::new(2);
        view.insert(Descriptor::fresh(PeerId(7)));
        assert!(view.remove(PeerId(7)));
        assert!(!view.remove(PeerId(7)));
        assert!(view.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = View::new(0);
    }
}
