//! A single participant of the gossip-based peer-sampling protocol.
//!
//! The implementation follows the generic protocol skeleton of Jelasity et
//! al. (ACM TOCS 2007): in every round a node selects a partner from its
//! view, the two exchange (push–pull) buffers containing a fresh descriptor
//! of the sender plus a sample of its view, and each merges the received
//! buffer into its view under the *healer* (drop oldest) and *swapper*
//! (drop sent) policies.

use crate::view::{Descriptor, PeerId, View};
use cyclosa_util::rng::Rng;

/// How a node picks its gossip partner each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPolicy {
    /// Pick a uniformly random peer from the view.
    Random,
    /// Pick the peer with the oldest descriptor ("tail" policy), which
    /// accelerates the removal of dead peers.
    Oldest,
}

/// Protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerSamplingConfig {
    /// View size `c`.
    pub view_size: usize,
    /// Number of descriptors exchanged per gossip (`c/2` in the paper's
    /// canonical configuration, including the sender's own fresh entry).
    pub exchange_size: usize,
    /// Healer parameter `H`: how many of the oldest items are dropped
    /// during the merge.
    pub healer: usize,
    /// Swapper parameter `S`: how many of the items just sent are dropped
    /// during the merge.
    pub swapper: usize,
    /// Partner selection policy.
    pub selection: SelectionPolicy,
}

impl Default for PeerSamplingConfig {
    fn default() -> Self {
        // c = 20, exchange c/2, H = 1, S = 9, tail selection: the
        // self-healing configuration recommended by Jelasity et al.
        Self {
            view_size: 20,
            exchange_size: 10,
            healer: 1,
            swapper: 9,
            selection: SelectionPolicy::Oldest,
        }
    }
}

/// The buffer exchanged between two gossip partners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeBuffer {
    /// Descriptors being shipped (the sender's own fresh descriptor first).
    pub descriptors: Vec<Descriptor>,
}

/// One peer-sampling protocol participant.
#[derive(Debug, Clone)]
pub struct PeerSamplingNode {
    id: PeerId,
    view: View,
    config: PeerSamplingConfig,
    rounds: u64,
}

impl PeerSamplingNode {
    /// Creates a node with an empty view.
    pub fn new(id: PeerId, config: PeerSamplingConfig) -> Self {
        Self {
            id,
            view: View::new(config.view_size),
            config,
            rounds: 0,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Read access to the current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The protocol configuration.
    pub fn config(&self) -> PeerSamplingConfig {
        self.config
    }

    /// Seeds the view with bootstrap peers (e.g. from a public directory,
    /// as CYCLOSA does at start-up).
    pub fn bootstrap(&mut self, peers: impl IntoIterator<Item = PeerId>) {
        for p in peers {
            if p != self.id {
                self.view.insert(Descriptor::fresh(p));
            }
        }
    }

    /// Selects the gossip partner for this round.
    pub fn select_partner<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<PeerId> {
        match self.config.selection {
            SelectionPolicy::Random => self.view.random(rng).map(|d| d.peer),
            SelectionPolicy::Oldest => self.view.oldest().map(|d| d.peer),
        }
    }

    /// Builds the buffer to send to the partner: the node's own fresh
    /// descriptor plus a random sample of its view.
    pub fn prepare_buffer<R: Rng + ?Sized>(&self, rng: &mut R) -> ExchangeBuffer {
        let mut descriptors = vec![Descriptor::fresh(self.id)];
        let sample = self
            .view
            .sample(rng, self.config.exchange_size.saturating_sub(1));
        descriptors.extend(sample);
        ExchangeBuffer { descriptors }
    }

    /// Merges a received buffer into the view, applying the healer and
    /// swapper policies. `sent` is the buffer this node sent to the partner
    /// in the same exchange (empty for the passive side of a push-only
    /// exchange).
    pub fn merge<R: Rng + ?Sized>(
        &mut self,
        received: &ExchangeBuffer,
        sent: &ExchangeBuffer,
        rng: &mut R,
    ) {
        // Append received descriptors (ignoring ourselves), keeping the
        // freshest entry per peer; capacity is restored below.
        for d in &received.descriptors {
            if d.peer != self.id {
                self.view.insert_unbounded(*d);
            }
        }
        // Per the reference protocol, the healer and swapper removals only
        // ever shrink the view down towards its capacity, never below it.
        let excess = self.view.len().saturating_sub(self.config.view_size);
        // Healer: drop up to H of the oldest items.
        self.view.remove_oldest(self.config.healer.min(excess));
        // Swapper: drop up to S of the items we just shipped out.
        let mut swapped = 0;
        for d in sent.descriptors.iter().skip(1) {
            if swapped >= self.config.swapper || self.view.len() <= self.config.view_size {
                break;
            }
            if self.view.remove(d.peer) {
                swapped += 1;
            }
        }
        // Random truncation down to capacity.
        self.view.truncate_random(rng);
    }

    /// Advances the node's local clock: ages every descriptor by one round.
    pub fn increase_ages(&mut self) {
        self.view.increase_ages();
        self.rounds += 1;
    }

    /// Number of gossip rounds this node has aged through — the view-age
    /// clock consumers use to judge how stale a decision made against an
    /// earlier view has become (e.g. `CyclosaNode`'s eager plan refresh).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Removes a peer known to be dead (e.g. blacklisted after repeatedly
    /// failing to answer, as CYCLOSA does for unresponsive proxies).
    pub fn blacklist(&mut self, peer: PeerId) -> bool {
        self.view.remove(peer)
    }

    /// Draws `count` distinct random peers from the view — the API CYCLOSA
    /// uses to pick the `k + 1` relays for a query.
    pub fn random_peers<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<PeerId> {
        self.view
            .sample(rng, count)
            .into_iter()
            .map(|d| d.peer)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    fn config() -> PeerSamplingConfig {
        PeerSamplingConfig {
            view_size: 6,
            exchange_size: 3,
            healer: 1,
            swapper: 2,
            selection: SelectionPolicy::Oldest,
        }
    }

    #[test]
    fn bootstrap_excludes_self() {
        let mut node = PeerSamplingNode::new(PeerId(0), config());
        node.bootstrap([PeerId(0), PeerId(1), PeerId(2)]);
        assert_eq!(node.view().len(), 2);
        assert!(!node.view().contains(PeerId(0)));
    }

    #[test]
    fn prepare_buffer_starts_with_fresh_self() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut node = PeerSamplingNode::new(PeerId(5), config());
        node.bootstrap((0..4).map(PeerId));
        let buffer = node.prepare_buffer(&mut rng);
        assert_eq!(buffer.descriptors[0].peer, PeerId(5));
        assert_eq!(buffer.descriptors[0].age, 0);
        assert!(buffer.descriptors.len() <= config().exchange_size);
    }

    #[test]
    fn partner_selection_prefers_oldest() {
        let mut node = PeerSamplingNode::new(PeerId(0), config());
        node.bootstrap([PeerId(1), PeerId(2)]);
        node.increase_ages();
        node.bootstrap([PeerId(3)]);
        assert_ne!(
            node.select_partner(&mut Xoshiro256StarStar::seed_from_u64(1)),
            Some(PeerId(3))
        );
    }

    #[test]
    fn merge_learns_new_peers_and_respects_capacity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut node = PeerSamplingNode::new(PeerId(0), config());
        node.bootstrap((1..=6).map(PeerId));
        let received = ExchangeBuffer {
            descriptors: vec![
                Descriptor::fresh(PeerId(100)),
                Descriptor {
                    peer: PeerId(101),
                    age: 1,
                },
                Descriptor::fresh(PeerId(0)), // self must be ignored
            ],
        };
        let sent = ExchangeBuffer {
            descriptors: vec![Descriptor::fresh(PeerId(0)), Descriptor::fresh(PeerId(1))],
        };
        node.merge(&received, &sent, &mut rng);
        assert!(node.view().len() <= config().view_size);
        assert!(node.view().contains(PeerId(100)) || node.view().contains(PeerId(101)));
        assert!(!node.view().contains(PeerId(0)));
    }

    #[test]
    fn blacklist_removes_peer() {
        let mut node = PeerSamplingNode::new(PeerId(0), config());
        node.bootstrap([PeerId(1), PeerId(2)]);
        assert!(node.blacklist(PeerId(1)));
        assert!(!node.view().contains(PeerId(1)));
        assert!(!node.blacklist(PeerId(1)));
    }

    #[test]
    fn random_peers_are_distinct() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut node = PeerSamplingNode::new(PeerId(0), config());
        node.bootstrap((1..=6).map(PeerId));
        let peers = node.random_peers(&mut rng, 4);
        let distinct: std::collections::BTreeSet<_> = peers.iter().collect();
        assert_eq!(peers.len(), 4);
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn rounds_count_age_advances() {
        let mut node = PeerSamplingNode::new(PeerId(0), config());
        assert_eq!(node.rounds(), 0);
        node.increase_ages();
        node.increase_ages();
        assert_eq!(node.rounds(), 2);
    }

    #[test]
    fn empty_view_has_no_partner() {
        let node = PeerSamplingNode::new(PeerId(0), config());
        assert_eq!(
            node.select_partner(&mut Xoshiro256StarStar::seed_from_u64(1)),
            None
        );
    }
}
