//! Protocol-native membership: SWIM probing over HyParView views on the
//! deterministic event engine.
//!
//! [`SwimGossipOverlay`] is an alternative to the shuffle-based
//! [`crate::EngineGossipOverlay`]: instead of inferring failures from
//! descriptor staleness, every node runs an explicit SWIM probe loop
//! over HyParView active/passive views. Per round, a node
//!
//! 1. **probes** the next peer of its randomized round-robin cycle
//!    (direct `PING`; on timeout, indirect `PING_REQ` through `proxies`
//!    intermediaries; still silent ⇒ *suspect* with an expiry timer);
//! 2. **re-probes one quarantined peer** — a peer previously declared
//!    dead. The ping carries the sender's belief (`dead@i`), so a live
//!    target learns it was written off, bumps its incarnation to `i+1`
//!    and acks the refutation, which overrides `dead@i` everywhere the
//!    rumor spreads. This is how a re-merged partition heals with
//!    **zero** bridge peers: each side keeps knocking on the graves it
//!    dug, and the first post-merge knock resurrects the other side;
//! 3. **promotes** a probe-verified passive peer whenever the active
//!    view has a vacancy (probe-before-promote: the candidate is pinged
//!    and only joins the active view when its ack returns);
//! 4. **shuffles** a view sample with a random active peer every few
//!    rounds, refilling the passive reservoir.
//!
//! Every message piggybacks bounded-retransmission rumors
//! ([`FailureDetector::take_rumors`]), so membership conclusions spread
//! at gossip speed without dedicated traffic.
//!
//! # Determinism
//!
//! All state lives in the pure [`FailureDetector`] / [`PartialViews`]
//! machines and is mutated only inside `on_message`/`on_timer`, in the
//! engine's deterministic event order; each node draws from its own
//! forked RNG stream. Runs are therefore bit-identical across the
//! sequential engine and any shard count — including the per-observer
//! membership timelines, which the property suite compares byte for
//! byte. Telemetry (`mship.*` spans) only *reads* protocol state, per
//! the zero-perturbation contract of `cyclosa-telemetry`.

use crate::hyparview::{HyParViewConfig, PartialViews};
use crate::simulator::{overlay_metrics_from_views, OverlayMetrics};
use crate::swim::{FailureDetector, MemberState, MembershipEvent, MembershipEventKind, SwimRumor};
use crate::view::PeerId;
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_telemetry::trace::{NodeTracer, TraceSink};
use cyclosa_util::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Message tag: direct or relayed liveness probe.
const TAG_PING: u32 = 0xA001;
/// Message tag: probe acknowledgement (possibly relayed back by a proxy).
const TAG_ACK: u32 = 0xA002;
/// Message tag: ask a proxy to probe a target on our behalf.
const TAG_PING_REQ: u32 = 0xA003;
/// Message tag: view shuffle offer.
const TAG_SHUFFLE: u32 = 0xA004;
/// Message tag: view shuffle answer.
const TAG_SHUFFLE_REPLY: u32 = 0xA005;

/// Timer token: start the next protocol round.
const TOKEN_ROUND: u64 = 0;
/// Timer-token base: a direct probe of `token - DIRECT_TIMEOUT_BASE`
/// timed out (escalate to indirect probing).
const DIRECT_TIMEOUT_BASE: u64 = 1 << 32;
/// Timer-token base: indirect probing of the peer also timed out
/// (suspect it).
const INDIRECT_TIMEOUT_BASE: u64 = 1 << 33;
/// Timer-token base: a suspicion expired (declare the peer dead unless
/// it refuted in the meantime).
const SUSPECT_BASE: u64 = 1 << 34;
/// Timer-token base: a probe-before-promote handshake went unanswered.
const PROMOTE_TIMEOUT_BASE: u64 = 1 << 35;
/// Timer token: drain one scheduled incarnation forgery — the
/// adversarial gossip lie injected by
/// [`SwimGossipOverlay::schedule_incarnation_forgery`].
const TOKEN_FORGE: u64 = 1 << 36;

/// Configuration of the SWIM/HyParView membership overlay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipConfig {
    /// Active/passive view capacities and shuffle sample sizes.
    pub views: HyParViewConfig,
    /// Number of protocol rounds each node initiates.
    pub rounds: usize,
    /// Interval between a node's rounds.
    pub round_period: SimTime,
    /// How long a direct (and then an indirect) probe may stay
    /// unanswered. The full direct+indirect escalation takes two of
    /// these, which must fit within one round period.
    pub probe_timeout: SimTime,
    /// How long a suspected peer has to refute before it is declared
    /// dead. Several round periods, so the suspicion rumor can reach the
    /// peer and its refutation can travel back.
    pub suspicion_timeout: SimTime,
    /// Number of proxies asked for an indirect probe.
    pub proxies: usize,
    /// A shuffle is initiated every this-many rounds.
    pub shuffle_every: u64,
    /// How many messages each rumor piggybacks on before retiring.
    pub rumor_transmissions: u32,
    /// Maximum rumors piggybacked per message.
    pub piggyback: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        // Timings sized against the calibrated WAN latency model
        // (median one-way ≈ 140 ms): a 900 ms probe window covers the
        // direct round trip's tail, and the suspicion timeout spans
        // three rounds so a falsely-suspected peer reliably hears the
        // rumor and its refutation travels back before expiry.
        Self {
            views: HyParViewConfig::default(),
            rounds: 60,
            round_period: SimTime::from_secs(2),
            probe_timeout: SimTime::from_millis(900),
            suspicion_timeout: SimTime::from_secs(6),
            proxies: 3,
            shuffle_every: 2,
            rumor_transmissions: 4,
            piggyback: 8,
        }
    }
}

/// Closed set of membership trace-event names this overlay (and the
/// chaos client's relay prober) may emit. `trace_check` rejects any
/// other `mship.*` name, keeping the telemetry schema contract closed.
// cyclosa-lint: schema-registry
pub const MEMBERSHIP_EVENT_NAMES: [&str; 8] = [
    "mship.probe",
    "mship.alive",
    "mship.suspect",
    "mship.refute",
    "mship.dead",
    "mship.promote",
    "mship.quarantine",
    "mship.readmit",
];

fn node_rng(seed: u64, id: u64) -> Xoshiro256StarStar {
    let mut sm = SplitMix64::new(seed);
    Xoshiro256StarStar::seed_from_u64(sm.next_u64() ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

// ---------------------------------------------------------------------
// Wire codec. All integers little-endian; rumors are 17-byte records
// (peer u64, state u8, incarnation u64) appended after a one-byte count.
// ---------------------------------------------------------------------

fn put_rumors(bytes: &mut Vec<u8>, rumors: &[SwimRumor]) {
    bytes.push(u8::try_from(rumors.len()).expect("piggyback limit fits a byte"));
    for rumor in rumors {
        bytes.extend_from_slice(&rumor.peer.0.to_le_bytes());
        bytes.push(rumor.state.to_wire());
        bytes.extend_from_slice(&rumor.incarnation.to_le_bytes());
    }
}

/// Cursor-based reader over a received payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn u64(&mut self) -> Option<u64> {
        let chunk = self.bytes.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(chunk.try_into().expect("8 bytes")))
    }

    fn u8(&mut self) -> Option<u8> {
        let byte = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(byte)
    }

    fn rumors(&mut self) -> Option<Vec<SwimRumor>> {
        let count = self.u8()?;
        let mut rumors = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let peer = PeerId(self.u64()?);
            let state = MemberState::from_wire(self.u8()?)?;
            let incarnation = self.u64()?;
            rumors.push(SwimRumor {
                peer,
                state,
                incarnation,
            });
        }
        Some(rumors)
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

struct Ping {
    origin: u64,
    seq: u64,
    believed: SwimRumor,
    rumors: Vec<SwimRumor>,
}

fn encode_ping(ping: &Ping) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(26 + ping.rumors.len() * 17);
    bytes.extend_from_slice(&ping.origin.to_le_bytes());
    bytes.extend_from_slice(&ping.seq.to_le_bytes());
    bytes.push(ping.believed.state.to_wire());
    bytes.extend_from_slice(&ping.believed.incarnation.to_le_bytes());
    put_rumors(&mut bytes, &ping.rumors);
    bytes
}

fn decode_ping(bytes: &[u8], target: PeerId) -> Option<Ping> {
    let mut r = Reader::new(bytes);
    let origin = r.u64()?;
    let seq = r.u64()?;
    let state = MemberState::from_wire(r.u8()?)?;
    let incarnation = r.u64()?;
    let rumors = r.rumors()?;
    r.done().then_some(Ping {
        origin,
        seq,
        believed: SwimRumor {
            peer: target,
            state,
            incarnation,
        },
        rumors,
    })
}

struct Ack {
    origin: u64,
    seq: u64,
    target: u64,
    incarnation: u64,
    rumors: Vec<SwimRumor>,
}

fn encode_ack(ack: &Ack) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(33 + ack.rumors.len() * 17);
    bytes.extend_from_slice(&ack.origin.to_le_bytes());
    bytes.extend_from_slice(&ack.seq.to_le_bytes());
    bytes.extend_from_slice(&ack.target.to_le_bytes());
    bytes.extend_from_slice(&ack.incarnation.to_le_bytes());
    put_rumors(&mut bytes, &ack.rumors);
    bytes
}

fn decode_ack(bytes: &[u8]) -> Option<Ack> {
    let mut r = Reader::new(bytes);
    let ack = Ack {
        origin: r.u64()?,
        seq: r.u64()?,
        target: r.u64()?,
        incarnation: r.u64()?,
        rumors: r.rumors()?,
    };
    r.done().then_some(ack)
}

struct PingReq {
    origin: u64,
    seq: u64,
    target: u64,
    believed_state: MemberState,
    believed_incarnation: u64,
    rumors: Vec<SwimRumor>,
}

fn encode_ping_req(req: &PingReq) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(34 + req.rumors.len() * 17);
    bytes.extend_from_slice(&req.origin.to_le_bytes());
    bytes.extend_from_slice(&req.seq.to_le_bytes());
    bytes.extend_from_slice(&req.target.to_le_bytes());
    bytes.push(req.believed_state.to_wire());
    bytes.extend_from_slice(&req.believed_incarnation.to_le_bytes());
    put_rumors(&mut bytes, &req.rumors);
    bytes
}

fn decode_ping_req(bytes: &[u8]) -> Option<PingReq> {
    let mut r = Reader::new(bytes);
    let req = PingReq {
        origin: r.u64()?,
        seq: r.u64()?,
        target: r.u64()?,
        believed_state: MemberState::from_wire(r.u8()?)?,
        believed_incarnation: r.u64()?,
        rumors: r.rumors()?,
    };
    r.done().then_some(req)
}

struct Shuffle {
    peers: Vec<PeerId>,
    rumors: Vec<SwimRumor>,
}

fn encode_shuffle(shuffle: &Shuffle) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(2 + shuffle.peers.len() * 8 + shuffle.rumors.len() * 17);
    bytes.push(u8::try_from(shuffle.peers.len()).expect("shuffle sample fits a byte"));
    for peer in &shuffle.peers {
        bytes.extend_from_slice(&peer.0.to_le_bytes());
    }
    put_rumors(&mut bytes, &shuffle.rumors);
    bytes
}

fn decode_shuffle(bytes: &[u8]) -> Option<Shuffle> {
    let mut r = Reader::new(bytes);
    let count = r.u8()?;
    let mut peers = Vec::with_capacity(count as usize);
    for _ in 0..count {
        peers.push(PeerId(r.u64()?));
    }
    let rumors = r.rumors()?;
    r.done().then_some(Shuffle { peers, rumors })
}

// ---------------------------------------------------------------------
// Per-node protocol state and behavior.
// ---------------------------------------------------------------------

/// The shareable part of one node's membership state: inspected by the
/// overlay handle after (or between) runs.
struct MembershipState {
    detector: FailureDetector,
    views: PartialViews,
    /// Last time firsthand traffic arrived from each peer (staleness
    /// observability; never read by protocol decisions).
    last_heard: BTreeMap<PeerId, SimTime>,
    /// Scheduled incarnation forgeries `(victim, jump)`, drained one per
    /// `TOKEN_FORGE` firing in scheduling order.
    forged: Vec<(PeerId, u64)>,
}

struct MembershipBehavior {
    state: Arc<Mutex<MembershipState>>,
    rng: Xoshiro256StarStar,
    config: MembershipConfig,
    rounds_left: usize,
    round: u64,
    seq: u64,
    /// The direct/indirect probe currently awaiting an ack.
    pending_probe: Option<(PeerId, u64)>,
    /// The probe-before-promote handshake currently awaiting an ack.
    promote_pending: Option<(PeerId, u64)>,
    quarantine_cursor: usize,
    /// Round-robin cursor of the per-round defendant knock (re-pinging
    /// one suspected member so it can refute firsthand).
    suspect_cursor: usize,
    tracer: NodeTracer,
}

impl MembershipBehavior {
    fn self_peer(ctx: &Context<'_>) -> PeerId {
        PeerId(ctx.self_id().0)
    }

    /// Absorbs everything the detector concluded since `timeline_start`:
    /// reconciles the views (quarantine on death, readmit on refutation),
    /// arms suspicion-expiry timers, and emits the matching `mship.*`
    /// trace events. Centralizing this keeps rumor-driven and
    /// probe-driven transitions on exactly one code path.
    fn absorb(
        &mut self,
        ctx: &mut Context<'_>,
        state: &mut MembershipState,
        timeline_start: usize,
    ) {
        let fresh: Vec<MembershipEvent> = state.detector.timeline()[timeline_start..].to_vec();
        for event in fresh {
            match event.kind {
                MembershipEventKind::Suspect => {
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            self.tracer
                                .event("mship.suspect")
                                .attr("peer", event.peer.0)
                                .attr("incarnation", event.incarnation),
                        );
                    }
                    // Every observer arms its own expiry, so a dead peer
                    // is declared dead even where the original suspector
                    // is unreachable.
                    ctx.set_timer(self.config.suspicion_timeout, SUSPECT_BASE + event.peer.0);
                }
                MembershipEventKind::Dead => {
                    let was_active = state.views.note_dead(event.peer);
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            self.tracer
                                .event("mship.dead")
                                .attr("peer", event.peer.0)
                                .attr("incarnation", event.incarnation)
                                .attr("was_active", was_active),
                        );
                        self.tracer.emit(
                            self.tracer
                                .event("mship.quarantine")
                                .attr("peer", event.peer.0),
                        );
                    }
                    if self.pending_probe.is_some_and(|(p, _)| p == event.peer) {
                        self.pending_probe = None;
                    }
                    if self.promote_pending.is_some_and(|(p, _)| p == event.peer) {
                        self.promote_pending = None;
                    }
                }
                MembershipEventKind::Refute => {
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            self.tracer
                                .event("mship.refute")
                                .attr("peer", event.peer.0)
                                .attr("incarnation", event.incarnation),
                        );
                    }
                    if state.views.readmit(event.peer, &mut self.rng) && self.tracer.is_enabled() {
                        self.tracer.emit(
                            self.tracer
                                .event("mship.readmit")
                                .attr("peer", event.peer.0),
                        );
                    }
                }
                MembershipEventKind::Alive => {
                    if self.tracer.is_enabled() {
                        self.tracer.emit(
                            self.tracer
                                .event("mship.alive")
                                .attr("peer", event.peer.0)
                                .attr("incarnation", event.incarnation),
                        );
                    }
                }
            }
        }
    }

    fn send_ping(
        &mut self,
        ctx: &mut Context<'_>,
        state: &mut MembershipState,
        target: PeerId,
        quarantined: bool,
    ) -> u64 {
        self.seq += 1;
        let (believed_state, believed_incarnation) = state
            .detector
            .state_of(target)
            .map_or((MemberState::Alive, 0), |(s, i, _)| (s, i));
        let ping = Ping {
            origin: Self::self_peer(ctx).0,
            seq: self.seq,
            believed: SwimRumor {
                peer: target,
                state: believed_state,
                incarnation: believed_incarnation,
            },
            rumors: state.detector.take_rumors(self.config.piggyback),
        };
        ctx.send(NodeId(target.0), TAG_PING, encode_ping(&ping));
        if self.tracer.is_enabled() {
            self.tracer.emit(
                self.tracer
                    .event("mship.probe")
                    .attr("peer", target.0)
                    .attr("quarantined", quarantined),
            );
        }
        self.seq
    }

    fn run_round(&mut self, ctx: &mut Context<'_>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        self.round += 1;
        let state = self.state.clone();
        let mut state = state.lock().expect("membership state poisoned");
        let start = state.detector.timeline().len();

        // 1. Direct probe of the next cycle member.
        if let Some(target) = state.detector.next_probe_target(&mut self.rng) {
            let seq = self.send_ping(ctx, &mut state, target, false);
            self.pending_probe = Some((target, seq));
            ctx.set_timer(self.config.probe_timeout, DIRECT_TIMEOUT_BASE + target.0);
        }

        // 2. Knock on one grave: re-probe a quarantined peer so a
        //    re-merged partition's refutation can begin.
        if !state.views.quarantine().is_empty() {
            let quarantined = state.views.quarantine().to_vec();
            let target = quarantined[self.quarantine_cursor % quarantined.len()];
            self.quarantine_cursor = self.quarantine_cursor.wrapping_add(1);
            self.send_ping(ctx, &mut state, target, true);
        }

        // 2b. The defendant's right of reply: re-ping one currently
        //     suspected member each round, carrying the suspicion it is
        //     accused of. Epidemic dissemination alone can take several
        //     rounds to reach the accused under loss; this direct channel
        //     keeps lossy-network suspicions from maturing unrefuted.
        let suspects = state.detector.suspected_members();
        if !suspects.is_empty() {
            let target = suspects[self.suspect_cursor % suspects.len()];
            self.suspect_cursor = self.suspect_cursor.wrapping_add(1);
            if self.pending_probe.is_none_or(|(p, _)| p != target) {
                self.send_ping(ctx, &mut state, target, false);
            }
        }

        // 3. Probe-before-promote when the active view has a vacancy.
        if state.views.active_has_room() && self.promote_pending.is_none() {
            if let Some(candidate) = state.views.promote_candidate(&mut self.rng) {
                let seq = self.send_ping(ctx, &mut state, candidate, false);
                self.promote_pending = Some((candidate, seq));
                ctx.set_timer(
                    self.config.probe_timeout,
                    PROMOTE_TIMEOUT_BASE + candidate.0,
                );
            }
        }

        // 4. Periodic shuffle with a random active peer.
        if self.round.is_multiple_of(self.config.shuffle_every) {
            if let Some(partner) = self.rng.choose(state.views.active()).copied() {
                let shuffle = Shuffle {
                    peers: state.views.shuffle_sample(&mut self.rng),
                    rumors: state.detector.take_rumors(self.config.piggyback),
                };
                ctx.send(NodeId(partner.0), TAG_SHUFFLE, encode_shuffle(&shuffle));
            }
        }

        self.absorb(ctx, &mut state, start);
        if self.rounds_left > 0 {
            ctx.set_timer(self.config.round_period, TOKEN_ROUND);
        }
    }
}

impl NodeBehavior for MembershipBehavior {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        let now = ctx.now();
        self.tracer.set_now(now);
        let self_peer = Self::self_peer(ctx);
        let state = self.state.clone();
        let mut state = state.lock().expect("membership state poisoned");
        let start = state.detector.timeline().len();
        let src = PeerId(envelope.src.0);

        // Firsthand traffic from `src`: it exists, and we heard it now.
        state.detector.observe(src);
        state.last_heard.insert(src, now);
        if !state.views.is_quarantined(src) {
            state.views.add_passive(src, &mut self.rng);
        }

        // A quarantined peer that answers this node's own grave knock is
        // promoted below — after `absorb` has readmitted it.
        let mut resurrected: Option<PeerId> = None;

        match envelope.tag {
            TAG_PING => {
                let Some(ping) = decode_ping(&envelope.payload, self_peer) else {
                    return;
                };
                // The prober's belief about us: a suspicion or death
                // record makes the detector bump our incarnation and
                // queue the refutation, which the ack carries back.
                let _ = state.detector.apply(ping.believed, now);
                for rumor in ping.rumors {
                    let _ = state.detector.apply(rumor, now);
                }
                state.detector.observe(PeerId(ping.origin));
                let ack = Ack {
                    origin: ping.origin,
                    seq: ping.seq,
                    target: self_peer.0,
                    incarnation: state.detector.incarnation(),
                    rumors: state.detector.take_rumors(self.config.piggyback),
                };
                ctx.send(envelope.src, TAG_ACK, encode_ack(&ack));
            }
            TAG_ACK => {
                let Some(ack) = decode_ack(&envelope.payload) else {
                    return;
                };
                for rumor in &ack.rumors {
                    let _ = state.detector.apply(*rumor, now);
                }
                if ack.origin != self_peer.0 {
                    // We proxied this probe: relay the ack to the origin.
                    ctx.send(NodeId(ack.origin), TAG_ACK, encode_ack(&ack));
                } else {
                    let target = PeerId(ack.target);
                    if state.views.is_quarantined(target) {
                        // A grave knock was answered: this is firsthand
                        // proof of resurrection, not hearsay.
                        resurrected = Some(target);
                    }
                    state.detector.ack(target, ack.incarnation, now);
                    state.last_heard.insert(target, now);
                    if self.pending_probe == Some((target, ack.seq)) {
                        self.pending_probe = None;
                    }
                    if self.promote_pending == Some((target, ack.seq)) {
                        self.promote_pending = None;
                        state.views.promote(target, &mut self.rng);
                        if state.views.active().contains(&target) && self.tracer.is_enabled() {
                            self.tracer
                                .emit(self.tracer.event("mship.promote").attr("peer", target.0));
                        }
                    }
                }
            }
            TAG_PING_REQ => {
                let Some(req) = decode_ping_req(&envelope.payload) else {
                    return;
                };
                for rumor in req.rumors {
                    let _ = state.detector.apply(rumor, now);
                }
                // Relay the probe, preserving the origin's belief so the
                // target can refute the *origin's* suspicion.
                let relayed = Ping {
                    origin: req.origin,
                    seq: req.seq,
                    believed: SwimRumor {
                        peer: PeerId(req.target),
                        state: req.believed_state,
                        incarnation: req.believed_incarnation,
                    },
                    rumors: state.detector.take_rumors(self.config.piggyback),
                };
                ctx.send(NodeId(req.target), TAG_PING, encode_ping(&relayed));
            }
            TAG_SHUFFLE | TAG_SHUFFLE_REPLY => {
                let Some(shuffle) = decode_shuffle(&envelope.payload) else {
                    return;
                };
                for rumor in shuffle.rumors {
                    let _ = state.detector.apply(rumor, now);
                }
                for peer in &shuffle.peers {
                    if *peer != self_peer && !state.views.is_quarantined(*peer) {
                        state.detector.observe(*peer);
                    }
                }
                state.views.integrate_shuffle(&shuffle.peers, &mut self.rng);
                if envelope.tag == TAG_SHUFFLE {
                    let reply = Shuffle {
                        peers: state.views.shuffle_sample(&mut self.rng),
                        rumors: state.detector.take_rumors(self.config.piggyback),
                    };
                    ctx.send(envelope.src, TAG_SHUFFLE_REPLY, encode_shuffle(&reply));
                }
            }
            _ => {}
        }
        self.absorb(ctx, &mut state, start);
        // Knock-verified resurrections are promoted straight into the
        // active view, displacing a random member to passive when full.
        // This is the re-knitting step of an unbridged partition merge:
        // both sides re-saturate their active views during the split, so
        // a vacancy-gated promotion alone would leave every cross-side
        // peer stranded in the passive reservoir forever.
        if let Some(peer) = resurrected {
            if !state.views.is_quarantined(peer) {
                state.views.promote(peer, &mut self.rng);
                if state.views.active().contains(&peer) && self.tracer.is_enabled() {
                    self.tracer
                        .emit(self.tracer.event("mship.promote").attr("peer", peer.0));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let now = ctx.now();
        self.tracer.set_now(now);
        if token == TOKEN_ROUND {
            self.run_round(ctx);
            return;
        }
        let state = self.state.clone();
        let mut state = state.lock().expect("membership state poisoned");
        let start = state.detector.timeline().len();
        if token == TOKEN_FORGE {
            // Gossip lying: fabricate firsthand evidence that the victim
            // died at an incarnation jumped far beyond anything it ever
            // advertised. `apply` records the lie locally (the forger
            // believes it) and queues it for epidemic spread; the truth
            // must win through the victim's own refutation bump.
            if !state.forged.is_empty() {
                let (victim, jump) = state.forged.remove(0);
                let believed = state
                    .detector
                    .state_of(victim)
                    .map_or(0, |(_, incarnation, _)| incarnation);
                let incarnation = believed.saturating_add(jump);
                let _ = state.detector.apply(
                    SwimRumor {
                        peer: victim,
                        state: MemberState::Dead,
                        incarnation,
                    },
                    now,
                );
                if self.tracer.is_enabled() {
                    self.tracer.emit(
                        self.tracer
                            .event("adv.lie")
                            .attr("peer", victim.0)
                            .attr("incarnation", incarnation),
                    );
                }
            }
        } else if token >= PROMOTE_TIMEOUT_BASE {
            let peer = PeerId(token - PROMOTE_TIMEOUT_BASE);
            // Candidate never acked: abandon the handshake (the next
            // round picks a fresh candidate; the silent one will be
            // probed and suspected through the ordinary cycle).
            if self.promote_pending.is_some_and(|(p, _)| p == peer) {
                self.promote_pending = None;
            }
        } else if token >= SUSPECT_BASE {
            let peer = PeerId(token - SUSPECT_BASE);
            // A node whose protocol rounds have ended no longer
            // adjudicates liveness: with no further probes or knocks, a
            // late suspicion could never be refuted, so maturing it into
            // a dead declaration would be an end-of-run artifact, not a
            // detection.
            if self.rounds_left > 0 {
                if let Some((MemberState::Suspect, _, since)) = state.detector.state_of(peer) {
                    if now.saturating_sub(since) >= self.config.suspicion_timeout {
                        state.detector.declare_dead(peer, since, now);
                    }
                }
            }
        } else if token >= INDIRECT_TIMEOUT_BASE {
            let peer = PeerId(token - INDIRECT_TIMEOUT_BASE);
            if self.pending_probe.is_some_and(|(p, _)| p == peer) {
                self.pending_probe = None;
                state.detector.suspect(peer, now);
            }
        } else if token >= DIRECT_TIMEOUT_BASE {
            let peer = PeerId(token - DIRECT_TIMEOUT_BASE);
            if let Some((pending, seq)) = self.pending_probe {
                if pending == peer {
                    // Direct probe unanswered: ask `proxies` live peers
                    // to probe on our behalf before suspecting.
                    let candidates: Vec<PeerId> = state
                        .detector
                        .live_members()
                        .into_iter()
                        .filter(|p| *p != peer)
                        .collect();
                    let (believed_state, believed_incarnation) = state
                        .detector
                        .state_of(peer)
                        .map_or((MemberState::Alive, 0), |(s, i, _)| (s, i));
                    for index in self
                        .rng
                        .sample_indices(candidates.len(), self.config.proxies)
                    {
                        let req = PingReq {
                            origin: Self::self_peer(ctx).0,
                            seq,
                            target: peer.0,
                            believed_state,
                            believed_incarnation,
                            rumors: state.detector.take_rumors(self.config.piggyback),
                        };
                        ctx.send(
                            NodeId(candidates[index].0),
                            TAG_PING_REQ,
                            encode_ping_req(&req),
                        );
                    }
                    ctx.set_timer(self.config.probe_timeout, INDIRECT_TIMEOUT_BASE + peer.0);
                }
            }
        }
        self.absorb(ctx, &mut state, start);
    }
}

// ---------------------------------------------------------------------
// The overlay handle.
// ---------------------------------------------------------------------

/// A SWIM/HyParView membership overlay deployed on a deterministic
/// engine — the protocol-native alternative to the shuffle-based
/// [`crate::EngineGossipOverlay`]. See the module docs for the protocol.
pub struct SwimGossipOverlay {
    handles: Vec<(PeerId, Arc<Mutex<MembershipState>>)>,
    dead: BTreeSet<PeerId>,
    config: MembershipConfig,
}

impl SwimGossipOverlay {
    /// Registers `count` nodes bootstrapped in a ring (node `i`'s active
    /// view holds its successors) on `engine`, each running
    /// `config.rounds` protocol rounds. Call `engine.run()` (or step
    /// with `run_until`) afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`, or the probe escalation
    /// (`2 × probe_timeout`) does not fit within one round period.
    pub fn ring<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: MembershipConfig,
        seed: u64,
    ) -> Self {
        Self::deploy(engine, count, config, seed, TraceSink::disabled())
    }

    /// [`SwimGossipOverlay::ring`] with per-node suspicion timelines
    /// exported as `mship.*` trace events through `sink`.
    ///
    /// # Panics
    ///
    /// Same as [`SwimGossipOverlay::ring`].
    pub fn ring_with_trace<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: MembershipConfig,
        seed: u64,
        sink: &TraceSink,
    ) -> Self {
        Self::deploy(engine, count, config, seed, sink.clone())
    }

    fn deploy<E: Engine + ?Sized>(
        engine: &mut E,
        count: usize,
        config: MembershipConfig,
        seed: u64,
        sink: TraceSink,
    ) -> Self {
        assert!(count >= 2, "a membership overlay needs at least two nodes");
        assert!(
            2 * config.probe_timeout.as_nanos() < config.round_period.as_nanos(),
            "probe escalation (2 × probe_timeout) must fit within one round period"
        );
        let mut handles = Vec::with_capacity(count);
        for i in 0..count {
            let id = PeerId(i as u64);
            let mut rng = node_rng(seed, id.0);
            let mut views = PartialViews::new(id, config.views);
            let fanout = config.views.active_capacity.min(count - 1);
            let mut initial = Vec::with_capacity(fanout);
            for j in 1..=fanout {
                let peer = PeerId(((i + j) % count) as u64);
                views.add_active(peer, &mut rng);
                initial.push(peer);
            }
            let detector = FailureDetector::new(id, initial, config.rumor_transmissions);
            let state = Arc::new(Mutex::new(MembershipState {
                detector,
                views,
                last_heard: BTreeMap::new(),
                forged: Vec::new(),
            }));
            handles.push((id, state.clone()));
            engine.add_node(
                NodeId(id.0),
                Box::new(MembershipBehavior {
                    state,
                    rng,
                    config,
                    rounds_left: config.rounds,
                    round: 0,
                    seq: 0,
                    pending_probe: None,
                    promote_pending: None,
                    quarantine_cursor: 0,
                    suspect_cursor: 0,
                    tracer: NodeTracer::new(sink.clone(), id.0),
                }),
            );
            engine.schedule_timer(config.round_period, NodeId(id.0), TOKEN_ROUND);
        }
        Self {
            handles,
            dead: BTreeSet::new(),
            config,
        }
    }

    /// Crashes `peer` on the engine and excludes it from the overlay
    /// accessors. Call between engine runs.
    pub fn kill<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId) {
        engine.crash(NodeId(peer.0));
        self.dead.insert(peer);
    }

    /// Schedules `peer` to crash at simulated time `at` — the rest of
    /// the overlay detects it through probing and repairs by promotion.
    pub fn schedule_kill<E: Engine + ?Sized>(&mut self, engine: &mut E, peer: PeerId, at: SimTime) {
        engine.schedule_crash(at, NodeId(peer.0));
        self.dead.insert(peer);
    }

    /// Schedules a network partition severing `minority` from the rest
    /// between `split_at` and `merge_at` — with **no** bridge peers.
    ///
    /// Unlike the shuffle overlay (which provably cannot re-join without
    /// directory-assisted bridges, because views only spread what views
    /// contain), this overlay heals natively: each side declares the
    /// other dead and *quarantines* it, quarantined peers keep being
    /// probed, and the first post-merge probe triggers an
    /// incarnation-bump refutation that readmits the target — from where
    /// promotion and shuffling re-knit the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `merge_at <= split_at`, or `minority` is empty or
    /// covers the whole overlay.
    pub fn schedule_partition<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        minority: &[PeerId],
        split_at: SimTime,
        merge_at: SimTime,
    ) {
        assert!(
            merge_at > split_at,
            "a partition must merge after it splits"
        );
        let minority_nodes: Vec<NodeId> = minority.iter().map(|p| NodeId(p.0)).collect();
        let majority: Vec<NodeId> = self
            .handles
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| !minority.contains(id))
            .map(|p| NodeId(p.0))
            .collect();
        assert!(
            !minority.is_empty() && !majority.is_empty(),
            "a partition needs non-empty sides"
        );
        engine.schedule_link_loss(split_at, &minority_nodes, &majority, 1.0);
        engine.schedule_link_loss(split_at, &majority, &minority_nodes, 1.0);
        engine.schedule_link_loss(merge_at, &minority_nodes, &majority, 0.0);
        engine.schedule_link_loss(merge_at, &majority, &minority_nodes, 0.0);
    }

    /// Schedules `forger` to inject a forged `dead` rumor about `victim`
    /// at simulated time `at`, jumping `jump` incarnations beyond the
    /// forger's current belief — SWIM gossip lying, the membership-layer
    /// shape of `ByzantinePolicy::ForgeIncarnation`. The lie spreads
    /// epidemically and quarantines the victim wherever it outruns the
    /// truth; a live victim hears the accusation through the defendant
    /// and grave knocks that follow, bumps its incarnation past the
    /// forgery, and is readmitted everywhere. Multiple forgeries drain
    /// in scheduling order, so schedule them in nondecreasing `at`.
    ///
    /// # Panics
    ///
    /// Panics if `forger == victim` or `forger` is not a deployed node.
    pub fn schedule_incarnation_forgery<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        forger: PeerId,
        victim: PeerId,
        jump: u64,
        at: SimTime,
    ) {
        assert_ne!(forger, victim, "a forger lies about *other* nodes");
        let (_, state) = self
            .handles
            .iter()
            .find(|(id, _)| *id == forger)
            .expect("forger must be a deployed node");
        state
            .lock()
            .expect("membership state poisoned")
            .forged
            .push((victim, jump));
        engine.schedule_timer(at, NodeId(forger.0), TOKEN_FORGE);
    }

    /// Number of alive nodes.
    pub fn len(&self) -> usize {
        self.handles.len() - self.dead.len()
    }

    /// Returns `true` when no node is alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured parameters.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// The `(node, active view)` pairs of the alive population, sorted
    /// by node id.
    pub fn views(&self) -> Vec<(PeerId, Vec<PeerId>)> {
        self.handles
            .iter()
            .filter(|(id, _)| !self.dead.contains(id))
            .map(|(id, state)| {
                (
                    *id,
                    state
                        .lock()
                        .expect("membership state poisoned")
                        .views
                        .active()
                        .to_vec(),
                )
            })
            .collect()
    }

    /// Overlay quality metrics over the alive population's active views.
    pub fn metrics(&self) -> OverlayMetrics {
        overlay_metrics_from_views(&self.views())
    }

    /// Every node's membership timeline (alive and crashed nodes alike —
    /// a crashed node's timeline is frozen at its crash), sorted by
    /// observer id. The per-observer record the global dead-reference
    /// histogram cannot express.
    pub fn timelines(&self) -> Vec<(PeerId, Vec<MembershipEvent>)> {
        self.handles
            .iter()
            .map(|(id, state)| {
                (
                    *id,
                    state
                        .lock()
                        .expect("membership state poisoned")
                        .detector
                        .timeline()
                        .to_vec(),
                )
            })
            .collect()
    }

    /// A canonical textual rendering of [`SwimGossipOverlay::timelines`]
    /// — the byte string the determinism suite compares across engines
    /// and shard counts.
    pub fn render_timelines(&self) -> String {
        let mut out = String::new();
        for (observer, events) in self.timelines() {
            for event in events {
                let kind = match event.kind {
                    MembershipEventKind::Alive => "alive",
                    MembershipEventKind::Suspect => "suspect",
                    MembershipEventKind::Refute => "refute",
                    MembershipEventKind::Dead => "dead",
                };
                out.push_str(&format!(
                    "{} @{} {} {} inc {}\n",
                    observer,
                    event.at.as_nanos(),
                    kind,
                    event.peer,
                    event.incarnation
                ));
            }
        }
        out
    }

    /// Mean active-view staleness in seconds at `now`: how long ago, on
    /// average, an alive node last heard firsthand from each of its
    /// active peers. The SWIM analogue of the shuffle overlay's
    /// descriptor-age staleness.
    pub fn mean_staleness(&self, now: SimTime) -> f64 {
        let mut total = 0.0;
        let mut entries = 0usize;
        for (id, state) in &self.handles {
            if self.dead.contains(id) {
                continue;
            }
            let state = state.lock().expect("membership state poisoned");
            for peer in state.views.active() {
                let heard = state.last_heard.get(peer).copied().unwrap_or(SimTime::ZERO);
                total += now.saturating_sub(heard).as_secs_f64();
                entries += 1;
            }
        }
        if entries == 0 {
            0.0
        } else {
            total / entries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_net::sim::Simulation;
    use cyclosa_runtime::ShardedEngine;

    fn cross_side_views(views: &[(PeerId, Vec<PeerId>)], boundary: u64) -> usize {
        views
            .iter()
            .flat_map(|(id, peers)| {
                let side = id.0 < boundary;
                peers.iter().filter(move |p| (p.0 < boundary) != side)
            })
            .count()
    }

    #[test]
    fn ring_bootstrap_converges_without_false_deaths() {
        let mut sim = Simulation::new(11);
        let overlay = SwimGossipOverlay::ring(&mut sim, 20, MembershipConfig::default(), 11);
        sim.run();
        let metrics = overlay.metrics();
        assert!(metrics.connected, "overlay must be connected");
        assert_eq!(metrics.nodes, 20);
        for (observer, events) in overlay.timelines() {
            assert!(
                !events.iter().any(|e| e.kind == MembershipEventKind::Dead),
                "{observer} declared a live peer dead on a calm network"
            );
        }
    }

    #[test]
    fn crashed_node_is_declared_dead_and_quarantined_everywhere() {
        let mut sim = Simulation::new(23);
        let mut overlay = SwimGossipOverlay::ring(&mut sim, 16, MembershipConfig::default(), 23);
        let victim = PeerId(5);
        overlay.schedule_kill(&mut sim, victim, SimTime::from_secs(10));
        sim.run();
        for (observer, events) in overlay.timelines() {
            if observer == victim {
                continue;
            }
            assert!(
                events
                    .iter()
                    .any(|e| e.kind == MembershipEventKind::Dead && e.peer == victim),
                "{observer} never declared the crashed peer dead"
            );
        }
        // Nobody still routes through the corpse, and nobody else died.
        for (id, peers) in overlay.views() {
            assert!(!peers.contains(&victim), "{id} still has the corpse active");
        }
        let metrics = overlay.metrics();
        assert!(metrics.connected, "survivors must re-knit around the crash");
        assert_eq!(metrics.nodes, 15);
    }

    #[test]
    fn unbridged_partition_merge_heals_natively() {
        let config = MembershipConfig {
            rounds: 70,
            ..MembershipConfig::default()
        };
        let mut sim = Simulation::new(67);
        let mut overlay = SwimGossipOverlay::ring(&mut sim, 14, config, 67);
        let minority: Vec<PeerId> = (0..4).map(PeerId).collect();
        overlay.schedule_partition(
            &mut sim,
            &minority,
            SimTime::from_secs(10),
            SimTime::from_secs(40),
        );
        // Mid-partition: the sides must have written each other off.
        sim.run_until(SimTime::from_secs(39));
        assert_eq!(
            cross_side_views(&overlay.views(), 4),
            0,
            "sides still hold cross references at the end of the split"
        );
        sim.run();
        let metrics = overlay.metrics();
        assert!(
            metrics.connected,
            "merge must heal with zero bridge peers: {metrics:?}"
        );
        assert!(
            cross_side_views(&overlay.views(), 4) > 4,
            "healing must spread beyond a single readmitted link"
        );
    }

    #[test]
    fn membership_runs_are_bit_identical_across_engines() {
        let run = |engine: &mut dyn Engine| {
            let mut overlay = SwimGossipOverlay::ring(
                engine,
                12,
                MembershipConfig {
                    rounds: 40,
                    ..MembershipConfig::default()
                },
                91,
            );
            overlay.schedule_kill(engine, PeerId(3), SimTime::from_secs(8));
            overlay.schedule_partition(
                engine,
                &[PeerId(0), PeerId(1), PeerId(2)],
                SimTime::from_secs(12),
                SimTime::from_secs(26),
            );
            engine.run();
            (overlay.render_timelines(), overlay.views())
        };
        let mut sequential = Simulation::new(91);
        let baseline = run(&mut sequential);
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedEngine::new(91, shards);
            assert_eq!(
                run(&mut sharded),
                baseline,
                "membership run diverged on {shards} shard(s)"
            );
        }
    }

    #[test]
    fn quarantined_peers_do_not_reenter_via_shuffle_hearsay() {
        let mut sim = Simulation::new(5);
        let mut overlay = SwimGossipOverlay::ring(&mut sim, 10, MembershipConfig::default(), 5);
        let victim = PeerId(7);
        overlay.schedule_kill(&mut sim, victim, SimTime::from_secs(5));
        sim.run();
        for (id, state) in &overlay.handles {
            if *id == victim {
                continue;
            }
            let state = state.lock().expect("membership state poisoned");
            if state.views.is_quarantined(victim) {
                assert!(
                    !state.views.passive().contains(&victim),
                    "{id} holds the corpse in passive despite quarantine"
                );
            }
        }
    }

    #[test]
    fn wire_formats_round_trip() {
        let rumors = vec![
            SwimRumor {
                peer: PeerId(9),
                state: MemberState::Suspect,
                incarnation: 4,
            },
            SwimRumor {
                peer: PeerId(2),
                state: MemberState::Alive,
                incarnation: 7,
            },
        ];
        let ping = Ping {
            origin: 3,
            seq: 17,
            believed: SwimRumor {
                peer: PeerId(6),
                state: MemberState::Dead,
                incarnation: 2,
            },
            rumors: rumors.clone(),
        };
        let decoded = decode_ping(&encode_ping(&ping), PeerId(6)).expect("valid ping");
        assert_eq!(decoded.origin, 3);
        assert_eq!(decoded.seq, 17);
        assert_eq!(decoded.believed, ping.believed);
        assert_eq!(decoded.rumors, rumors);

        let ack = Ack {
            origin: 1,
            seq: 8,
            target: 6,
            incarnation: 3,
            rumors: rumors.clone(),
        };
        let decoded = decode_ack(&encode_ack(&ack)).expect("valid ack");
        assert_eq!(decoded.target, 6);
        assert_eq!(decoded.incarnation, 3);

        let req = PingReq {
            origin: 1,
            seq: 8,
            target: 6,
            believed_state: MemberState::Suspect,
            believed_incarnation: 5,
            rumors: rumors.clone(),
        };
        let decoded = decode_ping_req(&encode_ping_req(&req)).expect("valid ping-req");
        assert_eq!(decoded.believed_state, MemberState::Suspect);
        assert_eq!(decoded.believed_incarnation, 5);

        let shuffle = Shuffle {
            peers: vec![PeerId(1), PeerId(4)],
            rumors,
        };
        let decoded = decode_shuffle(&encode_shuffle(&shuffle)).expect("valid shuffle");
        assert_eq!(decoded.peers, vec![PeerId(1), PeerId(4)]);
        assert!(decode_ping(&[1, 2, 3], PeerId(0)).is_none(), "truncated");
    }
}
