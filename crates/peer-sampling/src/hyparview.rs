//! HyParView-style partial views: a small active view plus a large
//! passive reservoir, with a quarantine list for healing.
//!
//! HyParView's insight is that one view cannot serve both routing and
//! repair. The **active view** is small (logarithmic) and carries all
//! traffic — probes, rumors, shuffles — so its members are continuously
//! failure-checked for free. The **passive view** is a larger reservoir
//! of known-but-unused peers, refreshed by shuffle exchanges; when an
//! active peer dies, a passive candidate is promoted in its place after
//! a probe-before-promote handshake (never promote an address you have
//! not just verified). The split keeps the routing fan-out constant
//! under churn while the reservoir absorbs the variance.
//!
//! This implementation adds a third set, the **quarantine** list, which
//! is the engine of bridge-free partition healing. A peer declared dead
//! is *not* forgotten: it moves to quarantine, from where it is
//! periodically re-probed (see [`crate::membership`]). While
//! quarantined, its descriptor is barred from re-entering either view
//! through shuffles — a re-merged partition floods the network with
//! stale descriptors of peers each side declared dead, and readmitting
//! them on hearsay would poison the views with addresses nobody has
//! verified since the split. Only a successful probe (an ack carrying a
//! refutation incarnation) readmits a quarantined peer, after which
//! promotion and shuffling re-knit the two sides.
//!
//! Like [`crate::swim`], this module is pure state: the driver owns all
//! timing and messaging. Sets are kept as insertion-ordered `Vec`s and
//! all random choices flow through the caller's [`Rng`], so view
//! contents are a deterministic function of the event order.

use crate::view::PeerId;
use cyclosa_util::rng::Rng;

/// Capacities and shuffle sample sizes of one node's partial views.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyParViewConfig {
    /// Maximum active-view size (the routing fan-out).
    pub active_capacity: usize,
    /// Maximum passive-view size (the healing reservoir).
    pub passive_capacity: usize,
    /// How many active-view peers a shuffle sample carries.
    pub shuffle_active: usize,
    /// How many passive-view peers a shuffle sample carries.
    pub shuffle_passive: usize,
}

impl Default for HyParViewConfig {
    fn default() -> Self {
        // Classic HyParView sizing: a passive reservoir a small multiple
        // of the active fan-out.
        Self {
            active_capacity: 5,
            passive_capacity: 12,
            shuffle_active: 3,
            shuffle_passive: 4,
        }
    }
}

/// One node's active/passive/quarantine membership sets.
#[derive(Debug, Clone)]
pub struct PartialViews {
    self_id: PeerId,
    config: HyParViewConfig,
    active: Vec<PeerId>,
    passive: Vec<PeerId>,
    quarantine: Vec<PeerId>,
}

impl PartialViews {
    /// Empty views for `self_id` under `config`.
    pub fn new(self_id: PeerId, config: HyParViewConfig) -> Self {
        Self {
            self_id,
            config,
            active: Vec::new(),
            passive: Vec::new(),
            quarantine: Vec::new(),
        }
    }

    /// The owning node's id.
    pub fn self_id(&self) -> PeerId {
        self.self_id
    }

    /// The configured capacities.
    pub fn config(&self) -> &HyParViewConfig {
        &self.config
    }

    /// The active view (routing peers), in insertion order.
    pub fn active(&self) -> &[PeerId] {
        &self.active
    }

    /// The passive view (healing reservoir), in insertion order.
    pub fn passive(&self) -> &[PeerId] {
        &self.passive
    }

    /// Peers declared dead and awaiting probe-verified readmission.
    pub fn quarantine(&self) -> &[PeerId] {
        &self.quarantine
    }

    /// Whether the active view has room for another peer.
    pub fn active_has_room(&self) -> bool {
        self.active.len() < self.config.active_capacity
    }

    /// Whether `peer` is quarantined.
    pub fn is_quarantined(&self, peer: PeerId) -> bool {
        self.quarantine.contains(&peer)
    }

    /// Adds `peer` to the active view. When the view is full, a random
    /// active peer is demoted to passive to make room; the demoted peer
    /// is returned. No-op (returning `None`) when `peer` is this node,
    /// already active, or quarantined.
    pub fn add_active(&mut self, peer: PeerId, rng: &mut impl Rng) -> Option<PeerId> {
        if peer == self.self_id || self.active.contains(&peer) || self.is_quarantined(peer) {
            return None;
        }
        self.passive.retain(|p| *p != peer);
        let mut demoted = None;
        if self.active.len() >= self.config.active_capacity {
            let victim = self.active.swap_remove(rng.gen_index(self.active.len()));
            self.add_passive(victim, rng);
            demoted = Some(victim);
        }
        self.active.push(peer);
        demoted
    }

    /// Adds `peer` to the passive reservoir, evicting a random passive
    /// peer when full. No-op when `peer` is this node, already known, or
    /// quarantined — quarantined descriptors must be probe-verified
    /// (readmitted) before they may re-enter any view.
    pub fn add_passive(&mut self, peer: PeerId, rng: &mut impl Rng) {
        if peer == self.self_id
            || self.active.contains(&peer)
            || self.passive.contains(&peer)
            || self.is_quarantined(peer)
        {
            return;
        }
        if self.passive.len() >= self.config.passive_capacity {
            self.passive.swap_remove(rng.gen_index(self.passive.len()));
        }
        self.passive.push(peer);
    }

    /// Records that `peer` was declared dead: it leaves both views and
    /// enters quarantine. Returns `true` when the peer was in the
    /// *active* view (the caller should then promote a replacement).
    pub fn note_dead(&mut self, peer: PeerId) -> bool {
        let was_active = self.active.contains(&peer);
        self.active.retain(|p| *p != peer);
        self.passive.retain(|p| *p != peer);
        if !self.quarantine.contains(&peer) {
            self.quarantine.push(peer);
        }
        was_active
    }

    /// Readmits a probe-verified quarantined peer into the passive
    /// reservoir. Returns `true` when the peer was indeed quarantined.
    pub fn readmit(&mut self, peer: PeerId, rng: &mut impl Rng) -> bool {
        let before = self.quarantine.len();
        self.quarantine.retain(|p| *p != peer);
        if self.quarantine.len() == before {
            return false;
        }
        self.add_passive(peer, rng);
        true
    }

    /// A random passive peer to consider for promotion (the caller
    /// probes it before calling [`Self::promote`]).
    pub fn promote_candidate(&mut self, rng: &mut impl Rng) -> Option<PeerId> {
        rng.choose(&self.passive).copied()
    }

    /// Moves a probe-verified `peer` from passive to active (demoting a
    /// random active peer if full). Returns the demoted peer, if any.
    pub fn promote(&mut self, peer: PeerId, rng: &mut impl Rng) -> Option<PeerId> {
        self.passive.retain(|p| *p != peer);
        self.add_active(peer, rng)
    }

    /// A shuffle sample: up to `shuffle_active` active peers and
    /// `shuffle_passive` passive peers, randomly chosen, deduplicated.
    pub fn shuffle_sample(&self, rng: &mut impl Rng) -> Vec<PeerId> {
        let mut sample = Vec::new();
        for index in rng.sample_indices(self.active.len(), self.config.shuffle_active) {
            sample.push(self.active[index]);
        }
        for index in rng.sample_indices(self.passive.len(), self.config.shuffle_passive) {
            let peer = self.passive[index];
            if !sample.contains(&peer) {
                sample.push(peer);
            }
        }
        sample
    }

    /// Integrates a received shuffle sample into the passive reservoir.
    /// Quarantined peers are silently skipped (hearsay does not clear
    /// quarantine). Returns how many peers were newly learned.
    pub fn integrate_shuffle(&mut self, peers: &[PeerId], rng: &mut impl Rng) -> usize {
        let mut learned = 0;
        for peer in peers {
            let known = *peer == self.self_id
                || self.active.contains(peer)
                || self.passive.contains(peer)
                || self.is_quarantined(*peer);
            self.add_passive(*peer, rng);
            if !known && self.passive.contains(peer) {
                learned += 1;
            }
        }
        learned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    fn views() -> (PartialViews, Xoshiro256StarStar) {
        (
            PartialViews::new(
                PeerId(0),
                HyParViewConfig {
                    active_capacity: 3,
                    passive_capacity: 5,
                    shuffle_active: 2,
                    shuffle_passive: 3,
                },
            ),
            Xoshiro256StarStar::seed_from_u64(42),
        )
    }

    #[test]
    fn active_overflow_demotes_to_passive() {
        let (mut v, mut rng) = views();
        for peer in 1..=3 {
            assert_eq!(v.add_active(PeerId(peer), &mut rng), None);
        }
        let demoted = v.add_active(PeerId(4), &mut rng).expect("view was full");
        assert_eq!(v.active().len(), 3);
        assert!(
            v.passive().contains(&demoted),
            "demoted peer lands in passive"
        );
        assert!(v.active().contains(&PeerId(4)));
    }

    #[test]
    fn self_and_duplicates_are_rejected() {
        let (mut v, mut rng) = views();
        assert_eq!(v.add_active(PeerId(0), &mut rng), None);
        assert!(v.active().is_empty());
        v.add_active(PeerId(1), &mut rng);
        v.add_active(PeerId(1), &mut rng);
        assert_eq!(v.active().len(), 1);
        v.add_passive(PeerId(0), &mut rng);
        v.add_passive(PeerId(1), &mut rng);
        assert!(v.passive().is_empty(), "active peers stay out of passive");
    }

    #[test]
    fn death_quarantines_and_blocks_hearsay_readmission() {
        let (mut v, mut rng) = views();
        v.add_active(PeerId(1), &mut rng);
        assert!(v.note_dead(PeerId(1)), "was in the active view");
        assert!(v.is_quarantined(PeerId(1)));
        assert!(v.active().is_empty());
        // Stale descriptors arriving by shuffle must not resurrect it.
        assert_eq!(v.integrate_shuffle(&[PeerId(1), PeerId(2)], &mut rng), 1);
        assert!(!v.passive().contains(&PeerId(1)));
        assert!(v.passive().contains(&PeerId(2)));
        v.add_active(PeerId(1), &mut rng);
        assert!(!v.active().contains(&PeerId(1)), "add_active also refuses");
        // A probe-verified readmission clears the bar.
        assert!(v.readmit(PeerId(1), &mut rng));
        assert!(v.passive().contains(&PeerId(1)));
        assert!(!v.is_quarantined(PeerId(1)));
        assert!(!v.readmit(PeerId(1), &mut rng), "second readmit is a no-op");
    }

    #[test]
    fn promotion_moves_passive_to_active() {
        let (mut v, mut rng) = views();
        v.add_passive(PeerId(7), &mut rng);
        let candidate = v.promote_candidate(&mut rng).expect("reservoir non-empty");
        assert_eq!(candidate, PeerId(7));
        v.promote(candidate, &mut rng);
        assert!(v.active().contains(&PeerId(7)));
        assert!(!v.passive().contains(&PeerId(7)));
    }

    #[test]
    fn passive_reservoir_is_bounded() {
        let (mut v, mut rng) = views();
        for peer in 1..=20 {
            v.add_passive(PeerId(peer), &mut rng);
        }
        assert_eq!(v.passive().len(), 5);
    }

    #[test]
    fn shuffle_sample_draws_from_both_views() {
        let (mut v, mut rng) = views();
        for peer in 1..=3 {
            v.add_active(PeerId(peer), &mut rng);
        }
        for peer in 10..=14 {
            v.add_passive(PeerId(peer), &mut rng);
        }
        let sample = v.shuffle_sample(&mut rng);
        assert!(sample.len() >= 2 && sample.len() <= 5);
        assert!(sample.iter().any(|p| p.0 < 10), "carries an active peer");
        assert!(sample.iter().any(|p| p.0 >= 10), "carries a passive peer");
    }
}
