//! Brahms: byzantine-resilient random peer sampling.
//!
//! Bortnikov et al. (PODC 2009): the shuffle-based sampler of
//! [`crate::node`] is trivially poisoned by a Sybil attacker (see
//! [`crate::sybil`]) because it merges whatever it receives. Brahms
//! counters with three mechanisms, all reproduced here:
//!
//! 1. **Push/pull separation with quotas** — a node's view is rebuilt
//!    each round from `α·l₁` pushed ids, `β·l₁` pulled ids and `γ·l₁`
//!    sampler outputs; a round whose push inbox exceeds the quota is
//!    *voided* (the old view is kept), so flooding buys the attacker
//!    nothing but voided rounds.
//! 2. **Min-wise independent samplers** — [`MinWiseSampler`] keeps the
//!    id minimizing a salted hash over *everything ever observed*.
//!    Flooding repeats ids, and repeats cannot lower a min, so sampler
//!    output converges to a uniform sample over distinct ids regardless
//!    of how loudly the attacker gossips. The `γ` portion anchors the
//!    view to that history.
//! 3. **Validation** — a sampler whose output stops responding is
//!    reset ([`MinWiseSampler::invalidate`]) with a fresh salt.
//!
//! [`BrahmsSimulator`] replays the *same* [`SybilAttackConfig`] scenario
//! as the naive-sampler experiment for directly comparable poisoning
//! curves, and [`EngineBrahmsOverlay`] runs the protocol over simulated
//! network messages on any [`Engine`] — bit-identical across 1/2/4/8
//! shards like every other overlay in this crate.

use crate::sybil::{is_sybil, sybil_view_fraction, SybilAttackConfig};
use crate::view::PeerId;
use cyclosa_net::engine::Engine;
use cyclosa_net::sim::{Context, Envelope, NodeBehavior};
use cyclosa_net::time::SimTime;
use cyclosa_net::NodeId;
use cyclosa_util::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One min-wise independent sampler: remembers the peer minimizing a
/// salted hash over every id ever observed. Repeated observations are
/// idempotent — the flood resistance the naive shuffle lacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinWiseSampler {
    salt: u64,
    best: Option<(u64, PeerId)>,
}

impl MinWiseSampler {
    /// A fresh sampler with the given hash salt.
    pub fn new(salt: u64) -> Self {
        Self { salt, best: None }
    }

    fn hash(&self, peer: PeerId) -> u64 {
        SplitMix64::new(self.salt ^ peer.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
    }

    /// Feeds one observed id through the sampler.
    pub fn observe(&mut self, peer: PeerId) {
        let h = self.hash(peer);
        if self.best.is_none_or(|(best, _)| h < best) {
            self.best = Some((h, peer));
        }
    }

    /// The current sample, if anything was ever observed.
    pub fn sample(&self) -> Option<PeerId> {
        self.best.map(|(_, peer)| peer)
    }

    /// Validation failed (the sampled peer is unresponsive): forget it
    /// and re-salt, so the sampler re-converges over live ids.
    pub fn invalidate(&mut self, new_salt: u64) {
        self.salt = new_salt;
        self.best = None;
    }
}

/// Brahms protocol parameters. `alpha + beta + gamma` is the view size
/// `l₁`; `samplers` is `l₂`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrahmsConfig {
    /// View slots rebuilt from pushed ids (`α·l₁`).
    pub alpha: usize,
    /// View slots rebuilt from pulled ids (`β·l₁`).
    pub beta: usize,
    /// View slots rebuilt from sampler outputs (`γ·l₁`).
    pub gamma: usize,
    /// Number of min-wise samplers (`l₂`).
    pub samplers: usize,
    /// Maximum pushes accepted per round; a round receiving more is
    /// voided (the old view is kept). Sized against the expected honest
    /// push rate (`≈ α` per round under uniform views).
    pub push_quota: usize,
}

impl Default for BrahmsConfig {
    fn default() -> Self {
        Self {
            alpha: 6,
            beta: 6,
            gamma: 4,
            samplers: 32,
            push_quota: 12,
        }
    }
}

impl BrahmsConfig {
    /// The view size `l₁ = α + β + γ`.
    pub fn view_size(&self) -> usize {
        self.alpha + self.beta + self.gamma
    }
}

/// Moves up to `count` random distinct picks from `pool` into `next`,
/// skipping `me` and entries already present.
fn take_distinct(
    pool: &[PeerId],
    count: usize,
    me: PeerId,
    next: &mut Vec<PeerId>,
    rng: &mut impl Rng,
) {
    let mut candidates: Vec<PeerId> = pool.iter().copied().filter(|p| *p != me).collect();
    for _ in 0..count {
        if candidates.is_empty() {
            break;
        }
        let pick = candidates.swap_remove(rng.gen_index(candidates.len()));
        if !next.contains(&pick) {
            next.push(pick);
        }
    }
}

/// One Brahms participant: the bounded view plus the sampler bank.
#[derive(Debug, Clone)]
pub struct BrahmsNode {
    id: PeerId,
    config: BrahmsConfig,
    view: Vec<PeerId>,
    samplers: Vec<MinWiseSampler>,
    voided_rounds: u64,
    rounds: u64,
}

impl BrahmsNode {
    /// Creates a node with an empty view; sampler salts come from `rng`
    /// (each node carries its own dedicated stream, so construction is
    /// deterministic per node regardless of population iteration order).
    pub fn new(id: PeerId, config: BrahmsConfig, rng: &mut impl Rng) -> Self {
        let samplers = (0..config.samplers)
            .map(|_| MinWiseSampler::new(rng.next_u64()))
            .collect();
        Self {
            id,
            config,
            view: Vec::new(),
            samplers,
            voided_rounds: 0,
            rounds: 0,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> &[PeerId] {
        &self.view
    }

    /// Rounds whose view update was voided by the push quota.
    pub fn voided_rounds(&self) -> u64 {
        self.voided_rounds
    }

    /// Rounds processed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Seeds the view (and the samplers) with bootstrap peers.
    pub fn bootstrap(&mut self, peers: impl IntoIterator<Item = PeerId>) {
        for peer in peers {
            if peer != self.id && !self.view.contains(&peer) {
                self.view.push(peer);
                self.observe(peer);
            }
        }
        self.view.truncate(self.config.view_size());
    }

    /// Feeds one observed id through every sampler.
    pub fn observe(&mut self, peer: PeerId) {
        if peer == self.id {
            return;
        }
        for sampler in &mut self.samplers {
            sampler.observe(peer);
        }
    }

    /// Draws `count` (not necessarily distinct) gossip targets from the
    /// view.
    pub fn targets(&self, count: usize, rng: &mut impl Rng) -> Vec<PeerId> {
        if self.view.is_empty() {
            return Vec::new();
        }
        (0..count)
            .map(|_| self.view[rng.gen_index(self.view.len())])
            .collect()
    }

    /// The current sampler outputs (duplicates possible — each sampler
    /// is an independent uniform draw over observed ids).
    pub fn sampler_peers(&self) -> Vec<PeerId> {
        self.samplers.iter().filter_map(|s| s.sample()).collect()
    }

    /// Applies one round's inboxes. Every received id feeds the samplers
    /// (min-wise sampling is flood-proof, so this is always safe). The
    /// *view* is rebuilt from quota-bounded slices only when the round
    /// looks healthy: pushes within quota and both channels non-empty;
    /// otherwise the round is voided and the old view kept. Returns
    /// whether the view was updated.
    pub fn round_update(
        &mut self,
        pushes: &[PeerId],
        pulls: &[PeerId],
        rng: &mut impl Rng,
    ) -> bool {
        self.rounds += 1;
        for &peer in pushes.iter().chain(pulls) {
            self.observe(peer);
        }
        if pushes.is_empty() || pulls.is_empty() || pushes.len() > self.config.push_quota {
            self.voided_rounds += pushes.len() as u64 / (self.config.push_quota as u64 + 1);
            return false;
        }
        let mut next: Vec<PeerId> = Vec::with_capacity(self.config.view_size());
        take_distinct(pushes, self.config.alpha, self.id, &mut next, rng);
        take_distinct(pulls, self.config.beta, self.id, &mut next, rng);
        let history = self.sampler_peers();
        take_distinct(&history, self.config.gamma, self.id, &mut next, rng);
        // Pad from the old view so convergence never shrinks connectivity.
        for &peer in &self.view {
            if next.len() >= self.config.view_size() {
                break;
            }
            if !next.contains(&peer) {
                next.push(peer);
            }
        }
        self.view = next;
        true
    }
}

/// A synchronous Brahms population under the same Sybil attack as
/// [`crate::sybil::SybilSimulator`]: sybils flood pushes and answer every
/// pull with an all-sybil view. The defense metrics come out of
/// [`BrahmsSimulator::attacker_fraction`].
#[derive(Debug)]
pub struct BrahmsSimulator {
    nodes: BTreeMap<PeerId, BrahmsNode>,
    sybils: Vec<PeerId>,
    attack: SybilAttackConfig,
    config: BrahmsConfig,
    rng: Xoshiro256StarStar,
}

impl BrahmsSimulator {
    /// Creates the honest population bootstrapped in a ring (each node
    /// knows its successors plus one seeded sybil, mirroring the naive
    /// experiment's toehold).
    pub fn ring(attack: SybilAttackConfig, config: BrahmsConfig) -> Self {
        assert!(
            attack.honest >= 2,
            "a gossip overlay needs at least two nodes"
        );
        let sybils = attack.sybils();
        let mut rng = Xoshiro256StarStar::seed_from_u64(attack.seed ^ 0xB4A5);
        let mut nodes = BTreeMap::new();
        for i in 0..attack.honest {
            let id = PeerId(i as u64);
            let mut node_rng = rng.fork(1);
            let mut node = BrahmsNode::new(id, config, &mut node_rng);
            let fanout = config.view_size().min(attack.honest - 1).max(1);
            node.bootstrap((1..=fanout).map(|j| PeerId(((i + j) % attack.honest) as u64)));
            if !sybils.is_empty() {
                node.bootstrap([sybils[rng.gen_index(sybils.len())]]);
            }
            nodes.insert(id, node);
        }
        Self {
            nodes,
            sybils,
            attack,
            config,
            rng,
        }
    }

    fn poisoned_view(&mut self) -> Vec<PeerId> {
        let count = self.config.view_size().min(self.sybils.len());
        let picks = self.rng.sample_indices(self.sybils.len(), count);
        picks.into_iter().map(|i| self.sybils[i]).collect()
    }

    /// Runs one synchronous round: honest pushes/pulls plus the
    /// attacker's push flood, then every node's quota-checked update.
    pub fn run_round(&mut self) {
        let honest: Vec<PeerId> = self.nodes.keys().copied().collect();
        let mut push_inbox: BTreeMap<PeerId, Vec<PeerId>> = BTreeMap::new();
        let mut pull_inbox: BTreeMap<PeerId, Vec<PeerId>> = BTreeMap::new();
        // Honest traffic.
        for &id in &honest {
            let node = &self.nodes[&id];
            for target in node.targets(self.config.alpha, &mut self.rng) {
                if !is_sybil(target) {
                    push_inbox.entry(target).or_default().push(id);
                }
                // Pushes to sybils only tell the attacker the pusher
                // exists; nothing to model.
            }
            for target in node.targets(self.config.beta, &mut self.rng) {
                let reply = if is_sybil(target) {
                    self.poisoned_view()
                } else {
                    self.nodes[&target].view().to_vec()
                };
                pull_inbox.entry(id).or_default().extend(reply);
            }
        }
        // Attacker flood: every sybil pushes its id to random honest
        // nodes. Against the naive sampler this is what captures views;
        // here it mostly voids rounds.
        for s in 0..self.sybils.len() {
            for _ in 0..self.attack.pushes_per_sybil {
                let target = PeerId(self.rng.gen_index(self.attack.honest) as u64);
                push_inbox.entry(target).or_default().push(self.sybils[s]);
            }
        }
        // Quota-checked updates.
        for &id in &honest {
            let pushes = push_inbox.remove(&id).unwrap_or_default();
            let pulls = pull_inbox.remove(&id).unwrap_or_default();
            if let Some(node) = self.nodes.get_mut(&id) {
                node.round_update(&pushes, &pulls, &mut self.rng);
            }
        }
    }

    /// Runs `rounds` synchronous rounds.
    pub fn run_rounds(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// The `(node, view)` pairs of the honest population.
    pub fn views(&self) -> Vec<(PeerId, Vec<PeerId>)> {
        self.nodes
            .iter()
            .map(|(id, node)| (*id, node.view().to_vec()))
            .collect()
    }

    /// The mean fraction of sybil entries across honest views.
    pub fn attacker_fraction(&self) -> f64 {
        sybil_view_fraction(&self.views())
    }

    /// Total voided rounds across the population (the quota firing).
    pub fn voided_rounds(&self) -> u64 {
        self.nodes.values().map(|n| n.voided_rounds()).sum()
    }
}

// ---------------------------------------------------------------------
// The engine-driven overlay.
// ---------------------------------------------------------------------

const TAG_PUSH: u32 = 0xB8A1;
const TAG_PULL_REQ: u32 = 0xB8A2;
const TAG_PULL_REP: u32 = 0xB8A3;
const TOKEN_ROUND: u64 = 1;

fn node_rng(seed: u64, id: u64) -> Xoshiro256StarStar {
    let mut sm = SplitMix64::new(seed ^ 0xB4A1_1753);
    Xoshiro256StarStar::seed_from_u64(sm.next_u64() ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn encode_ids(ids: &[PeerId]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(ids.len() * 8);
    for id in ids {
        bytes.extend_from_slice(&id.0.to_le_bytes());
    }
    bytes
}

fn decode_ids(bytes: &[u8]) -> Vec<PeerId> {
    bytes
        .chunks_exact(8)
        .map(|c| PeerId(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
        .collect()
}

struct HonestBrahmsBehavior {
    node: BrahmsNode,
    config: BrahmsConfig,
    rng: Xoshiro256StarStar,
    rounds_left: usize,
    round_period: SimTime,
    pushes: Vec<PeerId>,
    pulls: Vec<PeerId>,
    shared: Arc<Mutex<Vec<PeerId>>>,
}

impl HonestBrahmsBehavior {
    fn gossip(&mut self, ctx: &mut Context<'_>) {
        for target in self.node.targets(self.config.alpha, &mut self.rng) {
            ctx.send(NodeId(target.0), TAG_PUSH, Vec::new());
        }
        for target in self.node.targets(self.config.beta, &mut self.rng) {
            ctx.send(NodeId(target.0), TAG_PULL_REQ, Vec::new());
        }
    }
}

impl NodeBehavior for HonestBrahmsBehavior {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        match envelope.tag {
            TAG_PUSH => self.pushes.push(PeerId(envelope.src.0)),
            TAG_PULL_REQ => {
                let view = encode_ids(self.node.view());
                ctx.send(envelope.src, TAG_PULL_REP, view);
            }
            TAG_PULL_REP => self.pulls.extend(decode_ids(&envelope.payload)),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != TOKEN_ROUND {
            return;
        }
        let pushes = std::mem::take(&mut self.pushes);
        let pulls = std::mem::take(&mut self.pulls);
        self.node.round_update(&pushes, &pulls, &mut self.rng);
        *self.shared.lock().expect("view poisoned") = self.node.view().to_vec();
        self.gossip(ctx);
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.set_timer(self.round_period, TOKEN_ROUND);
        }
    }
}

struct SybilBrahmsBehavior {
    sybils: Vec<PeerId>,
    honest: usize,
    view_size: usize,
    pushes_per_round: usize,
    rng: Xoshiro256StarStar,
    rounds_left: usize,
    round_period: SimTime,
}

impl SybilBrahmsBehavior {
    fn poisoned_view(&mut self) -> Vec<PeerId> {
        let count = self.view_size.min(self.sybils.len());
        let picks = self.rng.sample_indices(self.sybils.len(), count);
        picks.into_iter().map(|i| self.sybils[i]).collect()
    }
}

impl NodeBehavior for SybilBrahmsBehavior {
    fn on_message(&mut self, ctx: &mut Context<'_>, envelope: Envelope) {
        if envelope.tag == TAG_PULL_REQ {
            let poisoned = self.poisoned_view();
            ctx.send(envelope.src, TAG_PULL_REP, encode_ids(&poisoned));
        }
        // Pushes to a sybil are silently absorbed.
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != TOKEN_ROUND {
            return;
        }
        for _ in 0..self.pushes_per_round {
            let target = NodeId(self.rng.gen_index(self.honest) as u64);
            ctx.send(target, TAG_PUSH, Vec::new());
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            ctx.set_timer(self.round_period, TOKEN_ROUND);
        }
    }
}

/// The Brahms protocol deployed on a deterministic [`Engine`] — honest
/// nodes *and* the Sybil attacker as real message-passing participants.
/// Each node draws from its own seed-derived stream, so a run is
/// bit-identical on the sequential simulator and the sharded engine for
/// any shard count.
pub struct EngineBrahmsOverlay {
    handles: Vec<(PeerId, Arc<Mutex<Vec<PeerId>>>)>,
}

impl EngineBrahmsOverlay {
    /// Registers the honest ring plus the attacker's sybil identities on
    /// `engine`, each running `rounds` protocol rounds of `round_period`.
    /// Call `engine.run()` afterwards. A zero-budget attack
    /// (`fraction = 0`) deploys a plain Brahms overlay.
    pub fn ring<E: Engine + ?Sized>(
        engine: &mut E,
        attack: SybilAttackConfig,
        config: BrahmsConfig,
        rounds: usize,
        round_period: SimTime,
    ) -> Self {
        assert!(
            attack.honest >= 2,
            "a gossip overlay needs at least two nodes"
        );
        let sybils = attack.sybils();
        let mut seeder = Xoshiro256StarStar::seed_from_u64(attack.seed ^ 0xB4A5);
        let mut handles = Vec::with_capacity(attack.honest);
        for i in 0..attack.honest {
            let id = PeerId(i as u64);
            let mut rng = node_rng(attack.seed, id.0);
            let mut node = BrahmsNode::new(id, config, &mut rng);
            let fanout = config.view_size().min(attack.honest - 1).max(1);
            node.bootstrap((1..=fanout).map(|j| PeerId(((i + j) % attack.honest) as u64)));
            if !sybils.is_empty() {
                // The toehold draw comes from the deployment stream, like
                // the synchronous simulators.
                node.bootstrap([sybils[seeder.gen_index(sybils.len())]]);
            }
            let shared = Arc::new(Mutex::new(node.view().to_vec()));
            handles.push((id, shared.clone()));
            engine.add_node(
                NodeId(id.0),
                Box::new(HonestBrahmsBehavior {
                    node,
                    config,
                    rng,
                    rounds_left: rounds,
                    round_period,
                    pushes: Vec::new(),
                    pulls: Vec::new(),
                    shared,
                }),
            );
            engine.schedule_timer(round_period, NodeId(id.0), TOKEN_ROUND);
        }
        for sybil in &sybils {
            engine.add_node(
                NodeId(sybil.0),
                Box::new(SybilBrahmsBehavior {
                    sybils: sybils.clone(),
                    honest: attack.honest,
                    view_size: config.view_size(),
                    pushes_per_round: attack.pushes_per_sybil,
                    rng: node_rng(attack.seed, sybil.0),
                    rounds_left: rounds,
                    round_period,
                }),
            );
            engine.schedule_timer(round_period, NodeId(sybil.0), TOKEN_ROUND);
        }
        Self { handles }
    }

    /// The `(node, view)` pairs of the honest population, sorted by id.
    pub fn views(&self) -> Vec<(PeerId, Vec<PeerId>)> {
        self.handles
            .iter()
            .map(|(id, shared)| (*id, shared.lock().expect("view poisoned").clone()))
            .collect()
    }

    /// The mean fraction of sybil entries across honest views.
    pub fn attacker_fraction(&self) -> f64 {
        sybil_view_fraction(&self.views())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PeerSamplingConfig;
    use crate::sybil::SybilSimulator;
    use cyclosa_net::sim::Simulation;
    use cyclosa_runtime::ShardedEngine;

    #[test]
    fn min_wise_sampler_is_order_independent_and_flood_proof() {
        let forward = {
            let mut s = MinWiseSampler::new(7);
            (0..100).for_each(|i| s.observe(PeerId(i)));
            s.sample()
        };
        let backward = {
            let mut s = MinWiseSampler::new(7);
            (0..100).rev().for_each(|i| s.observe(PeerId(i)));
            s.sample()
        };
        assert_eq!(forward, backward, "min-hash is order independent");
        let flooded = {
            let mut s = MinWiseSampler::new(7);
            (0..100).for_each(|i| s.observe(PeerId(i)));
            // The attacker repeats its id a million-fold; repeats cannot
            // lower a min.
            (0..1000).for_each(|_| s.observe(PeerId(99)));
            s.sample()
        };
        assert_eq!(forward, flooded, "flooding must not move the sample");
        let mut s = MinWiseSampler::new(7);
        assert_eq!(s.sample(), None);
        s.observe(PeerId(3));
        s.invalidate(8);
        assert_eq!(s.sample(), None, "invalidation forgets the dead sample");
    }

    #[test]
    fn sampler_bank_spreads_over_the_population() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut node = BrahmsNode::new(PeerId(1000), BrahmsConfig::default(), &mut rng);
        (0..200).for_each(|i| node.observe(PeerId(i)));
        let samples = node.sampler_peers();
        assert_eq!(samples.len(), 32);
        let distinct: std::collections::BTreeSet<_> = samples.iter().collect();
        assert!(
            distinct.len() >= 20,
            "32 independent samplers over 200 ids should rarely collide, got {}",
            distinct.len()
        );
    }

    #[test]
    fn push_floods_void_the_round_but_feed_the_samplers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let config = BrahmsConfig::default();
        let mut node = BrahmsNode::new(PeerId(0), config, &mut rng);
        node.bootstrap((1..=8).map(PeerId));
        let before = node.view().to_vec();
        let flood: Vec<PeerId> = (0..50).map(|_| PeerId(SYBIL_BASE_TEST)).collect();
        let pulls: Vec<PeerId> = (1..=8).map(PeerId).collect();
        let updated = node.round_update(&flood, &pulls, &mut rng);
        assert!(!updated, "a flooded round must be voided");
        assert_eq!(node.view(), before.as_slice(), "old view kept");
        assert!(node.voided_rounds() > 0);
        // A healthy round then succeeds.
        let pushes: Vec<PeerId> = (10..=13).map(PeerId).collect();
        assert!(node.round_update(&pushes, &pulls, &mut rng));
    }
    const SYBIL_BASE_TEST: u64 = 1 << 32;

    #[test]
    fn brahms_bounds_the_same_attack_that_captures_the_naive_sampler() {
        let attack = SybilAttackConfig::default(); // f = 0.2, flood 2/sybil
        let mut naive = SybilSimulator::ring(attack, PeerSamplingConfig::default());
        naive.run_rounds(50);
        let mut brahms = BrahmsSimulator::ring(attack, BrahmsConfig::default());
        brahms.run_rounds(50);
        let (naive_frac, brahms_frac) = (naive.attacker_fraction(), brahms.attacker_fraction());
        assert!(
            naive_frac > 0.5,
            "the attack must capture the naive sampler ({naive_frac})"
        );
        assert!(
            brahms_frac < 0.35,
            "brahms must bound poisoning near the identity share ({brahms_frac})"
        );
        assert!(brahms.voided_rounds() > 0, "the quota must have fired");
        let metrics = crate::simulator::overlay_metrics_from_views(
            &brahms
                .views()
                .into_iter()
                .map(|(id, view)| {
                    (
                        id,
                        view.into_iter()
                            .filter(|p| !is_sybil(*p))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        assert!(metrics.connected, "the honest core must stay connected");
    }

    #[test]
    fn engine_overlay_matches_across_shard_counts_under_attack() {
        let attack = SybilAttackConfig {
            honest: 60,
            fraction: 0.2,
            pushes_per_sybil: 2,
            seed: 42,
        };
        let config = BrahmsConfig::default();
        let deploy = |engine: &mut dyn Engine| {
            let overlay =
                EngineBrahmsOverlay::ring(engine, attack, config, 30, SimTime::from_secs(1));
            engine.run();
            overlay.views()
        };
        let mut sequential = Simulation::new(attack.seed);
        let baseline = deploy(&mut sequential);
        assert!(
            sybil_view_fraction(&baseline) < 0.35,
            "engine overlay must bound poisoning too, got {}",
            sybil_view_fraction(&baseline)
        );
        for shards in [1, 2, 4, 8] {
            let mut engine = ShardedEngine::new(attack.seed, shards);
            assert_eq!(
                deploy(&mut engine),
                baseline,
                "views diverged with {shards} shards"
            );
        }
    }

    #[test]
    fn unattacked_engine_overlay_converges_connected() {
        let attack = SybilAttackConfig {
            honest: 50,
            fraction: 0.0,
            pushes_per_sybil: 0,
            seed: 3,
        };
        let mut engine = Simulation::new(3);
        let overlay = EngineBrahmsOverlay::ring(
            &mut engine,
            attack,
            BrahmsConfig::default(),
            30,
            SimTime::from_secs(1),
        );
        engine.run();
        assert_eq!(overlay.attacker_fraction(), 0.0);
        let metrics = crate::simulator::overlay_metrics_from_views(&overlay.views());
        assert!(metrics.connected);
        assert!(metrics.mean_in_degree > 8.0, "views must fill out");
    }
}
