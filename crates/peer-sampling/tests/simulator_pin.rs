//! Seeded behavioral pin of [`GossipSimulator`].
//!
//! The simulator's node table was converted from `HashMap` to `BTreeMap`
//! (cyclosa-lint's nondeterminism rule bans iterated hash state in
//! determinism-critical crates). The digests below were captured from the
//! *pre-conversion* `HashMap` implementation: equality pins that the
//! conversion changed the container, not the timeline — every gossip
//! exchange, partner draw and resulting view is unchanged for these seeds.

use cyclosa_peer_sampling::{GossipSimulator, PeerId, PeerSamplingConfig};

fn fnv(digest: &mut u64, value: u64) {
    *digest ^= value;
    *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
}

fn run_digest(count: usize, rounds: usize, seed: u64) -> u64 {
    let mut sim = GossipSimulator::ring(count, PeerSamplingConfig::default(), seed);
    sim.run_rounds(rounds / 2);
    for i in 0..5 {
        sim.kill(PeerId(i));
    }
    sim.run_rounds(rounds - rounds / 2);
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for id in sim.alive_peers() {
        fnv(&mut digest, id.0);
        for peer in sim.node(id).unwrap().view().peers() {
            fnv(&mut digest, peer.0);
        }
    }
    let metrics = sim.metrics();
    fnv(&mut digest, metrics.nodes as u64);
    fnv(&mut digest, metrics.max_in_degree as u64);
    fnv(&mut digest, metrics.mean_in_degree.to_bits());
    fnv(&mut digest, metrics.dead_references.to_bits());
    fnv(&mut digest, metrics.connected as u64);
    digest
}

#[test]
fn timelines_match_the_hashmap_era_digests() {
    let d1 = run_digest(60, 25, 42);
    let d2 = run_digest(40, 40, 7);
    println!("digest(60,25,42) = {d1:#018X}");
    println!("digest(40,40,7) = {d2:#018X}");
    assert_eq!(d1, PIN_60_25_42);
    assert_eq!(d2, PIN_40_40_7);
}

/// Captured from the pre-conversion HashMap-backed simulator.
const PIN_60_25_42: u64 = 0x51D4_89C1_D23C_8724;
/// Captured from the pre-conversion HashMap-backed simulator.
const PIN_40_40_7: u64 = 0x8D68_F5B7_C086_D9D6;

/// Independently of the pinned digests: two runs with the same seed are
/// identical, and different seeds diverge (the digest is discriminating).
#[test]
fn digest_is_seed_deterministic_and_discriminating() {
    assert_eq!(run_digest(60, 25, 42), run_digest(60, 25, 42));
    assert_ne!(run_digest(60, 25, 42), run_digest(60, 25, 43));
}
