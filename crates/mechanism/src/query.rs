//! Core query and user identifiers.

/// Identifier of a (simulated) user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user-{}", self.0)
    }
}

/// Identifier of a query within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query-{}", self.0)
    }
}

/// A Web search query issued by a user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Unique identifier within the workload.
    pub id: QueryId,
    /// The user who typed the query.
    pub user: UserId,
    /// The raw query text.
    pub text: String,
}

impl Query {
    /// Creates a query.
    pub fn new(id: QueryId, user: UserId, text: impl Into<String>) -> Self {
        Self {
            id,
            user,
            text: text.into(),
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {:?}", self.id, self.user, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let q = Query::new(QueryId(7), UserId(2), "icdcs 2018 program");
        assert_eq!(q.text, "icdcs 2018 program");
        assert_eq!(q.user, UserId(2));
        let shown = format!("{q}");
        assert!(shown.contains("query-7"));
        assert!(shown.contains("user-2"));
        assert!(shown.contains("icdcs"));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(UserId(1) < UserId(2));
        assert!(QueryId(10) > QueryId(9));
    }
}
