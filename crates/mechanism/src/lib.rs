//! Shared vocabulary between private-Web-search mechanisms, the workload
//! generator and the evaluation harness.
//!
//! Every system compared in the paper — TOR, TrackMeNot, GooPIR, PEAS,
//! X-Search and CYCLOSA itself — is modelled as a [`Mechanism`]: something
//! that takes one user query and produces
//!
//! * what the **search engine observes** (one or several requests, each with
//!   an exposed or hidden origin), which is the input of the SimAttack
//!   re-identification adversary (Fig. 5), and
//! * how the **user's result page is produced** (exact results of the
//!   original query, or filtered from an obfuscated query), which drives the
//!   accuracy evaluation (Fig. 6), and
//! * how many requests hit the search engine, which drives the rate-limit
//!   and load experiments (Fig. 8d).
//!
//! Keeping this interface in a dedicated crate lets `cyclosa-baselines`, the
//! `cyclosa` core crate and `cyclosa-attack` agree on the adversary model
//! without depending on each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod properties;
pub mod query;

pub use properties::MechanismProperties;
pub use query::{Query, QueryId, UserId};

use cyclosa_util::rng::Xoshiro256StarStar;

/// The identity under which a request reaches the search engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceIdentity {
    /// The engine sees the real user's network identity (no unlinkability).
    Exposed(UserId),
    /// The engine sees some other party (relay, proxy, exit node); the real
    /// user is hidden.
    Anonymous,
}

impl SourceIdentity {
    /// Returns `true` when the request reveals the user's identity.
    pub fn is_exposed(&self) -> bool {
        matches!(self, SourceIdentity::Exposed(_))
    }
}

/// One request as observed by the search engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedRequest {
    /// The network identity the engine attributes the request to.
    pub source: SourceIdentity,
    /// The query text the engine receives (for OR-based obfuscation this is
    /// the full aggregated string).
    pub text: String,
    /// Ground truth: does this request carry (or contain) the user's real
    /// query? Never used by attack *logic*, only by the evaluation to score
    /// attack outcomes.
    pub carries_real_query: bool,
}

/// How the mechanism produces the result page shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultsDelivery {
    /// The user receives exactly the search engine's results for her
    /// original query text (perfect accuracy by construction).
    ExactQuery,
    /// The engine answers an obfuscated query (e.g. `q1 OR q2 OR ... OR qk`)
    /// and the client/proxy filters the merged result list, which loses and
    /// pollutes results (paper §II-A3).
    FilteredFromObfuscated {
        /// The aggregated query string actually sent to the engine.
        obfuscated_query: String,
    },
}

/// Everything that happens when a mechanism protects one user query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectionOutcome {
    /// The requests the search engine receives for this one user query.
    pub observed: Vec<ObservedRequest>,
    /// How the user-visible result page is produced.
    pub delivery: ResultsDelivery,
    /// Number of messages exchanged between protocol nodes (client, relays,
    /// proxies) to serve this query, excluding the engine requests.
    pub relay_messages: u32,
}

impl ProtectionOutcome {
    /// Number of requests that reach the search engine for this query.
    pub fn engine_requests(&self) -> usize {
        self.observed.len()
    }

    /// Requests that expose the user's identity to the engine.
    pub fn exposed_requests(&self) -> usize {
        self.observed
            .iter()
            .filter(|r| r.source.is_exposed())
            .count()
    }
}

/// A private Web-search mechanism under evaluation.
pub trait Mechanism {
    /// Human-readable name used in reports ("TOR", "X-SEARCH", "CYCLOSA"...).
    fn name(&self) -> &'static str;

    /// The qualitative properties claimed in Table I.
    fn properties(&self) -> MechanismProperties;

    /// Protects one user query, returning what the adversary observes and
    /// how the user's results are produced.
    fn protect(&mut self, query: &Query, rng: &mut Xoshiro256StarStar) -> ProtectionOutcome;
}

/// A mechanism that can draw *replacement* fake queries after the fact —
/// the capability behind adaptive-k repair under churn: when a relay dies
/// carrying a fake, the client redraws the shortfall and resubmits it
/// through a fresh relay, so the dilution the sensitivity assessment asked
/// for keeps holding through failures.
pub trait FakeReplenisher {
    /// Draws `count` replacement fakes for a top-up. `reference` is the
    /// user query being protected (dictionary-style generators shape their
    /// fakes after it); `rng` is the caller's dedicated top-up stream, so
    /// replenishing never perturbs the mechanism's own draws.
    fn replenish_fakes(
        &mut self,
        count: usize,
        reference: &str,
        rng: &mut Xoshiro256StarStar,
    ) -> Vec<String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Direct;
    impl Mechanism for Direct {
        fn name(&self) -> &'static str {
            "DIRECT"
        }
        fn properties(&self) -> MechanismProperties {
            MechanismProperties {
                unlinkability: false,
                indistinguishability: false,
                accuracy: true,
                scalability: true,
            }
        }
        fn protect(&mut self, query: &Query, _rng: &mut Xoshiro256StarStar) -> ProtectionOutcome {
            ProtectionOutcome {
                observed: vec![ObservedRequest {
                    source: SourceIdentity::Exposed(query.user),
                    text: query.text.clone(),
                    carries_real_query: true,
                }],
                delivery: ResultsDelivery::ExactQuery,
                relay_messages: 0,
            }
        }
    }

    #[test]
    fn outcome_counters() {
        let mut direct = Direct;
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let q = Query::new(QueryId(1), UserId(3), "swiss federal elections");
        let outcome = direct.protect(&q, &mut rng);
        assert_eq!(outcome.engine_requests(), 1);
        assert_eq!(outcome.exposed_requests(), 1);
        assert_eq!(direct.name(), "DIRECT");
        assert!(direct.properties().accuracy);
    }

    #[test]
    fn source_identity_exposure() {
        assert!(SourceIdentity::Exposed(UserId(1)).is_exposed());
        assert!(!SourceIdentity::Anonymous.is_exposed());
    }
}
