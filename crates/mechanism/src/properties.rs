//! Qualitative mechanism properties (the rows of Table I).

/// The four qualitative properties the paper compares in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MechanismProperties {
    /// The search engine cannot link a query to the identity of its sender.
    pub unlinkability: bool,
    /// The search engine cannot tell real queries apart from fake ones.
    pub indistinguishability: bool,
    /// The user receives the same results as an unprotected search.
    pub accuracy: bool,
    /// The design scales to many users without centralized choke points or
    /// being blocked by engine rate limiting.
    pub scalability: bool,
}

impl MechanismProperties {
    /// Renders the property set as the ✓/✗ row used in Table I.
    pub fn as_row(&self) -> [bool; 4] {
        [
            self.unlinkability,
            self.indistinguishability,
            self.accuracy,
            self.scalability,
        ]
    }

    /// Number of satisfied properties.
    pub fn satisfied(&self) -> usize {
        self.as_row().iter().filter(|&&b| b).count()
    }
}

impl std::fmt::Display for MechanismProperties {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mark = |b: bool| if b { "yes" } else { "no" };
        write!(
            f,
            "unlinkability={} indistinguishability={} accuracy={} scalability={}",
            mark(self.unlinkability),
            mark(self.indistinguishability),
            mark(self.accuracy),
            mark(self.scalability)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_count() {
        let p = MechanismProperties {
            unlinkability: true,
            indistinguishability: false,
            accuracy: true,
            scalability: true,
        };
        assert_eq!(p.as_row(), [true, false, true, true]);
        assert_eq!(p.satisfied(), 3);
        assert!(p.to_string().contains("indistinguishability=no"));
    }
}
