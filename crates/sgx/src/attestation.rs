//! Remote attestation: quotes, the simulated attestation service, and the
//! binding of attestation evidence to secure channels.
//!
//! Paper §V-D: while bootstrapping, a CYCLOSA client challenges every
//! connecting enclave to send a *quote* — a structure containing the hash of
//! the enclave code and key material — which is (1) checked against a known
//! hash value and (2) forwarded to the Intel Attestation Service (IAS) to
//! verify that it originates from a genuine SGX platform.
//!
//! The simulation reproduces that flow with symmetric primitives:
//!
//! * each [`crate::enclave::Platform`] owns a *quoting key* (the EPID
//!   analogue) that is provisioned to the [`AttestationService`];
//! * a [`Quote`] carries the enclave measurement, caller-chosen report data
//!   (CYCLOSA binds the X25519 public key here) and an HMAC under the
//!   quoting key;
//! * the service checks the HMAC against the set of provisioned platforms
//!   and returns a [`QuoteVerdict`];
//! * relying parties additionally check the measurement against the set of
//!   known-good CYCLOSA builds before accepting a channel.

use crate::enclave::Enclave;
use crate::measurement::Measurement;
use cyclosa_crypto::hmac::HmacSha256;
use std::collections::BTreeSet;

/// Report data length (binds caller data, e.g. a public key, into a quote).
pub const REPORT_DATA_LEN: usize = 64;

/// Errors arising during attestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The quote signature does not verify under any provisioned platform.
    UnknownPlatform,
    /// The quote signature is invalid (forged or corrupted quote).
    InvalidSignature,
    /// The enclave measurement is not in the relying party's allow-list.
    UnknownMeasurement,
    /// The quote could not be decoded.
    Malformed,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::UnknownPlatform => write!(f, "quote from an unprovisioned platform"),
            AttestationError::InvalidSignature => write!(f, "quote signature verification failed"),
            AttestationError::UnknownMeasurement => {
                write!(f, "enclave measurement not in the allow-list")
            }
            AttestationError::Malformed => write!(f, "malformed quote"),
        }
    }
}

impl std::error::Error for AttestationError {}

/// An enclave quote: the evidence a node presents during the handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Measurement of the quoted enclave.
    pub measurement: Measurement,
    /// Identifier of the platform that produced the quote.
    pub platform_id: [u8; 16],
    /// Caller-provided data bound into the quote (e.g. a handshake key).
    pub report_data: [u8; REPORT_DATA_LEN],
    /// Authentication tag under the platform's quoting key.
    pub signature: [u8; 32],
}

impl Quote {
    /// Serializes the quote to bytes (used as handshake evidence).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 16 + REPORT_DATA_LEN + 32);
        out.extend_from_slice(self.measurement.as_bytes());
        out.extend_from_slice(&self.platform_id);
        out.extend_from_slice(&self.report_data);
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a quote from bytes produced by [`Quote::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`AttestationError::Malformed`] for inputs of the wrong size.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AttestationError> {
        if bytes.len() != 32 + 16 + REPORT_DATA_LEN + 32 {
            return Err(AttestationError::Malformed);
        }
        let mut measurement = [0u8; 32];
        measurement.copy_from_slice(&bytes[..32]);
        let mut platform_id = [0u8; 16];
        platform_id.copy_from_slice(&bytes[32..48]);
        let mut report_data = [0u8; REPORT_DATA_LEN];
        report_data.copy_from_slice(&bytes[48..48 + REPORT_DATA_LEN]);
        let mut signature = [0u8; 32];
        signature.copy_from_slice(&bytes[48 + REPORT_DATA_LEN..]);
        Ok(Self {
            measurement: Measurement::from_bytes(measurement),
            platform_id,
            report_data,
            signature,
        })
    }

    fn signed_payload(
        measurement: &Measurement,
        platform_id: &[u8; 16],
        report_data: &[u8],
    ) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32 + 16 + REPORT_DATA_LEN);
        payload.extend_from_slice(b"cyclosa-quote-v1");
        payload.extend_from_slice(measurement.as_bytes());
        payload.extend_from_slice(platform_id);
        payload.extend_from_slice(report_data);
        payload
    }
}

/// Produces a quote for `enclave` binding `report_data` (truncated or
/// zero-padded to [`REPORT_DATA_LEN`]).
pub fn generate_quote<T>(enclave: &Enclave<T>, report_data: &[u8]) -> Quote {
    let mut data = [0u8; REPORT_DATA_LEN];
    let take = report_data.len().min(REPORT_DATA_LEN);
    data[..take].copy_from_slice(&report_data[..take]);
    let measurement = enclave.measurement();
    let platform_id = enclave.platform_id();
    let payload = Quote::signed_payload(&measurement, &platform_id, &data);
    let signature = HmacSha256::mac(&enclave.quoting_key(), &payload);
    Quote {
        measurement,
        platform_id,
        report_data: data,
        signature,
    }
}

/// The verdict issued by the attestation service for one quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoteVerdict {
    /// The quote is genuine (valid signature from a provisioned platform).
    Genuine,
    /// The quote is not genuine.
    Rejected(AttestationError),
}

impl QuoteVerdict {
    /// Returns `true` for genuine quotes.
    pub fn is_genuine(&self) -> bool {
        matches!(self, QuoteVerdict::Genuine)
    }
}

/// A simulated Intel Attestation Service.
///
/// Platforms are *provisioned* (their quoting keys registered) before they
/// can produce verifiable quotes, mirroring EPID provisioning.
#[derive(Debug, Default)]
pub struct AttestationService {
    /// Quoting keys by platform id.
    provisioned: Vec<([u8; 16], [u8; 32])>,
    /// Measurements the relying parties accept.
    allowed_measurements: BTreeSet<Measurement>,
}

impl AttestationService {
    /// Creates an empty service with no provisioned platforms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a platform's quoting key (EPID provisioning analogue).
    pub fn provision_platform(&mut self, platform: &crate::enclave::Platform) {
        let entry = (platform.platform_id(), platform.quoting_key());
        if !self.provisioned.iter().any(|(id, _)| *id == entry.0) {
            self.provisioned.push(entry);
        }
    }

    /// Adds a measurement to the allow-list of known CYCLOSA builds.
    pub fn allow_measurement(&mut self, measurement: Measurement) {
        self.allowed_measurements.insert(measurement);
    }

    /// Number of provisioned platforms.
    pub fn provisioned_count(&self) -> usize {
        self.provisioned.len()
    }

    /// Verifies that a quote was produced by a genuine provisioned platform.
    pub fn verify_genuine(&self, quote: &Quote) -> QuoteVerdict {
        let Some((_, key)) = self
            .provisioned
            .iter()
            .find(|(id, _)| *id == quote.platform_id)
        else {
            return QuoteVerdict::Rejected(AttestationError::UnknownPlatform);
        };
        let payload =
            Quote::signed_payload(&quote.measurement, &quote.platform_id, &quote.report_data);
        if HmacSha256::verify(key, &payload, &quote.signature) {
            QuoteVerdict::Genuine
        } else {
            QuoteVerdict::Rejected(AttestationError::InvalidSignature)
        }
    }

    /// Full relying-party check: the platform must be genuine *and* the
    /// measurement must be a known CYCLOSA build.
    ///
    /// # Errors
    ///
    /// Returns the specific [`AttestationError`] explaining the rejection.
    pub fn verify_for_cyclosa(&self, quote: &Quote) -> Result<(), AttestationError> {
        match self.verify_genuine(quote) {
            QuoteVerdict::Genuine => {}
            QuoteVerdict::Rejected(e) => return Err(e),
        }
        if !self.allowed_measurements.contains(&quote.measurement) {
            return Err(AttestationError::UnknownMeasurement);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::Platform;

    fn setup() -> (Platform, AttestationService) {
        let platform = Platform::new(77);
        let mut service = AttestationService::new();
        service.provision_platform(&platform);
        service.allow_measurement(Measurement::from_code_identity(b"cyclosa"));
        (platform, service)
    }

    #[test]
    fn genuine_quote_verifies() {
        let (platform, service) = setup();
        let enclave = platform.create_enclave(b"cyclosa", ());
        let quote = generate_quote(&enclave, b"handshake public key bytes");
        assert!(service.verify_genuine(&quote).is_genuine());
        assert!(service.verify_for_cyclosa(&quote).is_ok());
    }

    #[test]
    fn unprovisioned_platform_is_rejected() {
        let (_, service) = setup();
        let rogue_platform = Platform::new(666);
        let enclave = rogue_platform.create_enclave(b"cyclosa", ());
        let quote = generate_quote(&enclave, b"");
        assert_eq!(
            service.verify_for_cyclosa(&quote),
            Err(AttestationError::UnknownPlatform)
        );
    }

    #[test]
    fn unknown_measurement_is_rejected() {
        let (platform, service) = setup();
        let enclave = platform.create_enclave(b"not-cyclosa", ());
        let quote = generate_quote(&enclave, b"");
        assert!(service.verify_genuine(&quote).is_genuine());
        assert_eq!(
            service.verify_for_cyclosa(&quote),
            Err(AttestationError::UnknownMeasurement)
        );
    }

    #[test]
    fn forged_signature_is_rejected() {
        let (platform, service) = setup();
        let enclave = platform.create_enclave(b"cyclosa", ());
        let mut quote = generate_quote(&enclave, b"key");
        quote.signature[0] ^= 1;
        assert_eq!(
            service.verify_genuine(&quote),
            QuoteVerdict::Rejected(AttestationError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_report_data_is_rejected() {
        let (platform, service) = setup();
        let enclave = platform.create_enclave(b"cyclosa", ());
        let mut quote = generate_quote(&enclave, b"alice's key");
        quote.report_data[0] ^= 1;
        assert!(!service.verify_genuine(&quote).is_genuine());
    }

    #[test]
    fn quote_serialization_roundtrip() {
        let (platform, _) = setup();
        let enclave = platform.create_enclave(b"cyclosa", ());
        let quote = generate_quote(&enclave, b"report");
        let parsed = Quote::from_bytes(&quote.to_bytes()).unwrap();
        assert_eq!(parsed, quote);
        assert_eq!(
            Quote::from_bytes(&[0u8; 3]).unwrap_err(),
            AttestationError::Malformed
        );
    }

    #[test]
    fn report_data_longer_than_field_is_truncated() {
        let (platform, _) = setup();
        let enclave = platform.create_enclave(b"cyclosa", ());
        let long = vec![0xAB; 200];
        let quote = generate_quote(&enclave, &long);
        assert_eq!(&quote.report_data[..], &long[..REPORT_DATA_LEN]);
    }

    #[test]
    fn provisioning_is_idempotent() {
        let (platform, mut service) = setup();
        service.provision_platform(&platform);
        service.provision_platform(&platform);
        assert_eq!(service.provisioned_count(), 1);
    }

    #[test]
    fn error_display() {
        assert!(AttestationError::UnknownMeasurement
            .to_string()
            .contains("allow-list"));
        assert!(AttestationError::InvalidSignature
            .to_string()
            .contains("signature"));
    }
}
