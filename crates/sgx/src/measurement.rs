//! Enclave identity: measurements of enclave code and signers.
//!
//! On real SGX hardware, `MRENCLAVE` is a SHA-256 over the enclave's initial
//! memory contents and `MRSIGNER` identifies the key that signed the enclave.
//! The simulation computes the same kind of digest over a *code identity*
//! byte string (crate name, version and a build tag), which is what CYCLOSA
//! checks during remote attestation: "the quote is checked for a known hash
//! value" (paper §V-D).

use cyclosa_crypto::sha256::{hex, Sha256};

/// A 256-bit enclave measurement (the `MRENCLAVE` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Computes a measurement from an arbitrary code-identity byte string.
    pub fn from_code_identity(identity: &[u8]) -> Self {
        Self(Sha256::digest_parts(&[b"cyclosa-mrenclave-v1", identity]))
    }

    /// The measurement of the reference CYCLOSA enclave built by this
    /// workspace — the value every honest node expects its peers to run.
    pub fn cyclosa_reference() -> Self {
        Self::from_code_identity(b"cyclosa-enclave/0.1.0/reference-build")
    }

    /// A measurement representing an unknown / tampered enclave build, used
    /// by tests and by Byzantine-node experiments.
    pub fn rogue(tag: &str) -> Self {
        Self::from_code_identity(format!("rogue-enclave/{tag}").as_bytes())
    }

    /// Constructs a measurement from raw bytes (e.g. decoded from a quote).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hexadecimal rendering (for logs and reports).
    pub fn to_hex(&self) -> String {
        hex(&self.0)
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", &self.to_hex()[..16])
    }
}

/// Identity of the party that signed an enclave (the `MRSIGNER` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignerId([u8; 32]);

impl SignerId {
    /// Derives a signer identity from a signer name.
    pub fn from_name(name: &str) -> Self {
        Self(Sha256::digest_parts(&[
            b"cyclosa-mrsigner-v1",
            name.as_bytes(),
        ]))
    }

    /// Raw bytes of the signer identity.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        let a = Measurement::from_code_identity(b"build-1");
        let b = Measurement::from_code_identity(b"build-1");
        let c = Measurement::from_code_identity(b"build-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reference_differs_from_rogue() {
        assert_ne!(Measurement::cyclosa_reference(), Measurement::rogue("evil"));
        assert_ne!(Measurement::rogue("a"), Measurement::rogue("b"));
    }

    #[test]
    fn roundtrip_through_bytes() {
        let m = Measurement::cyclosa_reference();
        assert_eq!(Measurement::from_bytes(*m.as_bytes()), m);
    }

    #[test]
    fn hex_and_display() {
        let m = Measurement::cyclosa_reference();
        assert_eq!(m.to_hex().len(), 64);
        assert_eq!(format!("{m}").len(), 16);
    }

    #[test]
    fn signer_identity_from_name() {
        assert_eq!(
            SignerId::from_name("cyclosa"),
            SignerId::from_name("cyclosa")
        );
        assert_ne!(SignerId::from_name("cyclosa"), SignerId::from_name("other"));
    }
}
