//! A software simulation of Intel SGX trusted execution environments.
//!
//! The paper relies on SGX for three things (paper §II-B, §IV, §V-D):
//!
//! 1. **Confidentiality and integrity of relayed queries** — components that
//!    handle *other users'* queries run inside an enclave; the host of a
//!    relay node never sees them in plaintext.
//! 2. **Remote attestation** — nodes only exchange keys with genuine
//!    enclaves running a known CYCLOSA build, verified through quotes and
//!    the Intel Attestation Service (IAS).
//! 3. **A performance envelope** — enclave transitions (ecalls/ocalls) and
//!    EPC paging beyond the 128 MB limit have measurable costs that shape
//!    the throughput results (Fig. 8c).
//!
//! Real SGX hardware is not available in this reproduction environment, so
//! this crate provides a faithful *functional and cost* model of the pieces
//! CYCLOSA uses:
//!
//! * [`measurement`] — enclave identity (`MRENCLAVE`/`MRSIGNER` analogues).
//! * [`enclave`] — enclave lifecycle, a typed trust boundary around
//!   protected state, ecall/ocall accounting, EPC usage tracking and a
//!   calibrated cost model.
//! * [`sealing`] — sealing keys bound to platform and measurement.
//! * [`attestation`] — quotes, a simulated attestation service with a
//!   registry of known-good measurements, and helpers to bind quotes to the
//!   X25519 handshake of `cyclosa-crypto`.
//!
//! The trust boundary is enforced by the Rust type system rather than by
//! hardware: protected state can only be reached through [`enclave::Enclave::ecall`],
//! which records the transition and charges its cost. This preserves the
//! *shape* of the paper's security argument (what code can see which data)
//! and of its performance results, which is what the reproduction needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod enclave;
pub mod measurement;
pub mod sealing;

pub use attestation::{AttestationError, AttestationService, Quote, QuoteVerdict};
pub use enclave::{CostModel, Enclave, EnclaveError, EnclaveStatus, Platform, TransitionMetrics};
pub use measurement::Measurement;
pub use sealing::{SealError, SealedBlob};
