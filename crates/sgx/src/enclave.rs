//! Enclave lifecycle, the trust boundary around protected state, and the
//! transition cost model.
//!
//! The simulation encodes the SGX programming model in the type system:
//! protected state of type `T` lives inside an [`Enclave<T>`] and can only be
//! reached through [`Enclave::ecall`], which checks the enclave status,
//! counts the transition and charges its simulated cost. Code outside the
//! closure passed to `ecall` can never obtain a reference to `T`, mirroring
//! the hardware guarantee that enclave memory is inaccessible to the host.

use crate::measurement::Measurement;
use cyclosa_crypto::hkdf;
use cyclosa_runtime::metrics::{Counter, Histogram, Registry};

/// Page size used for EPC accounting (SGX uses 4 KiB pages).
pub const PAGE_SIZE: usize = 4096;

/// Cost model for enclave transitions and EPC paging.
///
/// Defaults are calibrated to published SGX measurements: an enclave
/// transition (ecall or ocall) costs on the order of 8 µs, and an EPC page
/// fault (swap through the SGX driver) costs tens of microseconds, which is
/// why exceeding the ~93 MiB of usable EPC causes the "severe performance
/// penalty" the paper cites. The CYCLOSA enclave is only 1.7 MB, so the
/// default deployment never pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of entering the enclave (ns).
    pub ecall_ns: u64,
    /// Cost of leaving the enclave for an ocall (ns).
    pub ocall_ns: u64,
    /// Cost of servicing one EPC page fault (ns).
    pub page_fault_ns: u64,
    /// Usable EPC in bytes before paging starts.
    pub epc_limit_bytes: usize,
    /// Per-byte cost of in-enclave processing (ns per byte), modelling the
    /// MEE encryption overhead on memory traffic.
    pub per_byte_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            ecall_ns: 8_000,
            ocall_ns: 8_000,
            page_fault_ns: 25_000,
            epc_limit_bytes: 93 * 1024 * 1024,
            per_byte_ns: 0.25,
        }
    }
}

impl CostModel {
    /// A cost model with no transition or paging costs, useful to isolate
    /// algorithmic costs in ablation benchmarks.
    pub fn free() -> Self {
        Self {
            ecall_ns: 0,
            ocall_ns: 0,
            page_fault_ns: 0,
            epc_limit_bytes: usize::MAX,
            per_byte_ns: 0.0,
        }
    }

    /// Simulated cost in nanoseconds of an ecall that touches
    /// `touched_bytes` of enclave memory while the enclave currently holds
    /// `resident_bytes` of protected data.
    pub fn ecall_cost(&self, touched_bytes: usize, resident_bytes: usize) -> u64 {
        let base = self.ecall_ns as f64 + self.per_byte_ns * touched_bytes as f64;
        base as u64 + self.paging_cost(touched_bytes, resident_bytes)
    }

    /// Simulated cost in nanoseconds of an ocall transferring
    /// `transferred_bytes` out of the enclave.
    pub fn ocall_cost(&self, transferred_bytes: usize) -> u64 {
        (self.ocall_ns as f64 + self.per_byte_ns * transferred_bytes as f64) as u64
    }

    /// Expected paging cost: when the resident set exceeds the EPC limit,
    /// each touched page misses with probability `1 - limit / resident`.
    pub fn paging_cost(&self, touched_bytes: usize, resident_bytes: usize) -> u64 {
        if resident_bytes <= self.epc_limit_bytes || resident_bytes == 0 {
            return 0;
        }
        let miss_probability = 1.0 - self.epc_limit_bytes as f64 / resident_bytes as f64;
        let touched_pages = touched_bytes.div_ceil(PAGE_SIZE) as f64;
        (touched_pages * miss_probability * self.page_fault_ns as f64) as u64
    }
}

/// Lifecycle status of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveStatus {
    /// Created but not yet initialized (no ecalls allowed).
    Created,
    /// Initialized and accepting ecalls.
    Initialized,
    /// Destroyed; all protected state has been discarded.
    Destroyed,
}

/// Errors returned by enclave operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveError {
    /// An ecall was attempted before `initialize` was called.
    NotInitialized,
    /// An operation was attempted on a destroyed enclave.
    Destroyed,
}

impl std::fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnclaveError::NotInitialized => write!(f, "enclave is not initialized"),
            EnclaveError::Destroyed => write!(f, "enclave has been destroyed"),
        }
    }
}

impl std::error::Error for EnclaveError {}

/// Counters describing the work an enclave has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionStats {
    /// Number of calls into the enclave.
    pub ecalls: u64,
    /// Number of calls out of the enclave.
    pub ocalls: u64,
    /// Total simulated time spent on transitions and paging, in ns.
    pub simulated_ns: u64,
    /// Current resident protected memory, in bytes.
    pub resident_bytes: usize,
    /// High-water mark of resident protected memory, in bytes.
    pub peak_resident_bytes: usize,
}

/// Metric handles recording enclave transitions, attachable to any
/// [`Enclave`] via [`Enclave::attach_metrics`].
///
/// Recording is purely observational: it never changes costs, statistics or
/// control flow, so instrumented and uninstrumented runs are identical.
#[derive(Debug, Clone)]
pub struct TransitionMetrics {
    /// Calls into the enclave.
    pub ecalls: Counter,
    /// Calls out of the enclave.
    pub ocalls: Counter,
    /// Distribution of per-transition simulated costs (ns).
    pub transition_ns: Histogram,
}

impl TransitionMetrics {
    /// Registers the transition metrics under `<prefix>.ecalls`,
    /// `<prefix>.ocalls` and `<prefix>.transition_ns`.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        Self {
            ecalls: registry.counter(&format!("{prefix}.ecalls")),
            ocalls: registry.counter(&format!("{prefix}.ocalls")),
            transition_ns: registry.histogram(&format!("{prefix}.transition_ns")),
        }
    }
}

/// A simulated SGX platform (one physical machine with SGX support).
///
/// The platform owns the hardware root sealing key and the quoting key that
/// the (simulated) quoting enclave uses to sign quotes, and acts as the
/// factory for enclaves.
#[derive(Debug, Clone)]
pub struct Platform {
    platform_id: [u8; 16],
    root_seal_key: [u8; 32],
    quoting_key: [u8; 32],
    cost: CostModel,
}

impl Platform {
    /// Creates a platform whose keys are derived deterministically from a
    /// seed (each simulated machine uses a distinct seed).
    pub fn new(seed: u64) -> Self {
        Self::with_cost_model(seed, CostModel::default())
    }

    /// Creates a platform with an explicit transition cost model.
    pub fn with_cost_model(seed: u64, cost: CostModel) -> Self {
        let seed_bytes = seed.to_le_bytes();
        let root_seal_key = hkdf::derive_key(b"sgx-platform-seal", &seed_bytes, b"root seal key");
        let quoting_key = hkdf::derive_key(b"sgx-platform-quote", &seed_bytes, b"quoting key");
        let id_full = hkdf::derive(b"sgx-platform-id", &seed_bytes, b"platform id", 16);
        let mut platform_id = [0u8; 16];
        platform_id.copy_from_slice(&id_full);
        Self {
            platform_id,
            root_seal_key,
            quoting_key,
            cost,
        }
    }

    /// The platform's (public) identifier.
    pub fn platform_id(&self) -> [u8; 16] {
        self.platform_id
    }

    /// The key the quoting enclave uses to authenticate quotes. Shared with
    /// the attestation service at provisioning time (the EPID analogue).
    pub fn quoting_key(&self) -> [u8; 32] {
        self.quoting_key
    }

    /// The platform cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Creates a new enclave holding `initial_state` as protected data.
    ///
    /// The returned enclave is in the [`EnclaveStatus::Created`] state and
    /// must be initialized before ecalls are accepted (a malicious host can
    /// simply never initialize it, which is one of the denial-of-service
    /// behaviours the paper acknowledges it cannot prevent).
    pub fn create_enclave<T>(&self, code_identity: &[u8], initial_state: T) -> Enclave<T> {
        let measurement = Measurement::from_code_identity(code_identity);
        let seal_key = hkdf::derive_key(
            &self.root_seal_key,
            measurement.as_bytes(),
            b"cyclosa sealing key v1",
        );
        Enclave {
            measurement,
            platform_id: self.platform_id,
            quoting_key: self.quoting_key,
            seal_key,
            cost: self.cost,
            status: EnclaveStatus::Created,
            stats: TransitionStats::default(),
            metrics: None,
            state: Some(initial_state),
        }
    }
}

/// A simulated SGX enclave protecting a state value of type `T`.
#[derive(Debug)]
pub struct Enclave<T> {
    measurement: Measurement,
    platform_id: [u8; 16],
    quoting_key: [u8; 32],
    seal_key: [u8; 32],
    cost: CostModel,
    status: EnclaveStatus,
    stats: TransitionStats,
    metrics: Option<TransitionMetrics>,
    state: Option<T>,
}

impl<T> Enclave<T> {
    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The hosting platform's identifier.
    pub fn platform_id(&self) -> [u8; 16] {
        self.platform_id
    }

    /// Current lifecycle status.
    pub fn status(&self) -> EnclaveStatus {
        self.status
    }

    /// Transition statistics accumulated so far.
    pub fn stats(&self) -> TransitionStats {
        self.stats
    }

    /// Attaches shared metric handles; every subsequent ecall/ocall is
    /// counted and its simulated cost recorded in the histogram.
    pub fn attach_metrics(&mut self, metrics: TransitionMetrics) {
        self.metrics = Some(metrics);
    }

    /// The sealing key bound to this platform and measurement. Only the
    /// enclave itself (trusted code) should use it; it is exposed here for
    /// the sealing module and tests.
    pub(crate) fn seal_key(&self) -> [u8; 32] {
        self.seal_key
    }

    /// The platform quoting key (used by the attestation module).
    pub(crate) fn quoting_key(&self) -> [u8; 32] {
        self.quoting_key
    }

    /// Completes enclave initialization (the `EINIT` analogue).
    ///
    /// # Errors
    ///
    /// Fails if the enclave has already been destroyed.
    pub fn initialize(&mut self) -> Result<(), EnclaveError> {
        match self.status {
            EnclaveStatus::Destroyed => Err(EnclaveError::Destroyed),
            _ => {
                self.status = EnclaveStatus::Initialized;
                Ok(())
            }
        }
    }

    /// Calls into the enclave: runs `body` with exclusive access to the
    /// protected state, charging the transition cost for an ecall touching
    /// `touched_bytes` of enclave memory.
    ///
    /// Returns the closure result together with the simulated cost in
    /// nanoseconds.
    ///
    /// # Errors
    ///
    /// Fails if the enclave is not initialized or destroyed.
    pub fn ecall<R>(
        &mut self,
        touched_bytes: usize,
        body: impl FnOnce(&mut T) -> R,
    ) -> Result<(R, u64), EnclaveError> {
        match self.status {
            EnclaveStatus::Created => return Err(EnclaveError::NotInitialized),
            EnclaveStatus::Destroyed => return Err(EnclaveError::Destroyed),
            EnclaveStatus::Initialized => {}
        }
        let cost = self
            .cost
            .ecall_cost(touched_bytes, self.stats.resident_bytes);
        self.stats.ecalls += 1;
        self.stats.simulated_ns += cost;
        if let Some(metrics) = &self.metrics {
            metrics.ecalls.inc();
            metrics.transition_ns.record(cost);
        }
        let state = self
            .state
            .as_mut()
            .expect("state present while initialized");
        let value = body(state);
        Ok((value, cost))
    }

    /// Records a call out of the enclave transferring `transferred_bytes`
    /// (e.g. handing an encrypted message to the untrusted network stack)
    /// and returns its simulated cost in nanoseconds.
    pub fn ocall(&mut self, transferred_bytes: usize) -> Result<u64, EnclaveError> {
        match self.status {
            EnclaveStatus::Created => return Err(EnclaveError::NotInitialized),
            EnclaveStatus::Destroyed => return Err(EnclaveError::Destroyed),
            EnclaveStatus::Initialized => {}
        }
        let cost = self.cost.ocall_cost(transferred_bytes);
        self.stats.ocalls += 1;
        self.stats.simulated_ns += cost;
        if let Some(metrics) = &self.metrics {
            metrics.ocalls.inc();
            metrics.transition_ns.record(cost);
        }
        Ok(cost)
    }

    /// Updates the EPC accounting to reflect the current size of the
    /// protected state. Trusted code calls this after growing or shrinking
    /// its in-enclave tables (e.g. the past-queries table).
    pub fn set_resident_bytes(&mut self, bytes: usize) {
        self.stats.resident_bytes = bytes;
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(bytes);
    }

    /// Destroys the enclave, dropping all protected state.
    pub fn destroy(&mut self) {
        self.status = EnclaveStatus::Destroyed;
        self.state = None;
        self.stats.resident_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Counter {
        value: u64,
    }

    fn make_enclave() -> Enclave<Counter> {
        let platform = Platform::new(42);
        platform.create_enclave(b"test-enclave", Counter::default())
    }

    #[test]
    fn ecall_requires_initialization() {
        let mut enclave = make_enclave();
        assert_eq!(enclave.status(), EnclaveStatus::Created);
        assert_eq!(
            enclave.ecall(0, |c| c.value).unwrap_err(),
            EnclaveError::NotInitialized
        );
        enclave.initialize().unwrap();
        let (value, cost) = enclave
            .ecall(128, |c| {
                c.value += 1;
                c.value
            })
            .unwrap();
        assert_eq!(value, 1);
        assert!(cost >= CostModel::default().ecall_ns);
    }

    #[test]
    fn attached_metrics_observe_transitions() {
        let registry = Registry::new();
        let mut enclave = make_enclave();
        enclave.attach_metrics(TransitionMetrics::register(&registry, "enclave"));
        enclave.initialize().unwrap();
        for _ in 0..3 {
            enclave.ecall(128, |c| c.value += 1).unwrap();
        }
        enclave.ocall(512).unwrap();
        assert_eq!(registry.counter("enclave.ecalls").get(), 3);
        assert_eq!(registry.counter("enclave.ocalls").get(), 1);
        let histogram = registry.histogram("enclave.transition_ns").snapshot();
        assert_eq!(histogram.count, 4);
        // Every transition costs at least the base ecall/ocall price; the
        // log-linear buckets may report up to 1/32 below the true value.
        let floor = (CostModel::default().ocall_ns as f64 * (1.0 - 1.0 / 32.0)) as u64;
        assert!(
            histogram.p50 >= floor,
            "p50 {} below {floor}",
            histogram.p50
        );
    }

    #[test]
    fn destroyed_enclave_rejects_everything() {
        let mut enclave = make_enclave();
        enclave.initialize().unwrap();
        enclave.destroy();
        assert_eq!(enclave.status(), EnclaveStatus::Destroyed);
        assert_eq!(
            enclave.ecall(0, |c| c.value).unwrap_err(),
            EnclaveError::Destroyed
        );
        assert_eq!(enclave.ocall(0).unwrap_err(), EnclaveError::Destroyed);
        assert_eq!(enclave.initialize().unwrap_err(), EnclaveError::Destroyed);
    }

    #[test]
    fn stats_track_transitions() {
        let mut enclave = make_enclave();
        enclave.initialize().unwrap();
        for _ in 0..5 {
            enclave.ecall(64, |c| c.value += 1).unwrap();
        }
        enclave.ocall(1024).unwrap();
        let stats = enclave.stats();
        assert_eq!(stats.ecalls, 5);
        assert_eq!(stats.ocalls, 1);
        assert!(stats.simulated_ns > 0);
    }

    #[test]
    fn paging_cost_kicks_in_above_epc_limit() {
        let cost = CostModel::default();
        // CYCLOSA's 1.7 MB enclave: no paging.
        assert_eq!(cost.paging_cost(4096, 1_700_000), 0);
        // Twice the EPC limit: about half the touched pages fault.
        let over = cost.paging_cost(PAGE_SIZE * 100, cost.epc_limit_bytes * 2);
        let expected = (100.0 * 0.5 * cost.page_fault_ns as f64) as u64;
        let diff = over.abs_diff(expected);
        assert!(
            diff < cost.page_fault_ns,
            "paging cost {over} vs expected {expected}"
        );
    }

    #[test]
    fn resident_bytes_tracking_updates_peak() {
        let mut enclave = make_enclave();
        enclave.initialize().unwrap();
        enclave.set_resident_bytes(10_000);
        enclave.set_resident_bytes(5_000);
        assert_eq!(enclave.stats().resident_bytes, 5_000);
        assert_eq!(enclave.stats().peak_resident_bytes, 10_000);
    }

    #[test]
    fn platforms_have_distinct_identities_and_keys() {
        let a = Platform::new(1);
        let b = Platform::new(2);
        assert_ne!(a.platform_id(), b.platform_id());
        assert_ne!(a.quoting_key(), b.quoting_key());
        // Same seed reproduces the same platform.
        assert_eq!(Platform::new(1).platform_id(), a.platform_id());
    }

    #[test]
    fn same_code_identity_same_measurement_across_platforms() {
        let a = Platform::new(1).create_enclave(b"cyclosa", ());
        let b = Platform::new(2).create_enclave(b"cyclosa", ());
        assert_eq!(a.measurement(), b.measurement());
        // Seal keys are platform-bound, therefore different.
        assert_ne!(a.seal_key(), b.seal_key());
    }

    #[test]
    fn free_cost_model_charges_nothing() {
        let platform = Platform::with_cost_model(7, CostModel::free());
        let mut enclave = platform.create_enclave(b"x", Counter::default());
        enclave.initialize().unwrap();
        let (_, cost) = enclave.ecall(1 << 20, |c| c.value).unwrap();
        assert_eq!(cost, 0);
    }

    #[test]
    fn error_display() {
        assert!(EnclaveError::NotInitialized
            .to_string()
            .contains("initialized"));
        assert!(EnclaveError::Destroyed.to_string().contains("destroyed"));
    }
}
