//! Data sealing: encrypting enclave state for untrusted storage.
//!
//! CYCLOSA keeps its table of past queries inside enclave memory (paper
//! §IV). A node that restarts would lose that table; sealing lets the
//! enclave persist it to untrusted disk such that only the *same enclave
//! code on the same platform* can recover it — exactly the SGX sealing
//! policy (`MRENCLAVE` + platform key).

use crate::enclave::Enclave;
use cyclosa_crypto::aead::{AeadError, ChaCha20Poly1305};
use cyclosa_crypto::sha256::Sha256;

/// Errors returned when unsealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The blob was produced by a different enclave identity or platform, or
    /// has been tampered with.
    Unsealable,
    /// The blob is malformed (truncated header).
    Malformed,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Unsealable => write!(f, "sealed blob cannot be opened by this enclave"),
            SealError::Malformed => write!(f, "sealed blob is malformed"),
        }
    }
}

impl std::error::Error for SealError {}

impl From<AeadError> for SealError {
    fn from(_: AeadError) -> Self {
        SealError::Unsealable
    }
}

/// A sealed blob: ciphertext bound to an enclave identity and platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// AEAD nonce derived from the payload digest (sealing is one-shot; the
    /// same plaintext sealed twice produces the same blob, which is
    /// acceptable for state snapshots).
    nonce: [u8; 12],
    /// Ciphertext and tag.
    ciphertext: Vec<u8>,
    /// Associated-data label describing the sealed content.
    label: Vec<u8>,
}

impl SealedBlob {
    /// Total serialized size in bytes (for storage accounting).
    pub fn len(&self) -> usize {
        self.nonce.len() + self.ciphertext.len() + self.label.len()
    }

    /// Returns `true` when the blob holds no ciphertext.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }

    /// The content label supplied at sealing time.
    pub fn label(&self) -> &[u8] {
        &self.label
    }
}

/// Seals `plaintext` under the enclave's sealing key.
///
/// The `label` is authenticated but not encrypted (it tells the untrusted
/// host what the blob is, e.g. `"past-queries-table"`).
pub fn seal<T>(enclave: &Enclave<T>, label: &[u8], plaintext: &[u8]) -> SealedBlob {
    let key = enclave.seal_key();
    let aead = ChaCha20Poly1305::new(&key);
    let digest = Sha256::digest_parts(&[b"seal-nonce", label, plaintext]);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&digest[..12]);
    let ciphertext = aead.seal(&nonce, plaintext, label);
    SealedBlob {
        nonce,
        ciphertext,
        label: label.to_vec(),
    }
}

/// Unseals a blob previously produced by [`seal`] on the same platform with
/// the same enclave measurement.
///
/// # Errors
///
/// Returns [`SealError::Unsealable`] when the blob was sealed by a different
/// enclave/platform or has been modified.
pub fn unseal<T>(enclave: &Enclave<T>, blob: &SealedBlob) -> Result<Vec<u8>, SealError> {
    if blob.ciphertext.len() < 16 {
        return Err(SealError::Malformed);
    }
    let key = enclave.seal_key();
    let aead = ChaCha20Poly1305::new(&key);
    Ok(aead.open(&blob.nonce, &blob.ciphertext, &blob.label)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::Platform;

    #[test]
    fn seal_unseal_roundtrip() {
        let platform = Platform::new(5);
        let enclave = platform.create_enclave(b"cyclosa", ());
        let blob = seal(
            &enclave,
            b"past-queries",
            b"cheap flights geneva\nweather lyon",
        );
        assert!(!blob.is_empty());
        assert_eq!(blob.label(), b"past-queries");
        let opened = unseal(&enclave, &blob).unwrap();
        assert_eq!(opened, b"cheap flights geneva\nweather lyon");
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let enclave_a = Platform::new(1).create_enclave(b"cyclosa", ());
        let enclave_b = Platform::new(2).create_enclave(b"cyclosa", ());
        let blob = seal(&enclave_a, b"state", b"secret table");
        assert_eq!(
            unseal(&enclave_b, &blob).unwrap_err(),
            SealError::Unsealable
        );
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let platform = Platform::new(1);
        let enclave_a = platform.create_enclave(b"cyclosa-v1", ());
        let enclave_b = platform.create_enclave(b"cyclosa-v2", ());
        let blob = seal(&enclave_a, b"state", b"secret table");
        assert_eq!(
            unseal(&enclave_b, &blob).unwrap_err(),
            SealError::Unsealable
        );
    }

    #[test]
    fn tampered_blob_is_rejected() {
        let platform = Platform::new(1);
        let enclave = platform.create_enclave(b"cyclosa", ());
        let mut blob = seal(&enclave, b"state", b"secret table");
        let last = blob.ciphertext.len() - 1;
        blob.ciphertext[last] ^= 0xFF;
        assert_eq!(unseal(&enclave, &blob).unwrap_err(), SealError::Unsealable);
    }

    #[test]
    fn label_is_authenticated() {
        let platform = Platform::new(1);
        let enclave = platform.create_enclave(b"cyclosa", ());
        let mut blob = seal(&enclave, b"past-queries", b"data");
        blob.label = b"fake-label".to_vec();
        assert_eq!(unseal(&enclave, &blob).unwrap_err(), SealError::Unsealable);
    }

    #[test]
    fn truncated_blob_is_malformed() {
        let platform = Platform::new(1);
        let enclave = platform.create_enclave(b"cyclosa", ());
        let mut blob = seal(&enclave, b"state", b"data");
        blob.ciphertext.truncate(4);
        assert_eq!(unseal(&enclave, &blob).unwrap_err(), SealError::Malformed);
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let platform = Platform::new(1);
        let enclave = platform.create_enclave(b"cyclosa", ());
        let blob = seal(&enclave, b"empty", b"");
        assert_eq!(unseal(&enclave, &blob).unwrap(), Vec::<u8>::new());
    }
}
