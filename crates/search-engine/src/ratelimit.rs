//! Per-client sliding-window rate limiting with CAPTCHA-style blocking.
//!
//! The paper observes that "after a high flow of queries, Google's bot
//! protection triggers and asks to fill a captcha" (§II-A4), and Fig. 8d
//! shows X-SEARCH's central proxy being rejected while CYCLOSA's per-node
//! load stays far below the limit. This module models that behaviour: each
//! client (network identity) may issue at most `max_requests` requests per
//! sliding `window_s`; exceeding the limit marks the client as a suspected
//! bot and blocks it for `block_s` (or forever if `block_s` is `None`).

use std::collections::{BTreeMap, VecDeque};

/// Identifier of a network client as seen by the engine (IP-level identity).
pub type ClientKey = u64;

/// Configuration of the rate limiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiterConfig {
    /// Maximum admitted requests per window.
    pub max_requests: u32,
    /// Window length in seconds.
    pub window_s: f64,
    /// How long a blocked client stays blocked, in seconds. `None` blocks
    /// the client for the rest of the run (it would have to solve a CAPTCHA).
    pub block_s: Option<f64>,
}

impl Default for RateLimiterConfig {
    fn default() -> Self {
        // Calibrated to the Fig. 8d setting: a single identity relaying the
        // traffic of 100 users with k = 3 (~10,500 req/hour) trips the
        // limiter almost immediately, while CYCLOSA's ~94 req/hour per node
        // stays well below it.
        Self {
            max_requests: 600,
            window_s: 3_600.0,
            block_s: None,
        }
    }
}

/// Outcome of submitting one request to the limiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateLimitDecision {
    /// The request is admitted.
    Admitted,
    /// The request is rejected: the client exceeded the rate limit and is
    /// (still) considered a bot.
    Rejected,
}

impl RateLimitDecision {
    /// Returns `true` for admitted requests.
    pub fn is_admitted(&self) -> bool {
        matches!(self, RateLimitDecision::Admitted)
    }
}

#[derive(Debug, Default, Clone)]
struct ClientState {
    recent: VecDeque<f64>,
    blocked_until: Option<f64>,
    admitted: u64,
    rejected: u64,
}

/// A sliding-window rate limiter keyed by client identity.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    config: RateLimiterConfig,
    clients: BTreeMap<ClientKey, ClientState>,
}

impl RateLimiter {
    /// Creates a limiter with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration admits no request or has a non-positive
    /// window.
    pub fn new(config: RateLimiterConfig) -> Self {
        assert!(config.max_requests > 0, "max_requests must be positive");
        assert!(config.window_s > 0.0, "window must be positive");
        Self {
            config,
            clients: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RateLimiterConfig {
        self.config
    }

    /// Records a request from `client` at time `now_s` (seconds since the
    /// start of the experiment) and decides whether it is admitted.
    pub fn submit(&mut self, client: ClientKey, now_s: f64) -> RateLimitDecision {
        let config = self.config;
        let state = self.clients.entry(client).or_default();
        // Blocked clients stay blocked until the block expires (if ever).
        if let Some(until) = state.blocked_until {
            if now_s < until {
                state.rejected += 1;
                return RateLimitDecision::Rejected;
            }
            state.blocked_until = None;
            state.recent.clear();
        }
        // Expire requests that left the window.
        while let Some(&front) = state.recent.front() {
            if now_s - front > config.window_s {
                state.recent.pop_front();
            } else {
                break;
            }
        }
        if state.recent.len() as u32 >= config.max_requests {
            // Bot suspicion triggered.
            state.blocked_until = Some(match config.block_s {
                Some(d) => now_s + d,
                None => f64::INFINITY,
            });
            state.rejected += 1;
            return RateLimitDecision::Rejected;
        }
        state.recent.push_back(now_s);
        state.admitted += 1;
        RateLimitDecision::Admitted
    }

    /// Returns `true` if `client` is currently blocked at time `now_s`.
    pub fn is_blocked(&self, client: ClientKey, now_s: f64) -> bool {
        self.clients
            .get(&client)
            .and_then(|s| s.blocked_until)
            .map(|until| now_s < until)
            .unwrap_or(false)
    }

    /// Number of admitted requests for `client` so far.
    pub fn admitted(&self, client: ClientKey) -> u64 {
        self.clients.get(&client).map(|s| s.admitted).unwrap_or(0)
    }

    /// Number of rejected requests for `client` so far.
    pub fn rejected(&self, client: ClientKey) -> u64 {
        self.clients.get(&client).map(|s| s.rejected).unwrap_or(0)
    }

    /// Total requests admitted across all clients.
    pub fn total_admitted(&self) -> u64 {
        self.clients.values().map(|s| s.admitted).sum()
    }

    /// Total requests rejected across all clients.
    pub fn total_rejected(&self) -> u64 {
        self.clients.values().map(|s| s.rejected).sum()
    }
}

impl Default for RateLimiter {
    fn default() -> Self {
        Self::new(RateLimiterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limiter(max: u32, window: f64, block: Option<f64>) -> RateLimiter {
        RateLimiter::new(RateLimiterConfig {
            max_requests: max,
            window_s: window,
            block_s: block,
        })
    }

    #[test]
    fn requests_below_limit_are_admitted() {
        let mut rl = limiter(10, 60.0, None);
        for i in 0..10 {
            assert!(rl.submit(1, i as f64).is_admitted());
        }
        assert_eq!(rl.admitted(1), 10);
        assert_eq!(rl.rejected(1), 0);
    }

    #[test]
    fn exceeding_the_limit_blocks_forever_by_default() {
        let mut rl = limiter(5, 60.0, None);
        for i in 0..5 {
            assert!(rl.submit(7, i as f64).is_admitted());
        }
        assert_eq!(rl.submit(7, 5.0), RateLimitDecision::Rejected);
        // Even after the window has passed, the block persists.
        assert_eq!(rl.submit(7, 10_000.0), RateLimitDecision::Rejected);
        assert!(rl.is_blocked(7, 10_000.0));
        assert_eq!(rl.rejected(7), 2);
    }

    #[test]
    fn window_expiry_frees_budget() {
        let mut rl = limiter(2, 10.0, Some(1.0));
        assert!(rl.submit(1, 0.0).is_admitted());
        assert!(rl.submit(1, 1.0).is_admitted());
        // Within the window: rejected and briefly blocked.
        assert!(!rl.submit(1, 2.0).is_admitted());
        // After the block expires and the old requests left the window,
        // requests are admitted again.
        assert!(rl.submit(1, 20.0).is_admitted());
    }

    #[test]
    fn clients_are_tracked_independently() {
        let mut rl = limiter(1, 60.0, None);
        assert!(rl.submit(1, 0.0).is_admitted());
        assert!(!rl.submit(1, 1.0).is_admitted());
        assert!(rl.submit(2, 1.0).is_admitted());
        assert_eq!(rl.total_admitted(), 2);
        assert_eq!(rl.total_rejected(), 1);
        assert!(!rl.is_blocked(2, 1.0));
    }

    #[test]
    fn centralized_proxy_versus_spread_load() {
        // The Fig. 8d intuition in miniature: 100 users at ~31 queries/hour
        // with k = 3 through ONE identity exceed the limit, the same load
        // spread over 100 identities does not.
        let config = RateLimiterConfig::default();
        let mut central = RateLimiter::new(config);
        let mut spread = RateLimiter::new(config);
        let mut central_rejected = 0;
        let mut spread_rejected = 0;
        // One hour of traffic: 100 users * 31 queries * 4 requests (k=3).
        let total_requests = 100 * 31 * 4;
        for i in 0..total_requests {
            let t = 3_600.0 * i as f64 / total_requests as f64;
            if !central.submit(0, t).is_admitted() {
                central_rejected += 1;
            }
            if !spread.submit((i % 100) as u64, t).is_admitted() {
                spread_rejected += 1;
            }
        }
        assert!(
            central_rejected > total_requests / 2,
            "central proxy should be blocked"
        );
        assert_eq!(spread_rejected, 0, "spread load must stay under the limit");
    }

    #[test]
    fn default_config_matches_paper_calibration() {
        let rl = RateLimiter::default();
        assert_eq!(rl.config().max_requests, 600);
        assert_eq!(rl.config().window_s, 3_600.0);
    }

    #[test]
    #[should_panic(expected = "max_requests")]
    fn zero_budget_rejected() {
        let _ = limiter(0, 10.0, None);
    }
}
