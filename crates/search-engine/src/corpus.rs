//! Synthetic document corpus generation.
//!
//! The corpus is generated from the same topic vocabularies as the query
//! workload, so that queries have relevant documents to retrieve and the
//! accuracy metrics (correctness / completeness, Fig. 6) measure the effect
//! of obfuscation rather than of an empty index.

use cyclosa_util::dist::Zipf;
use cyclosa_util::rng::Rng;

/// Identifier of a document in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

/// A document in the simulated Web.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Unique identifier.
    pub id: DocId,
    /// The topic the document was generated from (ground truth, handy for
    /// diagnostics; the index never uses it).
    pub topic: String,
    /// Document text (a bag of topic terms).
    pub text: String,
}

/// Generates documents from per-topic vocabularies with Zipfian term usage.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    topics: Vec<(String, Vec<String>)>,
    terms_per_document: usize,
    zipf_exponent: f64,
}

impl CorpusGenerator {
    /// Creates a generator over `(topic name, vocabulary)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `topics` is empty, any vocabulary is empty, or
    /// `terms_per_document` is zero.
    pub fn new(topics: Vec<(String, Vec<String>)>, terms_per_document: usize) -> Self {
        assert!(
            !topics.is_empty(),
            "corpus generator needs at least one topic"
        );
        assert!(
            topics.iter().all(|(_, v)| !v.is_empty()),
            "every topic needs a non-empty vocabulary"
        );
        assert!(terms_per_document > 0, "documents need at least one term");
        Self {
            topics,
            terms_per_document,
            zipf_exponent: 0.9,
        }
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.topics.len()
    }

    /// Generates `documents_per_topic` documents for every topic.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        documents_per_topic: usize,
        rng: &mut R,
    ) -> Vec<Document> {
        let mut documents = Vec::with_capacity(documents_per_topic * self.topics.len());
        let mut next_id = 0u64;
        for (topic, vocabulary) in &self.topics {
            let zipf = Zipf::new(vocabulary.len(), self.zipf_exponent);
            for _ in 0..documents_per_topic {
                // Build the text in place: no per-term String clones and no
                // intermediate Vec, same output as `terms.join(" ")`.
                let mut text = String::with_capacity(self.terms_per_document * 8);
                for i in 0..self.terms_per_document {
                    if i > 0 {
                        text.push(' ');
                    }
                    text.push_str(&vocabulary[zipf.sample(rng)]);
                }
                documents.push(Document {
                    id: DocId(next_id),
                    topic: topic.clone(),
                    text,
                });
                next_id += 1;
            }
        }
        documents
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclosa_util::rng::Xoshiro256StarStar;

    fn topics() -> Vec<(String, Vec<String>)> {
        vec![
            (
                "health".to_owned(),
                ["flu", "fever", "diabetes", "insulin", "doctor", "treatment"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
            (
                "travel".to_owned(),
                ["flights", "hotel", "booking", "beach", "train"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
        ]
    }

    #[test]
    fn generates_requested_number_of_documents() {
        let generator = CorpusGenerator::new(topics(), 12);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let docs = generator.generate(50, &mut rng);
        assert_eq!(docs.len(), 100);
        assert_eq!(generator.topic_count(), 2);
        // Ids are unique and dense.
        let ids: std::collections::BTreeSet<_> = docs.iter().map(|d| d.id).collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn documents_use_their_topic_vocabulary() {
        let generator = CorpusGenerator::new(topics(), 8);
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let docs = generator.generate(10, &mut rng);
        for d in docs.iter().filter(|d| d.topic == "health") {
            for term in d.text.split_whitespace() {
                assert!(
                    ["flu", "fever", "diabetes", "insulin", "doctor", "treatment"].contains(&term),
                    "unexpected term {term}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = CorpusGenerator::new(topics(), 6);
        let a = generator.generate(5, &mut Xoshiro256StarStar::seed_from_u64(9));
        let b = generator.generate(5, &mut Xoshiro256StarStar::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn empty_topics_rejected() {
        let _ = CorpusGenerator::new(vec![], 5);
    }

    #[test]
    #[should_panic(expected = "non-empty vocabulary")]
    fn empty_vocabulary_rejected() {
        let _ = CorpusGenerator::new(vec![("x".to_owned(), vec![])], 5);
    }
}
