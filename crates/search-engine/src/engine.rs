//! The search-engine front end: query execution, rate limiting and the
//! request log the honest-but-curious adversary gets to analyse.

use crate::index::{Index, SearchResult};
use crate::ratelimit::{RateLimitDecision, RateLimiter, RateLimiterConfig};

/// The network identity a request appears to come from (user, proxy or
/// relay — whoever actually contacts the engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientAddr(pub u64);

/// Configuration of the simulated engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of results per page (the paper's accuracy metrics compare the
    /// first page).
    pub results_per_page: usize,
    /// Anti-bot rate limiting configuration.
    pub rate_limit: RateLimiterConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            results_per_page: 10,
            rate_limit: RateLimiterConfig::default(),
        }
    }
}

/// Errors returned by [`SearchEngine::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The client identity has exceeded the rate limit (CAPTCHA page).
    RateLimited,
    /// The query was empty after normalization.
    EmptyQuery,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RateLimited => write!(f, "rate limited: captcha required"),
            EngineError::EmptyQuery => write!(f, "empty query"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A result page returned to the requester.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultPage {
    /// The query string the engine executed.
    pub query: String,
    /// Ranked results (at most `results_per_page`).
    pub results: Vec<SearchResult>,
}

/// One entry of the engine-side request log (what the honest-but-curious
/// engine can analyse offline).
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedRequest {
    /// The identity that contacted the engine.
    pub client: ClientAddr,
    /// The query text received.
    pub query: String,
    /// Arrival time in seconds.
    pub at_s: f64,
    /// Whether the request was admitted or rejected by the rate limiter.
    pub admitted: bool,
}

/// The simulated search engine.
#[derive(Debug)]
pub struct SearchEngine {
    index: Index,
    limiter: RateLimiter,
    config: EngineConfig,
    log: Vec<LoggedRequest>,
}

impl SearchEngine {
    /// Creates an engine over a pre-built index.
    pub fn new(index: Index, config: EngineConfig) -> Self {
        Self {
            index,
            limiter: RateLimiter::new(config.rate_limit),
            config,
            log: Vec::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Submits a query on behalf of `client` at time `now_s`.
    ///
    /// The query may contain the ` OR ` aggregation operator; the engine
    /// then interleaves per-disjunct rankings (see [`Index::search_or`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::RateLimited`] when the client identity has
    /// exceeded the anti-bot budget, and [`EngineError::EmptyQuery`] for
    /// queries with no content terms.
    pub fn submit(
        &mut self,
        client: ClientAddr,
        query: &str,
        now_s: f64,
    ) -> Result<ResultPage, EngineError> {
        let admitted = self.limiter.submit(client.0, now_s) == RateLimitDecision::Admitted;
        self.log.push(LoggedRequest {
            client,
            query: query.to_owned(),
            at_s: now_s,
            admitted,
        });
        if !admitted {
            return Err(EngineError::RateLimited);
        }
        if !cyclosa_nlp::text::has_content_terms(query) {
            return Err(EngineError::EmptyQuery);
        }
        Ok(ResultPage {
            query: query.to_owned(),
            results: self.index.search_or(query, self.config.results_per_page),
        })
    }

    /// Executes a query without rate limiting or logging — used to compute
    /// the ground-truth result set `R_or` of the accuracy metrics.
    pub fn reference_results(&self, query: &str) -> ResultPage {
        ResultPage {
            query: query.to_owned(),
            results: self.index.search_or(query, self.config.results_per_page),
        }
    }

    /// Read-only access to the underlying index.
    pub fn index(&self) -> &Index {
        &self.index
    }

    /// The engine-side request log.
    pub fn log(&self) -> &[LoggedRequest] {
        &self.log
    }

    /// Whether `client` is currently blocked.
    pub fn is_blocked(&self, client: ClientAddr, now_s: f64) -> bool {
        self.limiter.is_blocked(client.0, now_s)
    }

    /// Counts of admitted and rejected requests for `client`.
    pub fn client_counts(&self, client: ClientAddr) -> (u64, u64) {
        (
            self.limiter.admitted(client.0),
            self.limiter.rejected(client.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{DocId, Document};

    fn engine() -> SearchEngine {
        let docs = vec![
            Document {
                id: DocId(0),
                topic: "health".into(),
                text: "flu fever treatment doctor".into(),
            },
            Document {
                id: DocId(1),
                topic: "health".into(),
                text: "diabetes insulin glucose".into(),
            },
            Document {
                id: DocId(2),
                topic: "travel".into(),
                text: "cheap flights geneva booking".into(),
            },
        ];
        SearchEngine::new(Index::build(&docs), EngineConfig::default())
    }

    #[test]
    fn submit_returns_ranked_results_and_logs() {
        let mut e = engine();
        let page = e.submit(ClientAddr(1), "flu fever", 0.0).unwrap();
        assert_eq!(page.results[0].doc, DocId(0));
        assert_eq!(e.log().len(), 1);
        assert!(e.log()[0].admitted);
        assert_eq!(e.client_counts(ClientAddr(1)), (1, 0));
    }

    #[test]
    fn empty_query_is_an_error() {
        let mut e = engine();
        assert_eq!(
            e.submit(ClientAddr(1), "the of", 0.0),
            Err(EngineError::EmptyQuery)
        );
    }

    #[test]
    fn rate_limiting_blocks_abusive_clients() {
        let mut e = SearchEngine::new(
            Index::build(&[Document {
                id: DocId(0),
                topic: String::new(),
                text: "hello world".into(),
            }]),
            EngineConfig {
                results_per_page: 10,
                rate_limit: RateLimiterConfig {
                    max_requests: 3,
                    window_s: 60.0,
                    block_s: None,
                },
            },
        );
        for i in 0..3 {
            assert!(e.submit(ClientAddr(9), "hello", i as f64).is_ok());
        }
        assert_eq!(
            e.submit(ClientAddr(9), "hello", 3.0),
            Err(EngineError::RateLimited)
        );
        assert!(e.is_blocked(ClientAddr(9), 4.0));
        // Another client is unaffected.
        assert!(e.submit(ClientAddr(10), "hello", 3.0).is_ok());
        // The rejected request still appears in the engine's log.
        assert_eq!(e.log().iter().filter(|r| !r.admitted).count(), 1);
    }

    #[test]
    fn or_queries_are_supported() {
        let mut e = engine();
        let page = e
            .submit(ClientAddr(2), "flu fever OR cheap flights", 0.0)
            .unwrap();
        let ids: Vec<u64> = page.results.iter().map(|r| r.doc.0).collect();
        assert!(ids.contains(&0));
        assert!(ids.contains(&2));
    }

    #[test]
    fn reference_results_do_not_touch_the_limiter_or_log() {
        let e = engine();
        let page = e.reference_results("diabetes insulin");
        assert_eq!(page.results[0].doc, DocId(1));
        assert!(e.log().is_empty());
    }

    #[test]
    fn error_display() {
        assert!(EngineError::RateLimited.to_string().contains("captcha"));
        assert!(EngineError::EmptyQuery.to_string().contains("empty"));
    }
}
