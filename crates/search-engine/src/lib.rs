//! A simulated Web search engine.
//!
//! The paper evaluates CYCLOSA against a real engine (Google), which this
//! reproduction cannot query. The experiments only rely on two properties of
//! the engine, both modelled here:
//!
//! 1. **Comparable result sets** — the accuracy experiment (Fig. 6) compares
//!    the results returned for the original query against the results the
//!    user receives after obfuscation/filtering. The [`index`] module
//!    provides a TF-IDF ranked inverted index over a synthetic [`corpus`],
//!    with support for the `OR` aggregation used by GooPIR/PEAS/X-Search.
//! 2. **Anti-bot rate limiting** — centralized proxies get blocked because
//!    all their traffic comes from one network identity (Fig. 8d; the paper
//!    observed Google's CAPTCHA triggering "very soon"). The [`ratelimit`]
//!    module implements a sliding-window per-client limiter with blocking.
//!
//! [`engine::SearchEngine`] ties the two together and keeps an observation
//! log that the adversary of `cyclosa-attack` can replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod engine;
pub mod index;
pub mod ratelimit;

pub use corpus::{CorpusGenerator, Document};
pub use engine::{ClientAddr, EngineConfig, EngineError, ResultPage, SearchEngine};
pub use index::{Index, SearchResult};
pub use ratelimit::{RateLimitDecision, RateLimiter, RateLimiterConfig};
