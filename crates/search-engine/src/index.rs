//! Inverted index with TF-IDF ranking and OR-query support.

use crate::corpus::{DocId, Document};
use cyclosa_nlp::text::tokenize;
use std::collections::HashMap;

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The matching document.
    pub doc: DocId,
    /// TF-IDF relevance score (higher is better).
    pub score: f64,
}

/// An inverted index over a document corpus.
#[derive(Debug, Clone, Default)]
pub struct Index {
    /// term → list of (document, term frequency).
    postings: HashMap<String, Vec<(DocId, u32)>>,
    /// document → length in terms (for normalization).
    doc_lengths: HashMap<DocId, u32>,
    documents: usize,
}

impl Index {
    /// Builds an index over `documents`.
    pub fn build(documents: &[Document]) -> Self {
        let mut index = Self::default();
        for doc in documents {
            index.add_document(doc);
        }
        index
    }

    /// Adds a single document to the index.
    pub fn add_document(&mut self, document: &Document) {
        let terms = tokenize(&document.text);
        if terms.is_empty() {
            return;
        }
        let mut counts: HashMap<String, u32> = HashMap::new();
        for t in &terms {
            *counts.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, count) in counts {
            self.postings
                .entry(term)
                .or_default()
                .push((document.id, count));
        }
        self.doc_lengths.insert(document.id, terms.len() as u32);
        self.documents += 1;
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.documents
    }

    /// Returns `true` when no document has been indexed.
    pub fn is_empty(&self) -> bool {
        self.documents == 0
    }

    /// Number of distinct indexed terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Inverse document frequency of a term (smoothed).
    fn idf(&self, term: &str) -> f64 {
        let df = self.postings.get(term).map(|p| p.len()).unwrap_or(0);
        ((self.documents as f64 + 1.0) / (df as f64 + 1.0)).ln() + 1.0
    }

    /// Ranks documents for a conjunctive (single) query: documents matching
    /// more query terms with higher TF-IDF weight come first.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchResult> {
        let terms = tokenize(query);
        if terms.is_empty() || self.documents == 0 {
            return Vec::new();
        }
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in &terms {
            let idf = self.idf(term);
            if let Some(postings) = self.postings.get(term) {
                for &(doc, tf) in postings {
                    let length = self.doc_lengths[&doc].max(1) as f64;
                    *scores.entry(doc).or_insert(0.0) += (tf as f64 / length) * idf;
                }
            }
        }
        let mut results: Vec<SearchResult> = scores
            .into_iter()
            .map(|(doc, score)| SearchResult { doc, score })
            .collect();
        // Deterministic ordering: score desc, then doc id.
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        results.truncate(limit);
        results
    }

    /// Executes an OR-aggregated query of the form `q1 OR q2 OR ... OR qn`
    /// (as produced by GooPIR, PEAS and X-SEARCH): each disjunct is ranked
    /// separately and the result page interleaves the per-disjunct rankings,
    /// which is what pollutes the page with results of the fake queries.
    pub fn search_or(&self, aggregated_query: &str, limit: usize) -> Vec<SearchResult> {
        let disjuncts: Vec<&str> = aggregated_query
            .split(" OR ")
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if disjuncts.len() <= 1 {
            return self.search(aggregated_query, limit);
        }
        let per_disjunct: Vec<Vec<SearchResult>> =
            disjuncts.iter().map(|q| self.search(q, limit)).collect();
        let mut merged = Vec::with_capacity(limit);
        let mut seen = std::collections::HashSet::new();
        let mut rank = 0usize;
        while merged.len() < limit {
            let mut any = false;
            for results in &per_disjunct {
                if let Some(r) = results.get(rank) {
                    any = true;
                    if seen.insert(r.doc) && merged.len() < limit {
                        merged.push(*r);
                    }
                }
            }
            if !any {
                break;
            }
            rank += 1;
        }
        merged
    }

    /// Returns the set of terms of `query` that occur in document `doc` —
    /// used by the client-side filtering of OR-based mechanisms.
    pub fn matching_terms(&self, doc: DocId, query: &str) -> Vec<String> {
        tokenize(query)
            .into_iter()
            .filter(|t| {
                self.postings
                    .get(t)
                    .map(|p| p.iter().any(|(d, _)| *d == doc))
                    .unwrap_or(false)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DocId;

    fn doc(id: u64, text: &str) -> Document {
        Document {
            id: DocId(id),
            topic: String::new(),
            text: text.to_owned(),
        }
    }

    fn sample_index() -> Index {
        Index::build(&[
            doc(0, "flu symptoms fever treatment doctor"),
            doc(1, "diabetes insulin glucose treatment"),
            doc(2, "cheap flights geneva paris booking"),
            doc(3, "hotel booking barcelona beach"),
            doc(4, "flu vaccine side effects fever"),
            doc(5, "train booking zurich milan"),
        ])
    }

    #[test]
    fn relevant_documents_rank_first() {
        let index = sample_index();
        let results = index.search("flu fever", 10);
        assert!(!results.is_empty());
        let top_ids: Vec<u64> = results.iter().take(2).map(|r| r.doc.0).collect();
        assert!(top_ids.contains(&0));
        assert!(top_ids.contains(&4));
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let index = sample_index();
        assert!(index.search("quantum chromodynamics", 10).is_empty());
        assert!(index.search("", 10).is_empty());
    }

    #[test]
    fn limit_truncates_results() {
        let index = sample_index();
        let results = index.search("booking", 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let index = sample_index();
        let results = index.search("flu fever treatment booking", 10);
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn or_query_mixes_topics() {
        let index = sample_index();
        let results = index.search_or("flu fever OR hotel barcelona", 6);
        let ids: Vec<u64> = results.iter().map(|r| r.doc.0).collect();
        // Results of both disjuncts appear in the page.
        assert!(
            ids.iter().any(|&i| i == 0 || i == 4),
            "health results missing: {ids:?}"
        );
        assert!(ids.contains(&3), "travel results missing: {ids:?}");
    }

    #[test]
    fn or_query_with_single_disjunct_equals_plain_search() {
        let index = sample_index();
        assert_eq!(
            index.search_or("flu fever", 5),
            index.search("flu fever", 5)
        );
    }

    #[test]
    fn or_page_displaces_exact_results() {
        let index = sample_index();
        // With a small page, the OR aggregation leaves less room for the
        // real query's results — the root cause of completeness < 1.
        let exact: Vec<_> = index.search("booking", 3).iter().map(|r| r.doc).collect();
        let polluted: Vec<_> = index
            .search_or("booking OR flu OR insulin", 3)
            .iter()
            .map(|r| r.doc)
            .collect();
        let kept = exact.iter().filter(|d| polluted.contains(d)).count();
        assert!(
            kept < exact.len(),
            "obfuscation should displace some exact results"
        );
    }

    #[test]
    fn matching_terms_reports_overlap() {
        let index = sample_index();
        let terms = index.matching_terms(DocId(0), "flu booking fever");
        assert_eq!(terms, vec!["flu", "fever"]);
        assert!(index.matching_terms(DocId(3), "flu fever").is_empty());
    }

    #[test]
    fn index_statistics() {
        let index = sample_index();
        assert_eq!(index.len(), 6);
        assert!(!index.is_empty());
        assert!(index.vocabulary_size() > 10);
        assert!(Index::default().is_empty());
    }
}
