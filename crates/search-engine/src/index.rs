//! Inverted index with TF-IDF ranking and OR-query support.
//!
//! The index speaks the workspace-wide interned-term idiom: terms are
//! interned into a shared [`TermInterner`] and the postings are a plain
//! vector indexed by [`TermId`] instead of a string-keyed map. Query
//! execution tokenizes the query once, looks every term up without
//! interning, and walks the matching postings lists — scores are
//! bit-identical to the historical string-keyed implementation (same
//! accumulation order, same smoothed IDF).

use crate::corpus::{DocId, Document};
use cyclosa_nlp::text::{for_each_term, tokenize, TermId, TermInterner};
use std::collections::BTreeMap;

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The matching document.
    pub doc: DocId,
    /// TF-IDF relevance score (higher is better).
    pub score: f64,
}

/// An inverted index over a document corpus.
#[derive(Debug, Clone, Default)]
pub struct Index {
    /// Shared term interner (clone of whatever interner the index was built
    /// with — possibly shared with profiles and attack indexes).
    interner: TermInterner,
    /// `postings[term.index()]` → list of (document, term frequency), in
    /// document-insertion order.
    postings: Vec<Vec<(DocId, u32)>>,
    /// Number of distinct terms with at least one posting.
    distinct_terms: usize,
    /// document → length in terms (for normalization).
    doc_lengths: BTreeMap<DocId, u32>,
    documents: usize,
}

impl Index {
    /// Builds an index over `documents` with a private interner.
    pub fn build(documents: &[Document]) -> Self {
        Self::build_with_interner(TermInterner::new(), documents)
    }

    /// Builds an index over `documents`, interning terms into `interner`
    /// (cheap clone — share it with the other subsystems that should agree
    /// on term ids).
    pub fn build_with_interner(interner: TermInterner, documents: &[Document]) -> Self {
        let mut index = Self {
            interner,
            ..Self::default()
        };
        for doc in documents {
            index.add_document(doc);
        }
        index
    }

    /// The interner the index's term ids refer to.
    pub fn interner(&self) -> &TermInterner {
        &self.interner
    }

    /// Adds a single document to the index.
    pub fn add_document(&mut self, document: &Document) {
        let mut ids = self.interner.tokenize_ids(&document.text);
        if ids.is_empty() {
            return;
        }
        let length = ids.len() as u32;
        // Sorted run-length counting replaces the per-document hash map.
        ids.sort_unstable();
        let max_id = ids.last().expect("non-empty").index();
        if max_id >= self.postings.len() {
            self.postings.resize_with(max_id + 1, Vec::new);
        }
        let mut run = 0usize;
        while run < ids.len() {
            let id = ids[run];
            let mut count = 0u32;
            while run < ids.len() && ids[run] == id {
                count += 1;
                run += 1;
            }
            let list = &mut self.postings[id.index()];
            if list.is_empty() {
                self.distinct_terms += 1;
            }
            list.push((document.id, count));
        }
        self.doc_lengths.insert(document.id, length);
        self.documents += 1;
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.documents
    }

    /// Returns `true` when no document has been indexed.
    pub fn is_empty(&self) -> bool {
        self.documents == 0
    }

    /// Number of distinct indexed terms.
    pub fn vocabulary_size(&self) -> usize {
        self.distinct_terms
    }

    /// Inverse document frequency of a term (smoothed).
    fn idf(&self, id: Option<TermId>) -> f64 {
        let df = id
            .and_then(|id| self.postings.get(id.index()))
            .map(|p| p.len())
            .unwrap_or(0);
        ((self.documents as f64 + 1.0) / (df as f64 + 1.0)).ln() + 1.0
    }

    /// Ranks documents for a conjunctive (single) query: documents matching
    /// more query terms with higher TF-IDF weight come first. The query is
    /// tokenized once; terms are looked up without interning.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchResult> {
        if self.documents == 0 {
            return Vec::new();
        }
        let mut scores: BTreeMap<DocId, f64> = BTreeMap::new();
        let mut any_term = false;
        for_each_term(query, |term| {
            any_term = true;
            let id = self.interner.id_of(term);
            let idf = self.idf(id);
            if let Some(postings) = id.and_then(|id| self.postings.get(id.index())) {
                for &(doc, tf) in postings {
                    let length = self.doc_lengths[&doc].max(1) as f64;
                    *scores.entry(doc).or_insert(0.0) += (tf as f64 / length) * idf;
                }
            }
        });
        if !any_term {
            return Vec::new();
        }
        let mut results: Vec<SearchResult> = scores
            .into_iter()
            .map(|(doc, score)| SearchResult { doc, score })
            .collect();
        // Deterministic ordering: score desc, then doc id.
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        results.truncate(limit);
        results
    }

    /// Executes an OR-aggregated query of the form `q1 OR q2 OR ... OR qn`
    /// (as produced by GooPIR, PEAS and X-SEARCH): each disjunct is ranked
    /// separately and the result page interleaves the per-disjunct rankings,
    /// which is what pollutes the page with results of the fake queries.
    pub fn search_or(&self, aggregated_query: &str, limit: usize) -> Vec<SearchResult> {
        let disjuncts: Vec<&str> = aggregated_query
            .split(" OR ")
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if disjuncts.len() <= 1 {
            return self.search(aggregated_query, limit);
        }
        let per_disjunct: Vec<Vec<SearchResult>> =
            disjuncts.iter().map(|q| self.search(q, limit)).collect();
        let mut merged = Vec::with_capacity(limit);
        let mut seen = std::collections::BTreeSet::new();
        let mut rank = 0usize;
        while merged.len() < limit {
            let mut any = false;
            for results in &per_disjunct {
                if let Some(r) = results.get(rank) {
                    any = true;
                    if seen.insert(r.doc) && merged.len() < limit {
                        merged.push(*r);
                    }
                }
            }
            if !any {
                break;
            }
            rank += 1;
        }
        merged
    }

    /// Returns `true` when `doc` contains `id`.
    fn doc_has_term(&self, doc: DocId, id: TermId) -> bool {
        self.postings
            .get(id.index())
            .map(|p| p.iter().any(|(d, _)| *d == doc))
            .unwrap_or(false)
    }

    /// Returns the set of terms of `query` that occur in document `doc` —
    /// used by the client-side filtering of OR-based mechanisms.
    pub fn matching_terms(&self, doc: DocId, query: &str) -> Vec<String> {
        tokenize(query)
            .into_iter()
            .filter(|t| {
                self.interner
                    .id_of(t)
                    .map(|id| self.doc_has_term(doc, id))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Returns `true` when at least one content term of `query` occurs in
    /// `doc` — the allocation-free predicate behind the client-side result
    /// filtering (`!matching_terms(..).is_empty()` without building the
    /// term list).
    pub fn matches_any_term(&self, doc: DocId, query: &str) -> bool {
        let mut hit = false;
        for_each_term(query, |t| {
            if !hit {
                if let Some(id) = self.interner.id_of(t) {
                    hit = self.doc_has_term(doc, id);
                }
            }
        });
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DocId;

    fn doc(id: u64, text: &str) -> Document {
        Document {
            id: DocId(id),
            topic: String::new(),
            text: text.to_owned(),
        }
    }

    fn sample_index() -> Index {
        Index::build(&[
            doc(0, "flu symptoms fever treatment doctor"),
            doc(1, "diabetes insulin glucose treatment"),
            doc(2, "cheap flights geneva paris booking"),
            doc(3, "hotel booking barcelona beach"),
            doc(4, "flu vaccine side effects fever"),
            doc(5, "train booking zurich milan"),
        ])
    }

    #[test]
    fn relevant_documents_rank_first() {
        let index = sample_index();
        let results = index.search("flu fever", 10);
        assert!(!results.is_empty());
        let top_ids: Vec<u64> = results.iter().take(2).map(|r| r.doc.0).collect();
        assert!(top_ids.contains(&0));
        assert!(top_ids.contains(&4));
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let index = sample_index();
        assert!(index.search("quantum chromodynamics", 10).is_empty());
        assert!(index.search("", 10).is_empty());
    }

    #[test]
    fn limit_truncates_results() {
        let index = sample_index();
        let results = index.search("booking", 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let index = sample_index();
        let results = index.search("flu fever treatment booking", 10);
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn or_query_mixes_topics() {
        let index = sample_index();
        let results = index.search_or("flu fever OR hotel barcelona", 6);
        let ids: Vec<u64> = results.iter().map(|r| r.doc.0).collect();
        // Results of both disjuncts appear in the page.
        assert!(
            ids.iter().any(|&i| i == 0 || i == 4),
            "health results missing: {ids:?}"
        );
        assert!(ids.contains(&3), "travel results missing: {ids:?}");
    }

    #[test]
    fn or_query_with_single_disjunct_equals_plain_search() {
        let index = sample_index();
        assert_eq!(
            index.search_or("flu fever", 5),
            index.search("flu fever", 5)
        );
    }

    #[test]
    fn or_page_displaces_exact_results() {
        let index = sample_index();
        // With a small page, the OR aggregation leaves less room for the
        // real query's results — the root cause of completeness < 1.
        let exact: Vec<_> = index.search("booking", 3).iter().map(|r| r.doc).collect();
        let polluted: Vec<_> = index
            .search_or("booking OR flu OR insulin", 3)
            .iter()
            .map(|r| r.doc)
            .collect();
        let kept = exact.iter().filter(|d| polluted.contains(d)).count();
        assert!(
            kept < exact.len(),
            "obfuscation should displace some exact results"
        );
    }

    #[test]
    fn matching_terms_reports_overlap() {
        let index = sample_index();
        let terms = index.matching_terms(DocId(0), "flu booking fever");
        assert_eq!(terms, vec!["flu", "fever"]);
        assert!(index.matching_terms(DocId(3), "flu fever").is_empty());
    }

    #[test]
    fn matches_any_term_agrees_with_matching_terms() {
        let index = sample_index();
        for (doc, query) in [
            (DocId(0), "flu booking fever"),
            (DocId(3), "flu fever"),
            (DocId(3), "beach holiday"),
            (DocId(5), ""),
            (DocId(5), "unknownterm"),
        ] {
            assert_eq!(
                index.matches_any_term(doc, query),
                !index.matching_terms(doc, query).is_empty(),
                "doc {doc:?}, query {query:?}"
            );
        }
    }

    #[test]
    fn index_statistics() {
        let index = sample_index();
        assert_eq!(index.len(), 6);
        assert!(!index.is_empty());
        assert!(index.vocabulary_size() > 10);
        assert!(Index::default().is_empty());
    }

    #[test]
    fn shared_interner_is_visible() {
        let interner = TermInterner::new();
        interner.intern("pre-existing");
        let index =
            Index::build_with_interner(interner.clone(), &[doc(0, "flu symptoms treatment")]);
        assert!(index.interner().ptr_eq(&interner));
        // Document terms were interned into the shared interner…
        assert!(interner.id_of("flu").is_some());
        // …and ids issued before the build stay valid.
        assert_eq!(interner.id_of("pre-existing"), Some(TermId(0)));
        assert_eq!(index.vocabulary_size(), 3);
    }
}
