//! Benchmarks of the sensitivity analysis (Table II machinery + the
//! adaptive-k decision on the client's critical path).

use criterion::{criterion_group, criterion_main, Criterion};
use cyclosa::config::ProtectionConfig;
use cyclosa::sensitivity::{build_categorizer, SensitivityAnalyzer};
use cyclosa_bench::setup::{ExperimentScale, ExperimentSetup};
use cyclosa_nlp::categorizer::CategorizerMethod;
use std::hint::black_box;

fn bench_sensitivity(c: &mut Criterion) {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 7);
    let config = ProtectionConfig::default();
    let mut rng = setup.rng(1);
    let categorizer = build_categorizer(
        &setup.lexicon,
        &["health", "politics", "religion", "sexuality"],
        &setup.sensitive_corpus,
        &config,
        &mut rng,
    );
    let mut analyzer = SensitivityAnalyzer::new(categorizer, CategorizerMethod::Combined, &config);
    analyzer.record_own_queries(setup.train[0].queries.iter().map(|q| q.query.text.as_str()));

    let mut group = c.benchmark_group("sensitivity");
    group.bench_function("assess_sensitive_query", |b| {
        b.iter(|| analyzer.assess(black_box("hiv test anonymous clinic")));
    });
    group.bench_function("assess_non_sensitive_query", |b| {
        b.iter(|| analyzer.assess(black_box("cheap flights geneva paris")));
    });
    group.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
