//! Benchmarks of the SimAttack adversary (cost of one re-identification
//! attempt against the full profile set), comparing the inverted profile
//! index against the full kernel scan it replaced. For the parameterized
//! sweep (10²–10⁴ users) and the machine-readable record, see the
//! `attack_bench` bin.

use criterion::{criterion_group, criterion_main, Criterion};
use cyclosa_attack::simattack::SimAttack;
use cyclosa_bench::setup::{ExperimentScale, ExperimentSetup};
use std::hint::black_box;

fn bench_simattack(c: &mut Criterion) {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 11);
    let attack = SimAttack::from_training(&setup.train);
    let repeated = setup.train[0].queries[0].query.text.clone();

    let mut group = c.benchmark_group("simattack");
    group.bench_function("reidentify_known_query", |b| {
        b.iter(|| attack.reidentify(black_box(&repeated)));
    });
    group.bench_function("reidentify_known_query_scan", |b| {
        b.iter(|| attack.reidentify_scan(black_box(&repeated)));
    });
    group.bench_function("reidentify_unknown_query", |b| {
        b.iter(|| attack.reidentify(black_box("completely unrelated fresh query")));
    });
    group.bench_function("reidentify_unknown_query_scan", |b| {
        b.iter(|| attack.reidentify_scan(black_box("completely unrelated fresh query")));
    });
    group.bench_function("prepare_query_vector", |b| {
        b.iter(|| attack.prepare(black_box(&repeated)));
    });
    group.finish();
}

criterion_group!(benches, bench_simattack);
criterion_main!(benches);
