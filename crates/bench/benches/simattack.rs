//! Benchmarks of the SimAttack adversary (cost of one re-identification
//! attempt against the full profile set).

use criterion::{criterion_group, criterion_main, Criterion};
use cyclosa_attack::simattack::SimAttack;
use cyclosa_bench::setup::{ExperimentScale, ExperimentSetup};
use std::hint::black_box;

fn bench_simattack(c: &mut Criterion) {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 11);
    let attack = SimAttack::from_training(&setup.train);
    let repeated = setup.train[0].queries[0].query.text.clone();

    let mut group = c.benchmark_group("simattack");
    group.bench_function("reidentify_known_query", |b| {
        b.iter(|| attack.reidentify(black_box(&repeated)));
    });
    group.bench_function("reidentify_unknown_query", |b| {
        b.iter(|| attack.reidentify(black_box("completely unrelated fresh query")));
    });
    group.finish();
}

criterion_group!(benches, bench_simattack);
criterion_main!(benches);
