//! Benchmarks of the gossip-based peer sampling protocol (cost of one full
//! synchronous round over a mid-sized overlay).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cyclosa_peer_sampling::{GossipSimulator, PeerSamplingConfig};

fn bench_peer_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("peer_sampling");
    group.bench_function("gossip_round_200_nodes", |b| {
        b.iter_batched(
            || {
                let mut sim = GossipSimulator::ring(200, PeerSamplingConfig::default(), 3);
                sim.run_rounds(5);
                sim
            },
            |mut sim| sim.run_round(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_peer_sampling);
criterion_main!(benches);
