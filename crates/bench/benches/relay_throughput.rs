//! The Fig. 8c micro-benchmark: the per-request work of a CYCLOSA relay
//! (enclave transition + record decrypt/encrypt + table update), which
//! bounds the sustainable requests/second of one node.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cyclosa::config::ProtectionConfig;
use cyclosa::node::CyclosaNode;
use cyclosa_crypto::aead::ChaCha20Poly1305;
use std::hint::black_box;

fn bench_relay(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_throughput");
    group.throughput(Throughput::Elements(1));

    let mut node = CyclosaNode::builder(1)
        .protection(ProtectionConfig::with_k_max(3))
        .build();
    node.bootstrap_with_seed_queries(["seed query one", "seed query two"]);
    group.bench_function("relay_one_query", |b| {
        b.iter(|| node.relay_query(black_box("forwarded query text")));
    });

    // The full relay pipeline: open the incoming record, process, seal the
    // outgoing record.
    let aead = ChaCha20Poly1305::new(&[3u8; 32]);
    let incoming = aead.seal(&[0u8; 12], b"forwarded query text", b"fwd");
    group.bench_function("relay_record_pipeline", |b| {
        b.iter(|| {
            let plaintext = aead.open(&[0u8; 12], black_box(&incoming), b"fwd").unwrap();
            let forwarded = node.relay_query(std::str::from_utf8(&plaintext).unwrap());
            aead.seal(&[1u8; 12], forwarded.as_bytes(), b"rsp")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_relay);
criterion_main!(benches);
