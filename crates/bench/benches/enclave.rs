//! Micro-benchmarks of the SGX simulation layer: ecall dispatch, sealing and
//! quote generation/verification.

use criterion::{criterion_group, criterion_main, Criterion};
use cyclosa_sgx::attestation::{generate_quote, AttestationService};
use cyclosa_sgx::enclave::Platform;
use cyclosa_sgx::measurement::Measurement;
use cyclosa_sgx::sealing;
use std::hint::black_box;

fn bench_enclave(c: &mut Criterion) {
    let mut group = c.benchmark_group("enclave");
    let platform = Platform::new(42);

    group.bench_function("ecall_dispatch", |b| {
        let mut enclave = platform.create_enclave(b"bench", 0u64);
        enclave.initialize().unwrap();
        b.iter(|| enclave.ecall(128, |state| *state += 1).unwrap());
    });

    let enclave = platform.create_enclave(b"bench", ());
    let table = vec![0x55u8; 4096];
    group.bench_function("seal_4KiB", |b| {
        b.iter(|| sealing::seal(&enclave, b"past-queries", black_box(&table)));
    });
    let blob = sealing::seal(&enclave, b"past-queries", &table);
    group.bench_function("unseal_4KiB", |b| {
        b.iter(|| sealing::unseal(&enclave, black_box(&blob)).unwrap());
    });

    let mut service = AttestationService::new();
    service.provision_platform(&platform);
    service.allow_measurement(Measurement::from_code_identity(b"bench"));
    group.bench_function("quote_generate_and_verify", |b| {
        b.iter(|| {
            let quote = generate_quote(&enclave, b"handshake key");
            service.verify_for_cyclosa(black_box(&quote)).unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_enclave);
criterion_main!(benches);
