//! Micro-benchmarks of the cryptographic substrate (record protection and
//! handshakes dominate the per-request work of a CYCLOSA relay).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cyclosa_crypto::aead::ChaCha20Poly1305;
use cyclosa_crypto::sha256::Sha256;
use cyclosa_crypto::x25519::StaticSecret;
use std::hint::black_box;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let payload = vec![0xABu8; 512];

    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("sha256_512B", |b| {
        b.iter(|| Sha256::digest(black_box(&payload)));
    });

    let aead = ChaCha20Poly1305::new(&[7u8; 32]);
    group.bench_function("aead_seal_512B", |b| {
        b.iter(|| aead.seal(&[0u8; 12], black_box(&payload), b"fwd"));
    });
    let sealed = aead.seal(&[0u8; 12], &payload, b"fwd");
    group.bench_function("aead_open_512B", |b| {
        b.iter(|| aead.open(&[0u8; 12], black_box(&sealed), b"fwd").unwrap());
    });

    group.bench_function("x25519_diffie_hellman", |b| {
        let alice = StaticSecret::from_bytes([1u8; 32]);
        let bob_public = StaticSecret::from_bytes([2u8; 32]).public_key();
        b.iter(|| alice.diffie_hellman(black_box(&bob_public)));
    });
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
