//! Benchmarks of the simulated search engine (plain and OR-aggregated
//! queries against the synthetic corpus index).

use criterion::{criterion_group, criterion_main, Criterion};
use cyclosa_bench::setup::{ExperimentScale, ExperimentSetup};
use std::hint::black_box;

fn bench_search_engine(c: &mut Criterion) {
    let setup = ExperimentSetup::new(ExperimentScale::Small, 13);
    let engine = &setup.engine;

    let mut group = c.benchmark_group("search_engine");
    group.bench_function("plain_query", |b| {
        b.iter(|| engine.reference_results(black_box("diabetes insulin glucose")));
    });
    group.bench_function("or_query_k3", |b| {
        b.iter(|| {
            engine.reference_results(black_box(
                "diabetes insulin glucose OR cheap flights geneva OR football playoffs OR sourdough recipe",
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_search_engine);
criterion_main!(benches);
